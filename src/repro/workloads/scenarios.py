"""Protocol executions mirroring Figures 5 and 7 (Section 5).

Figure 5 illustrates the Figure-4 (m-SC) protocol: updates travel via
atomic broadcast while a query reads whatever its local replica holds —
possibly a version that an already-responded update has superseded.
Figure 7 illustrates the Figure-6 (m-lin) protocol on the same
workload: the query's gather phase ("query"/"query response", keeping
the lexicographically freshest copy) makes the stale read impossible.

Both scenarios use a deterministic asymmetric network: replica
``READER`` is far away (its inbound links are slow), so update
deliveries reach it long after they reach everyone else — the window
in which the m-SC protocol serves stale reads.  The writer processes
and the reader issue on a fixed schedule (no jitter), so the observed
values are reproducible bit-for-bit and asserted in tests.

Scenario workload (matching the figure's shape):

* ``P0`` writes ``x := 1`` and then the pair ``(x, y) := (4, 3)``.
* ``P2`` (the far replica) repeatedly reads ``x``.

Under m-SC, P2's reads return the *local* version: 0 or 1 long after
``x = 4`` is globally committed.  Under m-lin every read returns the
newest committed version at its linearization point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.history import History
from repro.objects.multimethods import m_assign, read_reg, write_reg
from repro.protocols.base import RunResult
from repro.protocols.mlin import mlin_cluster
from repro.protocols.msc import msc_cluster
from repro.sim.latency import AsymmetricLatency

#: pid of the far-away replica issuing the reads.
READER = 2
#: pid issuing the writes.
WRITER = 0

#: Deterministic latency: fast core (0.5), reader 5.0 further away.
SCENARIO_LATENCY = AsymmetricLatency(
    base=0.5, jitter=0.0, slow_node=READER, slow_extra=5.0
)


def scenario_workloads(n_reads: int = 10) -> List[List]:
    """The Figure-5/Figure-7 workload: one writer, one far reader.

    All updates originate at ``WRITER``, so the workload is statically
    WW-constrained — :func:`repro.analysis.static.prover.certify_workloads`
    proves it by the single-updater rule without running anything.
    """
    workloads: List[List] = [[] for _ in range(3)]
    workloads[WRITER] = [write_reg("x", 1), m_assign({"x": 4, "y": 3})]
    workloads[READER] = [read_reg("x") for _ in range(n_reads)]
    return workloads


#: Backwards-compatible alias (pre-1.4 private name).
_scenario_workloads = scenario_workloads


def _run(factory, n_reads: int, **kwargs) -> RunResult:
    cluster = factory(
        3,
        ["x", "y"],
        latency=SCENARIO_LATENCY,
        seed=7,
        think_jitter=0.0,
        start_jitter=0.0,
        think_fn=lambda _rng: 0.8,
        **kwargs,
    )
    return cluster.run(_scenario_workloads(n_reads))


@dataclass
class ScenarioOutcome:
    """What the reader observed, against the writer's commit points.

    Attributes:
        result: the full run result (history, stats).
        reads: ``(inv, resp, value)`` per reader read, in issue order.
        commit_times: response times of the two writes (x=1; x=4,y=3).
        stale_reads: reads invoked after a write's response that
            returned a value older than that write — the
            m-linearizability violations (empty for the Fig-7 run).
    """

    result: RunResult
    reads: List[Tuple[float, float, int]]
    commit_times: Tuple[float, float]
    stale_reads: List[Tuple[float, int]]

    @property
    def history(self) -> History:
        return self.result.history


def _analyse(result: RunResult) -> ScenarioOutcome:
    reads: List[Tuple[float, float, int]] = []
    write1_resp: Optional[float] = None
    write2_resp: Optional[float] = None
    for rec in result.recorder.records:
        if rec.process == READER and not rec.is_update:
            reads.append((rec.inv, rec.resp, rec.result))
        elif rec.process == WRITER and rec.name.startswith("write"):
            write1_resp = rec.resp
        elif rec.process == WRITER and rec.name.startswith("massign"):
            write2_resp = rec.resp
    assert write1_resp is not None and write2_resp is not None
    stale: List[Tuple[float, int]] = []
    for inv, _resp, value in reads:
        # After w(x)1 responded, a read must not return 0; after the
        # m-assign responded, it must not return 0 or 1.
        if inv > write2_resp and value in (0, 1):
            stale.append((inv, value))
        elif inv > write1_resp and value == 0:
            stale.append((inv, value))
    return ScenarioOutcome(
        result=result,
        reads=sorted(reads),
        commit_times=(write1_resp, write2_resp),
        stale_reads=stale,
    )


def figure5_scenario(n_reads: int = 10) -> ScenarioOutcome:
    """Run the Figure-5 workload on the Figure-4 (m-SC) protocol.

    The deterministic latency gap guarantees stale reads: the far
    replica serves local values for ~5 time units after each commit.
    """
    return _analyse(_run(msc_cluster, n_reads))


def figure7_scenario(n_reads: int = 10) -> ScenarioOutcome:
    """Run the same workload on the Figure-6 (m-lin) protocol.

    The gather phase always collects a copy at least as fresh as any
    completed update, so ``stale_reads`` is empty — at the price of
    each read paying a round trip to the far replica's peers.
    """
    return _analyse(_run(mlin_cluster, n_reads))
