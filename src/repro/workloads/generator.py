"""Randomized workload generation (S18).

Two families of generators:

* **Program workloads** (:func:`random_workloads`) — per-process
  sequences of :class:`~repro.protocols.store.MProgram` drawn from a
  configurable mix of the Section-1 multi-methods, for driving
  protocol clusters.  Write values are globally unique so derived
  histories always have an unambiguous reads-from relation.
* **Abstract histories** (:func:`random_serial_history`,
  :func:`stretch_history`, :func:`corrupt_history`) — histories built
  directly (no simulation) with controlled properties, for exercising
  the checkers: serial histories are m-linearizable by construction;
  stretching intervals preserves m-sequential consistency but can
  break m-linearizability; corruption injects reads-from edits that
  break m-sequential consistency itself.

All generators take explicit seeds and are deterministic.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.operation import MOperation, Operation, read, write
from repro.errors import WorkloadError
from repro.objects.multimethods import (
    balance_total,
    dcas,
    m_assign,
    m_read,
    read_reg,
    sum_of,
    transfer,
    write_reg,
)
from repro.protocols.store import MProgram


@dataclass(frozen=True)
class WorkloadMix:
    """Relative weights of the program families in a random workload.

    All weights are non-negative; at least one must be positive.
    """

    read: float = 3.0
    write: float = 3.0
    m_read: float = 1.0
    m_assign: float = 1.0
    dcas: float = 0.5
    transfer: float = 0.5
    audit: float = 0.5
    sum: float = 0.5

    def entries(self) -> List[Tuple[str, float]]:
        pairs = [
            ("read", self.read),
            ("write", self.write),
            ("m_read", self.m_read),
            ("m_assign", self.m_assign),
            ("dcas", self.dcas),
            ("transfer", self.transfer),
            ("audit", self.audit),
            ("sum", self.sum),
        ]
        if all(weight <= 0 for _name, weight in pairs):
            raise WorkloadError("workload mix has no positive weight")
        return pairs


#: Mix with only blind writes and reads — safe for the local-gossip
#: negative control (see repro.protocols.local's workload caveat).
BLIND_MIX = WorkloadMix(
    read=2.0,
    write=3.0,
    m_read=1.0,
    m_assign=1.0,
    dcas=0.0,
    transfer=0.0,
    audit=1.0,
    sum=0.0,
)


def random_workloads(
    n_processes: int,
    objects: Sequence[str],
    ops_per_process: int,
    *,
    mix: Optional[WorkloadMix] = None,
    seed: int = 0,
    span: int = 2,
    zipf_s: float = 0.0,
) -> List[List[MProgram]]:
    """Generate one random program sequence per process.

    Args:
        n_processes: number of processes.
        objects: shared object names (at least 2 for multi-object
            programs to be generable).
        ops_per_process: programs per process.
        mix: family weights (default :class:`WorkloadMix`).
        seed: RNG seed.
        span: number of objects touched by multi-object programs
            (clamped to ``len(objects)``).
        zipf_s: skew of object selection.  0 (default) is uniform;
            larger values concentrate accesses on the first objects
            (weight of the k-th object proportional to
            ``1 / (k+1)**zipf_s``) — the standard hot-spot/contention
            knob.

    Write values are unique across the whole workload (drawn from one
    shared counter), so histories recorded from these programs always
    have derivable reads-from relations.
    """
    if not objects:
        raise WorkloadError("need at least one object")
    if zipf_s < 0:
        raise WorkloadError("zipf_s must be non-negative")
    mix = mix or WorkloadMix()
    entries = mix.entries()
    names = [name for name, _w in entries]
    weights = [w for _name, w in entries]
    rng = random.Random(seed)
    value_counter = itertools.count(1)
    span = max(1, min(span, len(objects)))
    object_list = list(objects)
    object_weights = [
        1.0 / (rank + 1) ** zipf_s for rank in range(len(object_list))
    ]

    def pick_one() -> str:
        if zipf_s == 0:
            return rng.choice(object_list)
        return rng.choices(object_list, weights=object_weights)[0]

    def pick_objs(k: int) -> List[str]:
        k = min(k, len(object_list))
        if zipf_s == 0:
            return rng.sample(object_list, k=k)
        # Weighted sampling without replacement.
        chosen: List[str] = []
        pool = list(object_list)
        pool_weights = list(object_weights)
        for _ in range(k):
            index = rng.choices(
                range(len(pool)), weights=pool_weights
            )[0]
            chosen.append(pool.pop(index))
            pool_weights.pop(index)
        return chosen

    def make_program(kind: str) -> MProgram:
        if kind == "read":
            return read_reg(pick_one())
        if kind == "write":
            return write_reg(pick_one(), next(value_counter))
        if kind == "m_read":
            return m_read(pick_objs(span))
        if kind == "m_assign":
            return m_assign(
                {obj: next(value_counter) for obj in pick_objs(span)}
            )
        if kind == "dcas":
            o1, o2 = pick_objs(2) if len(objects) >= 2 else (objects[0],) * 2
            if o1 == o2:
                return write_reg(o1, next(value_counter))
            # Expected values are guesses; most DCAS attempts fail,
            # exercising the no-write path of a conservative update.
            return dcas(
                o1,
                o2,
                rng.randint(0, 3),
                rng.randint(0, 3),
                next(value_counter),
                next(value_counter),
            )
        if kind == "transfer":
            o1, o2 = pick_objs(2) if len(objects) >= 2 else (objects[0],) * 2
            if o1 == o2:
                return read_reg(o1)
            return transfer(o1, o2, rng.randint(1, 5))
        if kind == "audit":
            return balance_total(pick_objs(span))
        if kind == "sum":
            o1, o2 = pick_objs(2) if len(objects) >= 2 else (objects[0],) * 2
            if o1 == o2:
                return read_reg(o1)
            return sum_of(o1, o2)
        raise WorkloadError(f"unknown program kind {kind!r}")

    return [
        [
            make_program(rng.choices(names, weights=weights)[0])
            for _ in range(ops_per_process)
        ]
        for _pid in range(n_processes)
    ]


# ----------------------------------------------------------------------
# Abstract-history generators (no simulation)
# ----------------------------------------------------------------------


#: ``HistoryShape.distribution`` -> zipf skew of object selection.
#: 0 is uniform; higher values concentrate accesses on low-indexed
#: objects, matching the program-workload ``zipf_s`` knob.
DISTRIBUTION_SKEW: Dict[str, float] = {
    "uniform": 0.0,
    "zipfian": 1.0,
    "hotspot": 1.5,
}


@dataclass(frozen=True)
class HistoryShape:
    """Parameters of a random abstract history.

    Attributes:
        n_processes: processes issuing m-operations.
        n_objects: number of shared objects (named ``x0 ... x{k-1}``).
        n_mops: total m-operations.
        reads_per_mop: external reads per m-operation (upper bound).
        writes_per_mop: writes per m-operation (upper bound).
        query_fraction: fraction of m-operations that only read.
        distribution: object-selection skew — one of
            :data:`DISTRIBUTION_SKEW`.  The default ``"uniform"`` is
            byte-identical to the pre-knob generator for every seed.
    """

    n_processes: int = 3
    n_objects: int = 3
    n_mops: int = 9
    reads_per_mop: int = 2
    writes_per_mop: int = 2
    query_fraction: float = 0.4
    distribution: str = "uniform"


def _object_picker(rng: random.Random, distribution: str):
    """A ``pick(pool, k)`` closure honouring the distribution knob.

    The uniform path delegates straight to ``rng.sample`` — the exact
    call the generators made before the knob existed, so uniform
    histories are byte-identical per seed.  Skewed paths do weighted
    sampling without replacement, mirroring ``random_workloads``.
    """
    skew = DISTRIBUTION_SKEW.get(distribution)
    if skew is None:
        raise WorkloadError(
            f"unknown distribution {distribution!r}; expected one of "
            f"{tuple(DISTRIBUTION_SKEW)}"
        )
    if skew == 0.0:
        return lambda pool, k: rng.sample(pool, k=k)

    def pick(pool: Sequence[str], k: int) -> List[str]:
        pool = list(pool)
        pool_weights = [
            1.0 / (rank + 1) ** skew for rank in range(len(pool))
        ]
        chosen: List[str] = []
        for _ in range(k):
            index = rng.choices(
                range(len(pool)), weights=pool_weights
            )[0]
            chosen.append(pool.pop(index))
            pool_weights.pop(index)
        return chosen

    return pick


def random_serial_history(
    shape: HistoryShape, *, seed: int = 0
) -> History:
    """A random history that is m-linearizable *by construction*.

    m-operations are generated against a single evolving store, one at
    a time, with disjoint, strictly increasing intervals — the
    generation order itself is a legal linearization respecting real
    time, so every consistency condition holds.
    """
    rng = random.Random(seed)
    pick = _object_picker(rng, shape.distribution)
    objects = [f"x{i}" for i in range(shape.n_objects)]
    store: Dict[str, int] = {obj: 0 for obj in objects}
    value_counter = itertools.count(1)
    mops: List[MOperation] = []
    clock = 0.0
    for uid in range(1, shape.n_mops + 1):
        process = rng.randrange(shape.n_processes)
        is_query = rng.random() < shape.query_fraction
        ops: List[Operation] = []
        n_reads = rng.randint(1, max(1, shape.reads_per_mop))
        for obj in pick(objects, min(n_reads, len(objects))):
            ops.append(read(obj, store[obj]))
        if not is_query:
            n_writes = rng.randint(1, max(1, shape.writes_per_mop))
            for obj in pick(objects, min(n_writes, len(objects))):
                value = next(value_counter)
                ops.append(write(obj, value))
                store[obj] = value
        inv = clock + rng.uniform(0.1, 0.5)
        resp = inv + rng.uniform(0.1, 0.5)
        clock = resp
        mops.append(
            MOperation(
                uid=uid,
                process=process,
                ops=tuple(ops),
                inv=inv,
                resp=resp,
                name=f"op{uid}",
            )
        )
    return History.from_mops(mops)


def random_partitioned_history(
    shape: HistoryShape, *, seed: int = 0
) -> History:
    """A random *object-partitioned* history (the D 4.10 family input).

    Like :func:`random_serial_history` — serial generation against an
    evolving store, so the history is m-linearizable by construction —
    but each process owns a private object namespace ``x{p}_{k}``
    (``shape.n_objects`` objects per process) and every m-operation
    touches only its issuing process's objects.  The result therefore
    satisfies the object-partitioned certificate
    (:func:`repro.analysis.static.certify_partitioned_history`), which
    is what the sharded execution plan in :mod:`repro.core.plan`
    requires: object groups never interact, so each process's
    sub-history can be checked in isolation.
    """
    rng = random.Random(seed)
    pick = _object_picker(rng, shape.distribution)
    namespaces = [
        [f"x{p}_{k}" for k in range(shape.n_objects)]
        for p in range(shape.n_processes)
    ]
    store: Dict[str, int] = {
        obj: 0 for objects in namespaces for obj in objects
    }
    value_counter = itertools.count(1)
    mops: List[MOperation] = []
    clock = 0.0
    for uid in range(1, shape.n_mops + 1):
        process = rng.randrange(shape.n_processes)
        objects = namespaces[process]
        is_query = rng.random() < shape.query_fraction
        ops: List[Operation] = []
        n_reads = rng.randint(1, max(1, shape.reads_per_mop))
        for obj in pick(objects, min(n_reads, len(objects))):
            ops.append(read(obj, store[obj]))
        if not is_query:
            n_writes = rng.randint(1, max(1, shape.writes_per_mop))
            for obj in pick(objects, min(n_writes, len(objects))):
                value = next(value_counter)
                ops.append(write(obj, value))
                store[obj] = value
        inv = clock + rng.uniform(0.1, 0.5)
        resp = inv + rng.uniform(0.1, 0.5)
        clock = resp
        mops.append(
            MOperation(
                uid=uid,
                process=process,
                ops=tuple(ops),
                inv=inv,
                resp=resp,
                name=f"op{uid}",
            )
        )
    return History.from_mops(mops)


def stretch_history(
    history: History, *, seed: int = 0, slack: float = 5.0
) -> History:
    """Randomly widen intervals while keeping process order.

    The identity of every m-operation (operations, reads-from) is
    unchanged, and per-process sequencing is preserved, so the result
    remains m-sequentially consistent whenever the input was (the same
    witness works).  Real-time order, however, loses edges and *gains
    none*, so the result is still m-linearizable too — the point of
    stretching is to create overlap so that the exact checker faces
    real branching.  To obtain histories that are m-SC but **not**
    m-lin, combine with :func:`shift_process` (which re-times one
    process's operations wholesale, possibly re-ordering them against
    other processes' responses).
    """
    rng = random.Random(seed)
    epsilon = 1e-9
    new_mops: List[MOperation] = []
    for proc in history.processes:
        seq = history.subhistory(proc)
        prev_resp: Optional[float] = None
        for idx, mop in enumerate(seq):
            assert mop.inv is not None and mop.resp is not None
            # Widen only: inv may move earlier (but not before the
            # previous same-process response), resp may move later
            # (but not past the next same-process invocation).  This
            # guarantees inv_new <= inv_old and resp_new >= resp_old,
            # so the real-time order can only lose edges.
            inv = mop.inv - rng.uniform(0, slack)
            if prev_resp is not None:
                inv = max(inv, prev_resp + epsilon)
            inv = min(inv, mop.inv)
            resp = mop.resp + rng.uniform(0, slack)
            if idx + 1 < len(seq):
                next_inv = seq[idx + 1].inv
                assert next_inv is not None
                resp = min(resp, next_inv - epsilon)
            resp = max(resp, mop.resp)
            prev_resp = resp
            new_mops.append(mop.with_times(inv, resp))
    return History.from_mops(
        new_mops, reads_from=history.reads_from_map
    )


def shift_process(
    history: History, process: int, offset: float
) -> History:
    """Translate one process's intervals by ``offset`` in time.

    Process subhistories and reads-from are untouched, so
    m-sequential consistency is invariant under this transformation;
    real-time order is not, so shifting a reader far later than the
    writes it read typically breaks m-linearizability (its reads
    become stale with respect to newer committed writes).
    """
    new_mops = []
    for mop in history.mops:
        if mop.process == process:
            assert mop.inv is not None and mop.resp is not None
            new_mops.append(mop.with_times(mop.inv + offset, mop.resp + offset))
        else:
            new_mops.append(mop)
    return History.from_mops(new_mops, reads_from=history.reads_from_map)


def permute_uids(history: History, *, seed: int = 0) -> History:
    """Relabel m-operation uids by a random permutation.

    Semantically a no-op (admissibility and every consistency
    condition are invariant under relabelling), but it removes the
    accidental alignment between uid order and generation order that
    lets a depth-first checker walk straight to a witness — useful
    for stressing search behaviour.
    """
    rng = random.Random(seed)
    old_uids = [m.uid for m in history.mops]
    shuffled = old_uids[:]
    rng.shuffle(shuffled)
    mapping = dict(zip(old_uids, shuffled))
    mapping[history.init.uid] = history.init.uid
    new_mops = [
        MOperation(
            uid=mapping[m.uid],
            process=m.process,
            ops=m.ops,
            inv=m.inv,
            resp=m.resp,
            name=m.name,
        )
        for m in history.mops
    ]
    reads_from = {
        (mapping[reader], obj): mapping[writer]
        for (reader, obj), writer in history.reads_from_map.items()
    }
    return History.from_mops(new_mops, reads_from=reads_from)


def corrupt_history(
    history: History, *, seed: int = 0
) -> Optional[History]:
    """Rewire one reads-from edge to an older writer, if possible.

    Picks a read whose object has at least two distinct writers and
    redirects it to a different writer (fixing the read's value to
    match).  The result frequently violates m-sequential consistency;
    tests assert the checker *detects* a violation whenever the exact
    search confirms one, not that every corruption is inconsistent.

    Returns None when the history has no rewirable read.
    """
    rng = random.Random(seed)
    writers_by_obj: Dict[str, List[int]] = {}
    for mop in history.all_mops:
        for obj in mop.external_writes:
            writers_by_obj.setdefault(obj, []).append(mop.uid)
    candidates = [
        (reader_uid, obj, writer_uid)
        for (reader_uid, obj), writer_uid in history.reads_from_map.items()
        if len(set(writers_by_obj.get(obj, []))) >= 2
    ]
    if not candidates:
        return None
    reader_uid, obj, old_writer = rng.choice(candidates)
    alternatives = [
        uid
        for uid in writers_by_obj[obj]
        if uid not in (old_writer, reader_uid)
    ]
    if not alternatives:
        return None
    new_writer = rng.choice(alternatives)
    new_value = history[new_writer].external_writes[obj]

    new_mops: List[MOperation] = []
    for mop in history.mops:
        if mop.uid != reader_uid:
            new_mops.append(mop)
            continue
        ops = []
        seen_write = set()
        for op in mop.ops:
            if op.is_write:
                seen_write.add(op.obj)
                ops.append(op)
            elif op.obj == obj and op.obj not in seen_write:
                ops.append(read(obj, new_value))
            else:
                ops.append(op)
        new_mops.append(
            MOperation(
                uid=mop.uid,
                process=mop.process,
                ops=tuple(ops),
                inv=mop.inv,
                resp=mop.resp,
                name=mop.name,
            )
        )
    reads_from = dict(history.reads_from_map)
    reads_from[(reader_uid, obj)] = new_writer
    return History.from_mops(new_mops, reads_from=reads_from)
