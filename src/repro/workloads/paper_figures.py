"""The paper's worked examples as concrete, checkable artifacts.

The figures in the paper are schematic (interval diagrams with arrows
for process order, reads-from and the constraints).  Each function
here reconstructs a concrete history realising exactly the relation
instances the text calls out; the accompanying tests assert those
instances hold of the reconstruction, so the encodings are verified
against the prose rather than taken on faith.

* :func:`figure1` — the Section-2 example: m-operations α, β, δ, η, μ
  with ``α ~P1 β``, ``α ~rf δ``, ``η ~rf δ``, ``α ~t μ``, ``η ~t β``,
  ``η ~X β``, ``proc(α) = P1`` and ``objects(α) = {x, y, z}``, plus
  the Section-4 instances "α conflicts with η" and "δ, η, α
  interfere" (δ reads y from η and α writes y).
* :func:`figure2_h1` — history H1 under WW-constraint (Section 4).
* :func:`figure3_s1_order` / :func:`figure3_legal_order` — the
  non-legal extension S1 of H1 that motivates ``~rw``, and the legal
  order the extended relation forces.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.history import History
from repro.core.operation import MOperation, read, write
from repro.core.relations import Relation


def figure1() -> History:
    """The Figure-1 example history (Section 2).

    Reconstruction (timed so that every relation instance named in the
    text holds):

    ========= ======== =========================== ===========
    m-op      process  operations                  interval
    ========= ======== =========================== ===========
    α (uid 1) P1       w(x)1 w(y)2 w(z)3           [0.0, 2.0]
    β (uid 2) P1       r(y)5                       [2.2, 2.4]
    η (uid 3) P2       w(y)5                       [0.5, 1.5]
    δ (uid 4) P2       r(x)1 r(y)5                 [3.5, 4.5]
    μ (uid 5) P3       r(z)3                       [2.5, 3.0]
    ========= ======== =========================== ===========

    giving ``α ~P1 β``, ``α ~rf δ`` (δ reads x from α), ``η ~rf δ``
    (δ reads y from η), ``α ~t μ`` (2.0 < 2.5), ``η ~t β`` (1.5 <
    2.2) and hence ``η ~X β`` (they share y).  α and η conflict (both
    write y), and (δ, η, α) interfere: δ reads y from η while α also
    writes y.
    """
    alpha = MOperation(
        uid=1,
        process=1,
        ops=(write("x", 1), write("y", 2), write("z", 3)),
        inv=0.0,
        resp=2.0,
        name="alpha",
    )
    beta = MOperation(
        uid=2, process=1, ops=(read("y", 5),), inv=2.2, resp=2.4, name="beta"
    )
    eta = MOperation(
        uid=3, process=2, ops=(write("y", 5),), inv=0.5, resp=1.5, name="eta"
    )
    delta = MOperation(
        uid=4,
        process=2,
        ops=(read("x", 1), read("y", 5)),
        inv=3.5,
        resp=4.5,
        name="delta",
    )
    mu = MOperation(
        uid=5, process=3, ops=(read("z", 3),), inv=2.5, resp=3.0, name="mu"
    )
    return History.from_mops([alpha, beta, eta, delta, mu])


#: uid aliases for the Figure-1 m-operations.
FIG1_ALPHA, FIG1_BETA, FIG1_ETA, FIG1_DELTA, FIG1_MU = 1, 2, 3, 4, 5


def figure2_h1() -> Tuple[History, Relation]:
    """History H1 of Figure 2, with its WW-constraint order.

    ::

        P1:  α = r(x)0 w(y)2        β = r(y)2
        P2:  γ = w(x)1              δ = w(y)3

    Returns ``(H1, base)`` where ``base`` is the generating order:
    process orders, reads-from (β reads y from α; α reads x from the
    initial m-operation) and the WW synchronization edges ``α → γ →
    δ`` shown in the figure.  Under this order H1 satisfies the
    WW-constraint and is legal, hence admissible (Theorem 7).
    """
    alpha = MOperation(
        uid=1,
        process=1,
        ops=(read("x", 0), write("y", 2)),
        inv=0.0,
        resp=1.0,
        name="alpha",
    )
    beta = MOperation(
        uid=2, process=1, ops=(read("y", 2),), inv=4.0, resp=5.0, name="beta"
    )
    gamma = MOperation(
        uid=3, process=2, ops=(write("x", 1),), inv=1.5, resp=2.5, name="gamma"
    )
    delta = MOperation(
        uid=4, process=2, ops=(write("y", 3),), inv=3.0, resp=3.5, name="delta"
    )
    history = History.from_mops([alpha, beta, gamma, delta])
    from repro.core.orders import base_order

    base = base_order(history, extra_pairs=[(1, 3), (3, 4)])
    return history, base


#: uid aliases for the Figure-2 m-operations.
FIG2_ALPHA, FIG2_BETA, FIG2_GAMMA, FIG2_DELTA = 1, 2, 3, 4


def figure3_s1_order() -> List[int]:
    """The Figure-3 extension S1 = α γ δ β of H1 — **not** legal.

    δ overwrites y between α (which β reads y from) and β, so β's
    read is illegal; this is the example motivating the logical
    read-write precedence ``~rw`` (D 4.11): since δ, α, β... more
    precisely (β, α, δ) interfere and ``α ~H δ`` holds via the WW
    edges, the extended relation forces ``β ~rw δ``.
    """
    return [0, FIG2_ALPHA, FIG2_GAMMA, FIG2_DELTA, FIG2_BETA]


def figure3_legal_order() -> List[int]:
    """The legal sequentialization the extended relation permits."""
    return [0, FIG2_ALPHA, FIG2_GAMMA, FIG2_BETA, FIG2_DELTA]
