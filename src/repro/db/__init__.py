"""Database-schedule apparatus for the Theorem-2 reduction (Section 3)."""

from repro.db.generator import (
    random_schedule,
    random_serializable_schedule,
)
from repro.db.reduction import (
    history_overlap_matches_schedule,
    reduction_decides,
    schedule_to_history,
)
from repro.db.schedule import (
    T_FINAL,
    T_INIT,
    Action,
    ActionKind,
    Schedule,
    r,
    schedule_from_string,
    w,
)
from repro.db.serializability import (
    SerializabilityResult,
    conflict_pairs,
    is_conflict_serializable,
    is_strict_view_serializable,
    is_view_serializable,
    view_equivalent,
)

__all__ = [
    "Action",
    "ActionKind",
    "Schedule",
    "SerializabilityResult",
    "T_FINAL",
    "T_INIT",
    "conflict_pairs",
    "history_overlap_matches_schedule",
    "is_conflict_serializable",
    "is_strict_view_serializable",
    "is_view_serializable",
    "r",
    "random_schedule",
    "random_serializable_schedule",
    "reduction_decides",
    "schedule_from_string",
    "schedule_to_history",
    "view_equivalent",
    "w",
]
