"""Database transactions and schedules (Section 3).

The paper proves NP-completeness of m-linearizability by reduction
from *strict view serializability* of database schedules.  This module
provides the database side of that reduction: entities, actions,
transactions and (augmented) schedules, kept deliberately independent
of :mod:`repro.core` so the two sides genuinely cross-validate.

A *schedule* is a totally ordered interleaving of the actions of a set
of transactions.  Following the standard model (Papadimitriou):

* each action is a read or a write of one entity by one transaction;
* a read *reads from* the most recent preceding write of the same
  entity in the schedule (or from the initial transaction);
* the *augmented* schedule adds an initial transaction ``T0`` writing
  every entity before everything, and a final transaction ``T_inf``
  reading every entity after everything (footnote 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import MalformedHistoryError

#: Transaction id of the initial transaction in the augmented schedule.
T_INIT = 0
#: Transaction id of the final transaction in the augmented schedule.
T_FINAL = -1


class ActionKind(str, Enum):
    """Read or write of one entity."""

    READ = "r"
    WRITE = "w"


@dataclass(frozen=True)
class Action:
    """One step of a transaction: ``r_i(x)`` or ``w_i(x)``.

    Attributes:
        tid: the transaction performing the action.
        kind: read or write.
        entity: the database entity acted upon.
    """

    tid: int
    kind: ActionKind
    entity: str

    @property
    def is_read(self) -> bool:
        return self.kind is ActionKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is ActionKind.WRITE

    def __str__(self) -> str:
        return f"{self.kind.value}{self.tid}({self.entity})"


def r(tid: int, entity: str) -> Action:
    """Build a read action ``r_tid(entity)``."""
    return Action(tid, ActionKind.READ, entity)


def w(tid: int, entity: str) -> Action:
    """Build a write action ``w_tid(entity)``."""
    return Action(tid, ActionKind.WRITE, entity)


class Schedule:
    """A totally ordered interleaving of transaction actions.

    The action list is the schedule; per-transaction subsequences give
    the transactions' programs.  Transactions ids must be positive
    (``T_INIT`` and ``T_FINAL`` are reserved for augmentation).
    """

    __slots__ = ("_actions", "_tids", "_entities", "_steps")

    def __init__(self, actions: Sequence[Action]) -> None:
        self._actions: Tuple[Action, ...] = tuple(actions)
        for action in self._actions:
            if action.tid in (T_INIT, T_FINAL):
                raise MalformedHistoryError(
                    f"transaction id {action.tid} is reserved for schedule "
                    "augmentation"
                )
        self._tids: Tuple[int, ...] = tuple(
            sorted({a.tid for a in self._actions})
        )
        self._entities: FrozenSet[str] = frozenset(
            a.entity for a in self._actions
        )
        self._steps: Dict[int, List[int]] = {}
        for pos, action in enumerate(self._actions):
            self._steps.setdefault(action.tid, []).append(pos)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def actions(self) -> Tuple[Action, ...]:
        return self._actions

    @property
    def tids(self) -> Tuple[int, ...]:
        """Transaction ids, sorted."""
        return self._tids

    @property
    def entities(self) -> FrozenSet[str]:
        return self._entities

    def transaction(self, tid: int) -> Tuple[Action, ...]:
        """The program of one transaction, in schedule order."""
        return tuple(self._actions[pos] for pos in self._steps.get(tid, ()))

    def span(self, tid: int) -> Tuple[int, int]:
        """(first, last) schedule positions of a transaction's actions.

        The paper identifies the first and last actions of a
        transaction with the invocation and response events of the
        corresponding m-operation (proof of Theorem 2).
        """
        steps = self._steps.get(tid)
        if not steps:
            raise MalformedHistoryError(f"unknown transaction {tid}")
        return (steps[0], steps[-1])

    def overlaps(self, tid_a: int, tid_b: int) -> bool:
        """True iff the two transactions overlap in the schedule."""
        a0, a1 = self.span(tid_a)
        b0, b1 = self.span(tid_b)
        return a0 < b1 and b0 < a1

    def nonoverlap_pairs(self) -> List[Tuple[int, int]]:
        """Pairs ``(a, b)`` where ``a`` completes before ``b`` starts."""
        pairs = []
        for a in self._tids:
            for b in self._tids:
                if a != b and self.span(a)[1] < self.span(b)[0]:
                    pairs.append((a, b))
        return pairs

    # ------------------------------------------------------------------
    # Reads-from semantics
    # ------------------------------------------------------------------

    def reads_from(self) -> Dict[Tuple[int, int, str], Tuple[int, int]]:
        """Reads-from of the *augmented* schedule, at action granularity.

        Returns a map ``(reader_tid, read_pos_within_txn, entity) ->
        (writer_tid, write_pos)`` where ``write_pos`` counts the
        writer's writes to that entity (0-based) and ``writer_tid``
        may be ``T_INIT``.  Keying reads by position matters because a
        transaction may read the same entity several times from
        different writers; keying *writers* by position matters
        because view equivalence relates reads to specific write
        actions — a transaction that writes an entity twice exposes
        two distinct writes to the interleaving, even though only the
        last one can be read in any serial schedule.
        """
        result: Dict[Tuple[int, int, str], Tuple[int, int]] = {}
        last_writer: Dict[str, Tuple[int, int]] = {
            e: (T_INIT, 0) for e in self._entities
        }
        read_counter: Dict[int, int] = {}
        write_counter: Dict[Tuple[int, str], int] = {}
        for action in self._actions:
            if action.is_read:
                idx = read_counter.get(action.tid, 0)
                read_counter[action.tid] = idx + 1
                result[(action.tid, idx, action.entity)] = last_writer[
                    action.entity
                ]
            else:
                key = (action.tid, action.entity)
                pos = write_counter.get(key, 0)
                write_counter[key] = pos + 1
                last_writer[action.entity] = (action.tid, pos)
        return result

    def final_writers(self) -> Dict[str, int]:
        """Entity -> tid of the last writer (``T_INIT`` if unwritten).

        In the augmented schedule these are exactly the writes the
        final transaction ``T_FINAL`` reads, so view equivalence over
        augmented schedules subsumes the final-write condition.
        """
        last_writer: Dict[str, int] = {e: T_INIT for e in self._entities}
        for action in self._actions:
            if action.is_write:
                last_writer[action.entity] = action.tid
        return last_writer

    # ------------------------------------------------------------------
    # Serial rearrangements
    # ------------------------------------------------------------------

    def serialize(self, order: Sequence[int]) -> "Schedule":
        """The serial schedule running whole transactions in ``order``."""
        if sorted(order) != list(self._tids):
            raise MalformedHistoryError(
                "serial order must be a permutation of the transaction ids"
            )
        actions: List[Action] = []
        for tid in order:
            actions.extend(self.transaction(tid))
        return Schedule(actions)

    def is_serial(self) -> bool:
        """True iff transactions are not interleaved at all."""
        seen_done: set = set()
        current: Optional[int] = None
        for action in self._actions:
            if action.tid != current:
                if action.tid in seen_done:
                    return False
                if current is not None:
                    seen_done.add(current)
                current = action.tid
        return True

    def __len__(self) -> int:
        return len(self._actions)

    def __str__(self) -> str:
        return " ".join(str(a) for a in self._actions)

    def __repr__(self) -> str:
        return f"Schedule({self})"


def schedule_from_string(text: str) -> Schedule:
    """Parse ``"r1(x) w2(y) ..."`` into a :class:`Schedule`.

    Convenient for writing test cases in the database literature's
    notation.
    """
    actions: List[Action] = []
    for token in text.split():
        kind = token[0]
        rest = token[1:]
        tid_str, _, entity = rest.partition("(")
        entity = entity.rstrip(")")
        if kind not in ("r", "w") or not tid_str.isdigit() or not entity:
            raise MalformedHistoryError(f"cannot parse action {token!r}")
        ctor = r if kind == "r" else w
        actions.append(ctor(int(tid_str), entity))
    return Schedule(actions)
