"""Random schedule generation for the serializability experiments.

The Theorem-2 experiment cross-validates two independent deciders —
the database-side strict-view-serializability search and the
history-side m-linearizability checker — over randomized schedules.
Interesting instances cluster near the serializable/non-serializable
boundary, so the generator mixes serializable-by-construction
schedules (interleavings of a serial one that preserve reads-from)
with unconstrained random interleavings.
"""

from __future__ import annotations

import random
from typing import List

from repro.db.schedule import Action, ActionKind, Schedule
from repro.errors import WorkloadError


def random_schedule(
    n_transactions: int,
    n_entities: int,
    actions_per_txn: int,
    *,
    seed: int = 0,
    write_fraction: float = 0.5,
) -> Schedule:
    """A uniformly random interleaving of random transactions.

    Each transaction's program is a random mix of reads and writes on
    random entities; the interleaving is a random shuffle that
    preserves per-transaction order.  Small instances from this
    generator are frequently non-serializable, which is exactly what
    the cross-validation needs.
    """
    if n_transactions < 1 or n_entities < 1 or actions_per_txn < 1:
        raise WorkloadError("schedule dimensions must be positive")
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(n_entities)]
    programs: List[List[Action]] = []
    for tid in range(1, n_transactions + 1):
        program = []
        for _ in range(actions_per_txn):
            kind = (
                ActionKind.WRITE
                if rng.random() < write_fraction
                else ActionKind.READ
            )
            program.append(Action(tid, kind, rng.choice(entities)))
        programs.append(program)
    # Random interleaving preserving per-transaction order.
    slots: List[int] = []
    for idx, program in enumerate(programs):
        slots.extend([idx] * len(program))
    rng.shuffle(slots)
    cursors = [0] * len(programs)
    actions: List[Action] = []
    for idx in slots:
        actions.append(programs[idx][cursors[idx]])
        cursors[idx] += 1
    return Schedule(actions)


def random_serializable_schedule(
    n_transactions: int,
    n_entities: int,
    actions_per_txn: int,
    *,
    seed: int = 0,
    write_fraction: float = 0.5,
) -> Schedule:
    """A schedule that is *view*-serializable by construction.

    Builds a serial schedule first, then repeatedly swaps adjacent
    actions of different transactions when the swap provably preserves
    the augmented reads-from relation and final writers (swapping
    non-conflicting actions), so the result stays view equivalent to
    the tid-order serial schedule.  Strictness usually survives too
    (transactions rarely pass each other completely), but is *not*
    guaranteed — the experiments always ask the decider rather than
    assume it.
    """
    serial = random_schedule(
        n_transactions,
        n_entities,
        actions_per_txn,
        seed=seed,
        write_fraction=write_fraction,
    )
    # Re-lay out serially (transaction by transaction, in tid order).
    actions: List[Action] = []
    for tid in serial.tids:
        actions.extend(serial.transaction(tid))
    rng = random.Random(seed + 1)
    for _ in range(len(actions) * 4):
        i = rng.randrange(len(actions) - 1)
        first, second = actions[i], actions[i + 1]
        if first.tid == second.tid:
            continue
        conflicting = first.entity == second.entity and (
            first.kind is ActionKind.WRITE or second.kind is ActionKind.WRITE
        )
        if conflicting:
            continue
        actions[i], actions[i + 1] = second, first
    return Schedule(actions)
