"""View, strict view, and conflict serializability (Section 3).

The paper places database correctness notions as special cases of its
consistency conditions (each process executing a single m-operation):

* view equivalence        ≈ m-sequential consistency,
* strict view equivalence ≈ m-linearizability,
* conflict equivalence    ≈ m-normality under OO-constraint.

This module implements the database notions *directly* — a permutation
search over serial orders, entirely independent of
:mod:`repro.core.admissibility` — so that the Theorem-2 reduction can
be validated by two genuinely different deciders.

Definitions (Papadimitriou; footnote 2 of the paper):

* Two schedules over the same transactions are **view equivalent** iff
  their augmented versions have the same reads-from relation.
* ``S`` is **view serializable** iff it is view equivalent to some
  serial schedule.
* ``S`` is **strict view serializable** iff it is view equivalent to a
  serial schedule in which transactions that do not overlap in ``S``
  appear in the same order as in ``S``.
* ``S`` is **conflict serializable** iff its precedence (conflict)
  graph is acyclic — the polynomial-time sufficient condition.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.db.schedule import T_INIT, Schedule


def view_equivalent(a: Schedule, b: Schedule) -> bool:
    """View equivalence of two schedules over the same transactions."""
    if a.tids != b.tids:
        return False
    for tid in a.tids:
        if a.transaction(tid) != b.transaction(tid):
            return False
    return a.reads_from() == b.reads_from() and a.final_writers() == b.final_writers()


@dataclass
class SerializabilityResult:
    """Outcome of a serializability decision.

    Attributes:
        serializable: the verdict.
        witness_order: a serial transaction order establishing it.
        orders_tried: number of candidate serial orders examined.
    """

    serializable: bool
    witness_order: Optional[Tuple[int, ...]] = None
    orders_tried: int = 0

    def __bool__(self) -> bool:
        return self.serializable


def _serial_reads_from_ok(
    schedule: Schedule,
    order: Sequence[int],
    target_rf: Dict[Tuple[int, int, str], Tuple[int, int]],
    target_final: Dict[str, int],
) -> bool:
    """Check whether the serial order reproduces the target semantics.

    Replays whole transactions in ``order`` and compares the
    action-granularity reads-from map and the final writers against
    the original schedule's.
    """
    last_writer: Dict[str, Tuple[int, int]] = {
        e: (T_INIT, 0) for e in schedule.entities
    }
    read_counter: Dict[int, int] = {}
    write_counter: Dict[Tuple[int, str], int] = {}
    for tid in order:
        for action in schedule.transaction(tid):
            if action.is_read:
                idx = read_counter.get(tid, 0)
                read_counter[tid] = idx + 1
                if target_rf[(tid, idx, action.entity)] != last_writer[
                    action.entity
                ]:
                    return False
            else:
                key = (tid, action.entity)
                pos = write_counter.get(key, 0)
                write_counter[key] = pos + 1
                last_writer[action.entity] = (tid, pos)
    return {e: w[0] for e, w in last_writer.items()} == target_final


def is_view_serializable(
    schedule: Schedule, *, order_limit: Optional[int] = None
) -> SerializabilityResult:
    """Decide view serializability by exhaustive serial-order search.

    NP-complete in general; the search enumerates permutations of the
    transactions and replays each.  ``order_limit`` bounds the number
    of permutations examined (None = exhaustive).
    """
    return _search_serial_orders(schedule, honor_nonoverlap=False, order_limit=order_limit)


def is_strict_view_serializable(
    schedule: Schedule, *, order_limit: Optional[int] = None
) -> SerializabilityResult:
    """Decide strict view serializability (footnote 2 of the paper).

    As :func:`is_view_serializable`, but candidate serial orders must
    also preserve the relative order of transactions that do not
    overlap in the original schedule.
    """
    return _search_serial_orders(schedule, honor_nonoverlap=True, order_limit=order_limit)


def _search_serial_orders(
    schedule: Schedule,
    *,
    honor_nonoverlap: bool,
    order_limit: Optional[int],
) -> SerializabilityResult:
    tids = schedule.tids
    target_rf = schedule.reads_from()
    target_final = schedule.final_writers()
    forbidden: Set[Tuple[int, int]] = set()
    if honor_nonoverlap:
        # (a, b) non-overlapping with a first => b must not precede a.
        forbidden = {(b, a) for a, b in schedule.nonoverlap_pairs()}

    tried = 0
    for perm in itertools.permutations(tids):
        if order_limit is not None and tried >= order_limit:
            break
        if honor_nonoverlap:
            position = {tid: i for i, tid in enumerate(perm)}
            if any(position[x] < position[y] for (x, y) in forbidden):
                continue
        tried += 1
        if _serial_reads_from_ok(schedule, perm, target_rf, target_final):
            return SerializabilityResult(True, tuple(perm), tried)
    return SerializabilityResult(False, None, tried)


def conflict_pairs(schedule: Schedule) -> List[Tuple[int, int]]:
    """Edges of the precedence (conflict) graph.

    ``(a, b)`` is an edge when some action of ``a`` precedes and
    conflicts with some action of ``b`` (same entity, at least one
    write, different transactions).
    """
    edges: Set[Tuple[int, int]] = set()
    actions = schedule.actions
    for i, first in enumerate(actions):
        for second in actions[i + 1 :]:
            if first.tid == second.tid:
                continue
            if first.entity != second.entity:
                continue
            if first.is_write or second.is_write:
                edges.add((first.tid, second.tid))
    return sorted(edges)


def is_conflict_serializable(schedule: Schedule) -> SerializabilityResult:
    """Conflict serializability: acyclicity of the precedence graph.

    Polynomial time.  Conflict serializability implies (strict) view
    serializability but not conversely (blind writes).
    """
    edges = conflict_pairs(schedule)
    adjacency: Dict[int, List[int]] = {tid: [] for tid in schedule.tids}
    indegree: Dict[int, int] = {tid: 0 for tid in schedule.tids}
    for a, b in edges:
        adjacency[a].append(b)
        indegree[b] += 1
    ready = sorted(tid for tid, deg in indegree.items() if deg == 0)
    order: List[int] = []
    while ready:
        tid = ready.pop(0)
        order.append(tid)
        for succ in adjacency[tid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                ready.append(succ)
    if len(order) != len(schedule.tids):
        return SerializabilityResult(False, None, 0)
    return SerializabilityResult(True, tuple(order), 0)
