"""The Theorem-2 reduction: schedules → histories (Section 3).

Given a schedule ``S`` of database transactions, the paper constructs
a distributed system with one process per transaction; each process
executes a *single* m-operation whose operations are the transaction's
actions in schedule order.  The first and last actions of a
transaction define the invocation and response events of its
m-operation, so two transactions are non-overlapping in ``S`` iff the
corresponding m-operations are non-overlapping in the history ``H``.
The history's order consists of the reads-from relation and the
real-time order, and:

    ``S`` is strict view serializable  ⟺  ``H`` is m-linearizable.

This module implements the construction and both directions of the
equivalence as executable artifacts; the benchmark
``benchmarks/test_thm2_reduction.py`` validates the biconditional over
randomized schedules using two independent deciders.

Value assignment
----------------

Histories carry concrete read/write values while schedules are
symbolic.  We realise each write ``w_i(x)`` (the *k*-th write of ``x``
in the schedule) with the unique value ``k`` and each read with the
value its schedule reads-from dictates, so the derived history has
exactly the reads-from relation of the schedule.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.history import History
from repro.core.operation import MOperation, Operation, read, write
from repro.db.schedule import T_INIT, Schedule

#: Value written by the initial transaction / initial m-operation.
INITIAL_VALUE = 0


def schedule_to_history(
    schedule: Schedule, *, include_final: bool = True
) -> History:
    """Build the Theorem-2 history for a schedule.

    Each transaction ``T_i`` becomes an m-operation issued by its own
    process ``P_i``; invocation and response times are the schedule
    positions of the transaction's first and last actions (shrunk by a
    half step so a response at position ``p`` precedes an invocation at
    position ``p + 1`` in real time, matching "the first and last
    actions ... define the invocation and response events").

    The paper constructs the system from the *augmented* schedule
    (footnote 3): the initial transaction ``T0`` is the history's
    imaginary initial m-operation, and the final transaction
    ``T_inf`` — which reads every entity after everything else —
    becomes a final query m-operation on its own process
    (``include_final=True``).  Without it the history would lose view
    equivalence's final-writes condition.

    The returned history's reads-from map equals the schedule's
    (projected to objects, as in D 4.3), and its m-operations overlap
    exactly when the corresponding transactions overlap in ``S``.

    Raises:
        MalformedOperationError / MalformedHistoryError: when the
            schedule's observations are not expressible as a history
            at all — e.g. a transaction reads an entity twice from
            different writers, or reads a write that its writer
            overwrote within the same transaction.  The paper's model
            excludes these by fiat (Section 2.2 "we ignore such read
            and write operations"); any such schedule is also never
            strict view serializable, so deciders treat the exception
            as a negative verdict (see :func:`reduction_decides`).
    """
    # Assign a unique value to every write: the k-th write of entity x
    # in schedule order writes value k (the initial write is value 0).
    write_value: Dict[int, int] = {}  # action position -> value
    write_count: Dict[str, int] = {}
    for pos, action in enumerate(schedule.actions):
        if action.is_write:
            value = write_count.get(action.entity, 0) + 1
            write_count[action.entity] = value
            write_value[pos] = value

    # Track, while replaying the schedule, which value each read sees.
    read_value: Dict[int, int] = {}  # action position -> value
    current: Dict[str, int] = {e: INITIAL_VALUE for e in schedule.entities}
    read_writer: Dict[int, int] = {}  # action position -> writer tid
    writer_tid: Dict[str, int] = {e: T_INIT for e in schedule.entities}
    for pos, action in enumerate(schedule.actions):
        if action.is_read:
            read_value[pos] = current[action.entity]
            read_writer[pos] = writer_tid[action.entity]
        else:
            current[action.entity] = write_value[pos]
            writer_tid[action.entity] = action.tid

    # Build one m-operation per transaction.
    mops: List[MOperation] = []
    reads_from: Dict[Tuple[int, str], int] = {}
    uid_of_tid = {tid: tid for tid in schedule.tids}  # tids are positive
    for tid in schedule.tids:
        ops: List[Operation] = []
        positions = [
            pos
            for pos, action in enumerate(schedule.actions)
            if action.tid == tid
        ]
        internal_written: set = set()
        for pos in positions:
            action = schedule.actions[pos]
            if action.is_read:
                ops.append(read(action.entity, read_value[pos]))
                # Only external reads get a reads-from entry.
                if action.entity not in internal_written:
                    writer = read_writer[pos]
                    writer_uid = 0 if writer == T_INIT else uid_of_tid[writer]
                    reads_from[(tid, action.entity)] = writer_uid
            else:
                ops.append(write(action.entity, write_value[pos]))
                internal_written.add(action.entity)
        first, last = schedule.span(tid)
        mops.append(
            MOperation(
                uid=uid_of_tid[tid],
                process=tid,
                ops=tuple(ops),
                inv=float(first),
                resp=float(last) + 0.5,
                name=f"T{tid}",
            )
        )

    if include_final:
        # T_inf: reads every entity after all other m-operations.
        final_uid = max(schedule.tids, default=0) + 1
        final_ops: List[Operation] = []
        for entity in sorted(schedule.entities):
            final_ops.append(read(entity, current[entity]))
            writer = writer_tid[entity]
            reads_from[(final_uid, entity)] = (
                0 if writer == T_INIT else uid_of_tid[writer]
            )
        mops.append(
            MOperation(
                uid=final_uid,
                process=final_uid,
                ops=tuple(final_ops),
                inv=float(len(schedule.actions)) + 1.0,
                resp=float(len(schedule.actions)) + 2.0,
                name="T_inf",
            )
        )

    return History.from_mops(
        mops,
        initial_values={e: INITIAL_VALUE for e in schedule.entities},
        reads_from=reads_from,
    )


def reduction_decides(schedule: Schedule) -> bool:
    """Decide strict view serializability *via* the reduction.

    Builds the Theorem-2 history and checks m-linearizability with the
    exact checker.  Schedules whose observations are inexpressible as
    histories (see :func:`schedule_to_history`) are never strict view
    serializable and yield False.
    """
    from repro.core.consistency import check_m_linearizability
    from repro.errors import ReproError

    try:
        history = schedule_to_history(schedule)
    except ReproError:
        return False
    return check_m_linearizability(history, method="exact").holds


def history_overlap_matches_schedule(
    schedule: Schedule, history: History
) -> bool:
    """Sanity property of the construction (used in tests).

    "two transactions are non-overlapping in the schedule S if and
    only if the corresponding m-operations are non-overlapping in H".
    """
    for a in schedule.tids:
        for b in schedule.tids:
            if a == b:
                continue
            if schedule.overlaps(a, b) != history[a].overlaps(history[b]):
                return False
    return True
