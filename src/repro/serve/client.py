"""``repro.serve.client`` — a stdlib client for the serving daemon.

Everything speaks plain JSON over :mod:`urllib.request`, so scripts,
CI jobs and the load generator need no third-party HTTP stack:

    from repro.runtime import RunSpec
    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8642")
    submitted = client.submit(RunSpec(protocol="mlin", ops=8))
    artifact = client.wait(submitted["run_id"])["artifact"]

Server-reported errors raise :class:`ServeClientError` carrying the
HTTP status and the daemon's ``error`` message.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Union

from repro.errors import ReproError
from repro.runtime import RunSpec
from repro.serve.clock import sleep, tick

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ReproError):
    """An HTTP error from the daemon (carries ``.status``)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Thin JSON client over one daemon base URL."""

    def __init__(self, base_url: str, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw HTTP
    # ------------------------------------------------------------------

    def _request(
        self,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(url, data=data, headers=headers)
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                payload = response.read()
        except urllib.error.HTTPError as exc:
            detail = exc.read().decode("utf-8", "replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass  # non-JSON error body; keep the raw text
            raise ServeClientError(exc.code, detail) from None
        except urllib.error.URLError as exc:
            raise ServeClientError(0, f"cannot reach {url}: {exc.reason}")
        return json.loads(payload.decode("utf-8"))

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def submit(
        self, spec: Union[RunSpec, Dict[str, Any]]
    ) -> Dict[str, Any]:
        """POST one spec; returns the submission response.

        The response carries ``run_id``, ``status``, ``outcome``
        (``queued``/``coalesced``/``cached``) and, on a cache hit,
        the ``artifact`` itself.
        """
        body = spec.to_dict() if isinstance(spec, RunSpec) else spec
        return self._request("/v1/runs", body=body)

    def run(self, run_id: str) -> Dict[str, Any]:
        """GET one run's status (+ artifact once terminal)."""
        return self._request(f"/v1/runs/{run_id}")["run"]

    def wait(
        self,
        run_id: str,
        timeout: float = 60.0,
        poll_interval: float = 0.02,
    ) -> Dict[str, Any]:
        """Poll until the run is terminal; returns the run dict."""
        deadline = tick() + timeout
        while True:
            info = self.run(run_id)
            if info["status"] in ("done", "failed", "cached"):
                return info
            if tick() >= deadline:
                raise ServeClientError(
                    0,
                    f"run {run_id} still {info['status']} after "
                    f"{timeout}s",
                )
            sleep(poll_interval)

    def submit_and_wait(
        self,
        spec: Union[RunSpec, Dict[str, Any]],
        timeout: float = 60.0,
    ) -> Dict[str, Any]:
        """Submit, then wait; cache hits return without polling."""
        submitted = self.submit(spec)
        if submitted["outcome"] == "cached":
            return {
                "run_id": submitted["run_id"],
                "status": "cached",
                "artifact": submitted["artifact"],
                "spec_hash": submitted["spec_hash"],
            }
        return self.wait(submitted["run_id"], timeout=timeout)

    def artifact(self, history_hash: str) -> Dict[str, Any]:
        """GET a stored artifact by its history hash."""
        return self._request(f"/v1/artifacts/{history_hash}")

    def trace(self, run_id: str) -> Dict[str, Any]:
        """GET the tracer spans of a traced run."""
        return self._request(f"/trace/{run_id}")

    def metrics(self) -> Dict[str, Any]:
        """GET the daemon's metrics snapshot."""
        return self._request("/metrics")

    def healthy(self) -> bool:
        """True when the daemon answers its liveness probe."""
        try:
            return bool(self._request("/healthz").get("ok"))
        except (ServeClientError, OSError):
            return False

    def wait_healthy(self, timeout: float = 20.0) -> bool:
        """Poll /healthz until the daemon is up (startup helper)."""
        deadline = tick() + timeout
        while tick() < deadline:
            if self.healthy():
                return True
            sleep(0.05)
        return False
