"""Minimal HTML dashboard for the serving daemon (``GET /``).

One dependency-free, self-contained page rendered server-side from
:meth:`ControlPlane.state_summary`: queue depth, cache hit rate,
per-protocol verdict counts, store/retention state and the most
recent runs.  The page carries a ``<meta http-equiv="refresh">`` so a
browser left open tracks a load test live without any JavaScript.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List

__all__ = ["render_dashboard"]

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem; color: #1a1a2e; background: #fafafa; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.6rem; }
table { border-collapse: collapse; margin-top: .4rem; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem;
         text-align: left; font-size: .85rem; }
th { background: #eef2f7; }
.tiles { display: flex; gap: 1rem; flex-wrap: wrap; margin-top: 1rem; }
.tile { border: 1px solid #cbd5e1; border-radius: 6px;
        padding: .6rem 1rem; background: #fff; min-width: 9rem; }
.tile .v { font-size: 1.4rem; font-weight: 600; }
.tile .k { font-size: .75rem; color: #64748b; }
.ok { color: #15803d; } .bad { color: #b91c1c; }
"""


def _tile(value: str, label: str, css: str = "") -> str:
    return (
        f'<div class="tile"><div class="v {css}">{html.escape(value)}'
        f'</div><div class="k">{html.escape(label)}</div></div>'
    )


def _verdict_rows(verdicts: Dict[str, int]) -> str:
    rows: List[str] = []
    for key in sorted(verdicts):
        protocol, _, outcome = key.partition("/")
        css = "ok" if outcome == "ok" else "bad"
        rows.append(
            f"<tr><td>{html.escape(protocol)}</td>"
            f'<td class="{css}">{html.escape(outcome)}</td>'
            f"<td>{verdicts[key]}</td></tr>"
        )
    if not rows:
        rows.append('<tr><td colspan="3">no runs yet</td></tr>')
    return "".join(rows)


def _recent_rows(recent: List[Dict[str, Any]]) -> str:
    rows: List[str] = []
    for info in reversed(recent):
        status = str(info.get("status"))
        css = "ok" if status in ("done", "cached") else (
            "bad" if status == "failed" else ""
        )
        seconds = info.get("run_seconds")
        rows.append(
            f"<tr><td>{html.escape(str(info.get('run_id')))}</td>"
            f"<td>{html.escape(str(info.get('protocol')))}"
            f"/{html.escape(str(info.get('workload')))}</td>"
            f"<td>{info.get('seed')}</td>"
            f'<td class="{css}">{html.escape(status)}</td>'
            f"<td>{'' if seconds is None else f'{seconds * 1000:.1f} ms'}"
            f"</td></tr>"
        )
    if not rows:
        rows.append('<tr><td colspan="5">no runs yet</td></tr>')
    return "".join(rows)


def render_dashboard(state: Dict[str, Any]) -> str:
    """The full dashboard page for one state summary."""
    cache = state.get("cache", {})
    store = state.get("store", {})
    by_status = state.get("runs_by_status", {})
    hit_rate = cache.get("hit_rate", 0.0)
    done = by_status.get("done", 0) + by_status.get("cached", 0)
    failed = by_status.get("failed", 0)
    tiles = "".join(
        [
            _tile(
                f"{state.get('queue_depth', 0)}/"
                f"{state.get('queue_capacity', 0)}",
                "queue depth",
            ),
            _tile(str(state.get("workers", 0)), "workers"),
            _tile(f"{hit_rate:.0%}", "cache hit rate"),
            _tile(str(done), "runs served", "ok"),
            _tile(str(failed), "runs failed", "bad" if failed else ""),
            _tile(str(store.get("entries", 0)), "stored artifacts"),
            _tile(str(store.get("evictions", 0)), "retention evictions"),
            _tile(f"{state.get('uptime_s', 0.0):.0f} s", "uptime"),
        ]
    )
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="3">
<title>repro serve — verification control plane</title>
<style>{_STYLE}</style>
</head>
<body>
<h1>repro serve — verification control plane</h1>
<div class="tiles">{tiles}</div>
<h2>Per-protocol verdicts</h2>
<table>
<tr><th>protocol</th><th>outcome</th><th>runs</th></tr>
{_verdict_rows(state.get("verdicts", {}))}
</table>
<h2>Recent runs</h2>
<table>
<tr><th>run</th><th>protocol/workload</th><th>seed</th>
<th>status</th><th>exec time</th></tr>
{_recent_rows(state.get("recent_runs", []))}
</table>
<p><a href="/metrics">/metrics</a> &middot; JSON API:
POST /v1/runs &middot; GET /v1/runs/&lt;id&gt; &middot;
GET /v1/artifacts/&lt;hash&gt; &middot; GET /trace/&lt;id&gt;</p>
</body>
</html>
"""
