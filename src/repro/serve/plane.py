"""The verification control plane behind ``python -m repro serve``.

:class:`ControlPlane` owns everything the HTTP layer exposes: a
bounded queue drained by a worker-thread pool (each worker drives
:func:`repro.runtime.execute`), the verdict cache, the
content-addressed artifact store, the JSONL audit log, and a
:class:`~repro.obs.metrics.MetricsRegistry` of serving metrics.

Submission semantics (the interesting part):

* a spec whose canonical hash is in the **verdict cache** never
  executes — the submission returns a terminal ``cached`` run that
  carries the stored artifact;
* a spec whose hash matches an **in-flight** run coalesces onto it —
  N concurrent clients submitting one spec cost one execution and
  all observe the same run id and artifact bytes;
* anything else is enqueued, executed by a worker, stored (artifact
  by ``history_hash``, verdict by spec hash) and marked ``done`` —
  or ``failed``, and failures are deliberately *not* cached so a
  resubmission retries.

The simulator itself is single-threaded per run and shares no state
across clusters, so runs execute concurrently; the one global the
runtime touches — the :mod:`repro.obs` tracer/metrics slots — is
serialized under ``_OBS_LOCK`` for the (rare) specs that ask for
tracing or metrics.
"""

from __future__ import annotations

import queue
import threading
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.obs import MetricsRegistry
from repro.runtime import RunSpec, execute
from repro.runtime.registry import get_protocol, get_workload
from repro.serve.audit import AuditLog
from repro.serve.cache import VerdictCache
from repro.serve.clock import tick, wall_now
from repro.serve.store import ArtifactStore, RetentionPolicy

__all__ = [
    "ControlPlane",
    "QueueFullError",
    "RunRecord",
    "ServeConfig",
    "SubmitError",
]

#: Serializes runs that install the process-global obs tracer/metrics.
_OBS_LOCK = threading.Lock()


class SubmitError(ReproError):
    """The submission is malformed (HTTP 400)."""


class QueueFullError(ReproError):
    """The run queue is at capacity (HTTP 503; retry later)."""


class ServeConfig:
    """Daemon knobs, one place (CLI flags map 1:1 onto these)."""

    __slots__ = (
        "host",
        "port",
        "workers",
        "store_dir",
        "queue_depth",
        "cache_entries",
        "retain_entries",
        "retain_bytes",
        "max_run_records",
    )

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8642,
        workers: int = 2,
        store_dir: str = "repro-store",
        queue_depth: int = 64,
        cache_entries: int = 256,
        retain_entries: Optional[int] = 512,
        retain_bytes: Optional[int] = 256 * 1024 * 1024,
        max_run_records: int = 4096,
    ) -> None:
        if workers < 1:
            raise SubmitError(f"workers must be >= 1, got {workers}")
        self.host = host
        self.port = port
        self.workers = workers
        self.store_dir = store_dir
        self.queue_depth = queue_depth
        self.cache_entries = cache_entries
        self.retain_entries = retain_entries
        self.retain_bytes = retain_bytes
        self.max_run_records = max_run_records


class RunRecord:
    """One submission's lifecycle, from queue to terminal state.

    The record is read by HTTP handler threads while a worker thread
    drives it through ``queued -> running -> done/failed``, so every
    mutable field lives behind the record's own lock: readers go
    through the locked properties, writers through the three
    transition methods.  ``to_dict`` snapshots all fields under one
    lock acquisition so a client never observes a torn state (e.g.
    ``status == "done"`` with ``run_seconds`` still ``None``).

    Lock ordering: ``ControlPlane._lock`` may be held while taking a
    record's lock (``state_summary`` does), never the reverse.
    """

    TERMINAL = ("done", "failed", "cached")

    __slots__ = (
        "run_id",
        "spec",
        "spec_hash",
        "submitted_at",
        "event",
        "_lock",
        "_status",
        "_artifact",
        "_history_hash",
        "_error",
        "_started_at",
        "_finished_at",
        "_run_seconds",
        "_trace",
    )

    def __init__(self, run_id: str, spec: RunSpec, spec_hash: str) -> None:
        self.run_id = run_id
        self.spec = spec
        self.spec_hash = spec_hash
        self.submitted_at = wall_now()
        self.event = threading.Event()
        self._lock = threading.Lock()
        self._status = "queued"
        self._artifact: Optional[Dict[str, Any]] = None
        self._history_hash: Optional[str] = None
        self._error: Optional[str] = None
        self._started_at: Optional[float] = None
        self._finished_at: Optional[float] = None
        self._run_seconds: Optional[float] = None
        self._trace: Optional[List[Dict[str, Any]]] = None

    # -- locked reads ---------------------------------------------------

    @property
    def status(self) -> str:
        with self._lock:
            return self._status

    @property
    def artifact(self) -> Optional[Dict[str, Any]]:
        with self._lock:
            return self._artifact

    @property
    def history_hash(self) -> Optional[str]:
        with self._lock:
            return self._history_hash

    @property
    def error(self) -> Optional[str]:
        with self._lock:
            return self._error

    @property
    def started_at(self) -> Optional[float]:
        with self._lock:
            return self._started_at

    @property
    def finished_at(self) -> Optional[float]:
        with self._lock:
            return self._finished_at

    @property
    def run_seconds(self) -> Optional[float]:
        with self._lock:
            return self._run_seconds

    @property
    def trace(self) -> Optional[List[Dict[str, Any]]]:
        with self._lock:
            return self._trace

    @property
    def terminal(self) -> bool:
        with self._lock:
            return self._status in self.TERMINAL

    # -- transitions (worker / submit thread) ---------------------------

    def mark_running(self) -> None:
        with self._lock:
            self._status = "running"
            self._started_at = wall_now()

    def finish(
        self,
        payload: Dict[str, Any],
        history_hash: Optional[str],
        trace: Optional[List[Dict[str, Any]]],
        run_seconds: float,
    ) -> None:
        with self._lock:
            self._artifact = payload
            self._history_hash = history_hash
            self._trace = trace
            self._run_seconds = run_seconds
            self._finished_at = wall_now()
            self._status = "done"

    def fail(self, error: str, run_seconds: float) -> None:
        with self._lock:
            self._error = error
            self._run_seconds = run_seconds
            self._finished_at = wall_now()
            self._status = "failed"

    def complete_cached(self, artifact: Dict[str, Any]) -> None:
        """Terminal from birth: the verdict cache had the answer."""
        with self._lock:
            self._artifact = artifact
            self._history_hash = artifact.get("history_hash")
            self._finished_at = self.submitted_at
            self._run_seconds = 0.0
            self._status = "cached"
        self.event.set()

    def to_dict(self, *, include_artifact: bool = True) -> Dict[str, Any]:
        with self._lock:
            terminal = self._status in self.TERMINAL
            info: Dict[str, Any] = {
                "run_id": self.run_id,
                "status": self._status,
                "protocol": self.spec.protocol,
                "workload": self.spec.workload,
                "seed": self.spec.seed,
                "spec_hash": self.spec_hash,
                "history_hash": self._history_hash,
                "error": self._error,
                "submitted_at": self.submitted_at,
                "started_at": self._started_at,
                "finished_at": self._finished_at,
                "run_seconds": self._run_seconds,
                "traced": self._trace is not None,
            }
            if include_artifact:
                info["artifact"] = self._artifact if terminal else None
            return info


class ControlPlane:
    """Worker pool + cache + store + audit behind one submit() call."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        root = Path(self.config.store_dir)
        self.store = ArtifactStore(
            root / "artifacts",
            RetentionPolicy(
                max_entries=self.config.retain_entries,
                max_bytes=self.config.retain_bytes,
            ),
        )
        self.cache = VerdictCache(
            root / "verdicts", memory_entries=self.config.cache_entries
        )
        self.audit = AuditLog(root / "requests.log.jsonl")
        self.registry = MetricsRegistry()
        self.started_at = wall_now()
        self._lock = threading.Lock()
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue(
            maxsize=self.config.queue_depth
        )
        self._records: Dict[str, RunRecord] = {}
        self._order: List[str] = []
        self._inflight: Dict[str, str] = {}
        self._seq = 0
        self._verdicts: Dict[Tuple[str, str], int] = {}
        self._threads: List[threading.Thread] = []
        # Fill the registries up front so worker threads never race a
        # first-touch import of the protocol/workload modules.
        get_protocol("msc")
        get_workload("random")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self._threads:
                return  # already started; a second pool would race the queue
            self._threads = [
                threading.Thread(
                    target=self._worker,
                    name=f"repro-serve-worker-{index}",
                    daemon=True,
                )
                for index in range(self.config.workers)
            ]
            threads = list(self._threads)
        for thread in threads:
            thread.start()

    def stop(self) -> None:
        # Swap the pool out under the lock; join outside it so a
        # worker draining its last run can still use the plane.
        with self._lock:
            threads, self._threads = self._threads, []
        for _ in threads:
            self._queue.put(None)
        for thread in threads:
            thread.join(timeout=30.0)
        self.audit.close()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(
        self, data: Mapping[str, Any], client: Optional[str] = None
    ) -> Tuple[RunRecord, str]:
        """Submit one spec; returns ``(record, outcome)``.

        ``outcome`` is ``"cached"``, ``"coalesced"`` or ``"queued"``.
        Raises :class:`SubmitError` on a malformed spec and
        :class:`QueueFullError` when the queue is at capacity.
        """
        if not isinstance(data, Mapping):
            raise SubmitError("submission body must be a JSON object")
        try:
            spec = RunSpec.from_dict(data)
            # Resolve both registry names now so a typo is a 4xx at
            # submit time, not a failed run discovered by polling.
            get_protocol(spec.protocol)
            get_workload(spec.workload)
        except ReproError as exc:
            self.registry.counter("serve.submissions", outcome="rejected").inc()
            self.audit.record(
                "reject", client=client, detail=str(exc)
            )
            raise SubmitError(str(exc)) from exc
        spec_hash = spec.spec_hash()
        with self._lock:
            cached = self.cache.get(spec_hash)
            if cached is not None:
                record = self._new_record(spec, spec_hash)
                record.complete_cached(cached)
                outcome = "cached"
            else:
                inflight_id = self._inflight.get(spec_hash)
                if inflight_id is not None:
                    record = self._records[inflight_id]
                    outcome = "coalesced"
                else:
                    record = self._new_record(spec, spec_hash)
                    try:
                        self._queue.put_nowait(record.run_id)
                    except queue.Full:
                        self._drop_record(record)
                        self.registry.counter(
                            "serve.submissions", outcome="shed"
                        ).inc()
                        self.audit.record(
                            "shed",
                            spec_hash=spec_hash,
                            protocol=spec.protocol,
                            client=client,
                        )
                        raise QueueFullError(
                            f"run queue is full "
                            f"({self.config.queue_depth} deep); retry"
                        ) from None
                    self._inflight[spec_hash] = record.run_id
                    outcome = "queued"
        self.registry.counter("serve.submissions", outcome=outcome).inc()
        self.audit.record(
            "submit",
            run_id=record.run_id,
            spec_hash=spec_hash,
            protocol=spec.protocol,
            status=record.status,
            client=client,
            detail=outcome,
        )
        return record, outcome

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------

    def run_record(self, run_id: str) -> Optional[RunRecord]:
        with self._lock:
            return self._records.get(run_id)

    def wait(self, run_id: str, timeout: float = 60.0) -> Optional[RunRecord]:
        """Block until the run reaches a terminal state (or timeout)."""
        record = self.run_record(run_id)
        if record is None:
            return None
        record.event.wait(timeout)
        return record

    def artifact(self, history_hash: str) -> Optional[Dict[str, Any]]:
        return self.store.get(history_hash)

    def trace_records(self, run_id: str) -> Optional[List[Dict[str, Any]]]:
        record = self.run_record(run_id)
        return record.trace if record is not None else None

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The obs-registry snapshot plus the serving state summary."""
        snapshot = self.registry.snapshot()
        snapshot["serve"] = self.state_summary()
        return snapshot

    def state_summary(self) -> Dict[str, Any]:
        """Queue/cache/store/verdict state for /metrics and the dashboard."""
        with self._lock:
            by_status: Dict[str, int] = {}
            for record in self._records.values():
                by_status[record.status] = by_status.get(record.status, 0) + 1
            verdicts = {
                f"{protocol}/{outcome}": count
                for (protocol, outcome), count in sorted(
                    self._verdicts.items()
                )
            }
            recent = [
                self._records[run_id].to_dict(include_artifact=False)
                for run_id in self._order[-20:]
            ]
        return {
            "uptime_s": wall_now() - self.started_at,
            "workers": self.config.workers,
            "queue_depth": self._queue.qsize(),
            "queue_capacity": self.config.queue_depth,
            "runs_by_status": by_status,
            "verdicts": verdicts,
            "cache": self.cache.stats(),
            "store": self.store.stats(),
            "audit_entries": self.audit.entries,
            "recent_runs": recent,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _new_record(self, spec: RunSpec, spec_hash: str) -> RunRecord:
        # Caller holds the lock.
        self._seq += 1
        run_id = f"r{self._seq:06d}-{spec_hash[:8]}"
        record = RunRecord(run_id, spec, spec_hash)
        self._records[run_id] = record
        self._order.append(run_id)
        self._prune_records()
        return record

    def _drop_record(self, record: RunRecord) -> None:
        # Caller holds the lock.
        self._records.pop(record.run_id, None)
        if self._order and self._order[-1] == record.run_id:
            self._order.pop()

    def _prune_records(self) -> None:
        # Caller holds the lock.  Drop the oldest *terminal* records
        # beyond the bound; queued/running runs are never dropped.
        excess = len(self._order) - self.config.max_run_records
        if excess <= 0:
            return
        kept: List[str] = []
        for run_id in self._order:
            record = self._records.get(run_id)
            if record is None:
                continue
            if excess > 0 and record.terminal:
                del self._records[run_id]
                excess -= 1
            else:
                kept.append(run_id)
        self._order = kept

    def _worker(self) -> None:
        while True:
            run_id = self._queue.get()
            try:
                if run_id is None:
                    return
                record = self.run_record(run_id)
                if record is not None:
                    self._execute(record)
            finally:
                if run_id is not None:
                    record = self.run_record(run_id)
                    if record is not None:
                        with self._lock:
                            if self._inflight.get(record.spec_hash) == run_id:
                                del self._inflight[record.spec_hash]
                        record.event.set()
                self._queue.task_done()

    def _execute(self, record: RunRecord) -> None:
        record.mark_running()
        started = tick()
        spec = record.spec
        try:
            if spec.tracing or spec.metrics:
                with _OBS_LOCK:
                    artifact = execute(spec)
            else:
                artifact = execute(spec)
        except Exception as exc:  # a failed run, not a dead daemon
            run_seconds = tick() - started
            error = f"{type(exc).__name__}: {exc}"
            record.fail(error, run_seconds)
            self.registry.counter(
                "serve.runs", result="failed", protocol=spec.protocol
            ).inc()
            self._count_verdict(spec.protocol, "failed")
            self.audit.record(
                "failed",
                run_id=record.run_id,
                spec_hash=record.spec_hash,
                protocol=spec.protocol,
                detail=error,
            )
        else:
            payload = artifact.to_dict()
            trace = (
                artifact.tracer.records()
                if artifact.tracer is not None
                else None
            )
            # Persist before flipping status: a client that sees
            # "done" must find the artifact in the store/cache too.
            if artifact.history_hash:
                self.store.put(artifact.history_hash, payload)
            self.cache.put(record.spec_hash, payload)
            run_seconds = tick() - started
            record.finish(
                payload, artifact.history_hash, trace, run_seconds
            )
            outcome = "ok" if artifact.ok else "violated"
            self.registry.counter(
                "serve.runs", result=outcome, protocol=spec.protocol
            ).inc()
            self._count_verdict(spec.protocol, outcome)
            self.audit.record(
                "done",
                run_id=record.run_id,
                spec_hash=record.spec_hash,
                protocol=spec.protocol,
                status=outcome,
            )
        self.registry.histogram(
            "serve.run.seconds",
            buckets=(0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0),
        ).observe(run_seconds)

    def _count_verdict(self, protocol: str, outcome: str) -> None:
        with self._lock:
            key = (protocol, outcome)
            self._verdicts[key] = self._verdicts.get(key, 0) + 1
