"""The HTTP face of the control plane: ``python -m repro serve``.

A stdlib :class:`~http.server.ThreadingHTTPServer` (one thread per
connection, daemon threads) routing onto a :class:`ControlPlane`:

========================  =============================================
``POST /v1/runs``         submit a RunSpec JSON; 202 + run id (200 on a
                          verdict-cache hit, artifact included)
``GET /v1/runs/<id>``     run status; the artifact once terminal
``GET /v1/artifacts/<h>`` content-addressed artifact by history hash
``GET /metrics``          MetricsRegistry snapshot + serving summary
``GET /trace/<id>``       recorded tracer spans of a traced run
``GET /``                 HTML dashboard
``GET /healthz``          liveness probe
========================  =============================================

Error mapping: malformed submissions are 400, unknown ids/hashes 404,
a full run queue 503 — never a 500 for a *failed run* (that is a
``status: failed`` on a 200; the daemon itself stayed healthy).

On startup the daemon writes ``serve.json`` (bound host/port/pid)
into the store directory so tooling launched against ``--port 0``
can discover the ephemeral port.
"""

from __future__ import annotations

import json
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.serve.dashboard import render_dashboard
from repro.serve.plane import ControlPlane, QueueFullError, ServeConfig, SubmitError

__all__ = ["ServeDaemon"]

#: Submission bodies beyond this are rejected outright (a RunSpec with
#: an explicit fault plan is a few KiB; 2 MiB is generous).
MAX_BODY_BYTES = 2 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Routes requests onto ``self.server.plane``."""

    server_version = "repro-serve"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @property
    def plane(self) -> ControlPlane:
        return self.server.plane  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging belongs to the audit log, not stderr.
        pass

    def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_html(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/html; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "invalid Content-Length")
            return None
        if length <= 0:
            self._error(400, "submission body is empty")
            return None
        if length > MAX_BODY_BYTES:
            self._error(413, f"body exceeds {MAX_BODY_BYTES} bytes")
            return None
        return self.rfile.read(length)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/v1/runs":
            self._error(404, f"no POST route {self.path!r}")
            return
        body = self._read_body()
        if body is None:
            return
        try:
            data = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"submission is not valid JSON: {exc}")
            return
        if not isinstance(data, dict):
            self._error(400, "submission must be a JSON object")
            return
        try:
            record, outcome = self.plane.submit(
                data, client=self.client_address[0]
            )
        except SubmitError as exc:
            self._error(400, str(exc))
            return
        except QueueFullError as exc:
            self._error(503, str(exc))
            return
        payload = {
            "run_id": record.run_id,
            "status": record.status,
            "outcome": outcome,
            "spec_hash": record.spec_hash,
        }
        if outcome == "cached":
            payload["artifact"] = record.artifact
            self._send_json(200, payload)
        else:
            self._send_json(202, payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path in ("/", "/index.html"):
            self._send_html(
                200, render_dashboard(self.plane.state_summary())
            )
        elif path == "/healthz":
            self._send_json(200, {"ok": True})
        elif path == "/metrics":
            self._send_json(200, self.plane.metrics_snapshot())
        elif path.startswith("/v1/runs/"):
            self._get_run(path[len("/v1/runs/"):])
        elif path.startswith("/v1/artifacts/"):
            self._get_artifact(path[len("/v1/artifacts/"):])
        elif path.startswith("/trace/"):
            self._get_trace(path[len("/trace/"):])
        else:
            self._error(404, f"no route {path!r}")

    def _get_run(self, run_id: str) -> None:
        record = self.plane.run_record(run_id)
        if record is None:
            self._error(404, f"unknown run {run_id!r}")
            return
        self._send_json(200, {"run": record.to_dict()})

    def _get_artifact(self, history_hash: str) -> None:
        try:
            artifact = self.plane.artifact(history_hash)
        except Exception as exc:  # bad key shape or torn file
            self._error(400, str(exc))
            return
        if artifact is None:
            self._error(
                404,
                f"no artifact {history_hash!r} (never stored, or "
                "evicted by the retention policy)",
            )
            return
        self._send_json(200, artifact)

    def _get_trace(self, run_id: str) -> None:
        record = self.plane.run_record(run_id)
        if record is None:
            self._error(404, f"unknown run {run_id!r}")
            return
        if record.trace is None:
            self._error(
                404,
                f"run {run_id!r} was not traced; submit the spec "
                'with "tracing": true',
            )
            return
        self._send_json(
            200, {"run_id": run_id, "spans": record.trace}
        )


class ServeDaemon:
    """Owns the HTTP server + control plane pair.

    ``start()`` binds, spins up the worker pool and serves in a
    background thread; ``serve_forever()`` is the foreground variant
    the CLI uses.  Either way ``stop()`` drains cleanly.
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.plane = ControlPlane(self.config)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.daemon_threads = True
        self._httpd.plane = self.plane  # type: ignore[attr-defined]
        # start()/stop() may be called from different threads (a test
        # harness tearing down a daemon its setup started); the serve
        # thread handle is handed over under this lock.
        self._lock = threading.Lock()
        self._thread: Optional[threading.Thread] = None
        self._write_endpoint_file()

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``--port 0`` to the real one)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _write_endpoint_file(self) -> None:
        # Discovery hook for tooling that launched us with --port 0.
        path = Path(self.config.store_dir) / "serve.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(
                {
                    "host": self.host,
                    "port": self.port,
                    "url": self.url,
                    "pid": os.getpid(),
                },
                sort_keys=True,
            )
            + "\n",
            encoding="utf-8",
        )

    def start(self) -> None:
        """Serve in a background thread (tests, benchmarks)."""
        self.plane.start()
        thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        with self._lock:
            self._thread = thread
        thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (the CLI)."""
        self.plane.start()
        try:
            self._httpd.serve_forever()
        finally:
            self.plane.stop()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=10.0)
            self.plane.stop()

    def __enter__(self) -> "ServeDaemon":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
