"""Wall-clock access for the serving layer, in one place.

The simulation stack must never read the wall clock (the static
analyzer's ``wall-clock`` lint enforces it), but a network daemon
legitimately timestamps requests, measures latency and sleeps between
polls.  Every wall-clock read in :mod:`repro.serve` goes through this
module so the exemption is a single, auditable surface — nothing in
``repro.serve`` touches ``time.*`` directly.
"""

from __future__ import annotations

import time


def wall_now() -> float:
    """Seconds since the epoch (audit timestamps, retention ages)."""
    return time.time()  # repro: allow[wall-clock] - serving timestamp


def tick() -> float:
    """A monotonic reading for latency measurement."""
    return time.perf_counter()  # repro: allow[wall-clock] - latency timer


def sleep(seconds: float) -> None:
    """Real sleep, for client polling loops and backoff."""
    time.sleep(seconds)  # repro: allow[wall-clock] - client poll wait
