"""repro.serve — the verification control plane.

A dependency-free HTTP daemon that turns the runtime layer's
``RunSpec → execute() → RunArtifact`` pipeline into a long-running
service: specs arrive over HTTP, run on a bounded worker pool, and
their artifacts are stored content-addressed by history hash.  A
verdict cache keyed by the *canonical spec hash*
(:meth:`~repro.runtime.spec.RunSpec.spec_hash`) short-circuits repeat
submissions, an append-only JSONL audit log records every request,
and live metrics + an HTML dashboard expose the serving state.

Surfaces:

* ``python -m repro serve [--port --workers --store DIR]`` — the CLI;
* :class:`ServeDaemon` — embeddable daemon (tests, benchmarks);
* :class:`ServeClient` — stdlib urllib client;
* ``benchmarks/bench_serve.py`` — the load generator.

See ``docs/serving.md`` for the endpoint reference and cache /
retention semantics.
"""

from __future__ import annotations

from repro.serve.audit import AuditLog
from repro.serve.cache import VerdictCache
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import ServeDaemon
from repro.serve.dashboard import render_dashboard
from repro.serve.plane import (
    ControlPlane,
    QueueFullError,
    RunRecord,
    ServeConfig,
    SubmitError,
)
from repro.serve.store import ArtifactStore, RetentionPolicy, StoreError

__all__ = [
    "ArtifactStore",
    "AuditLog",
    "ControlPlane",
    "QueueFullError",
    "RetentionPolicy",
    "RunRecord",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServeDaemon",
    "StoreError",
    "SubmitError",
    "VerdictCache",
    "render_dashboard",
]
