"""Content-addressed artifact store with a retention policy.

Artifacts (serialized :class:`~repro.runtime.execute.RunArtifact`
dicts) are stored on disk keyed by their ``history_hash`` — one file
per distinct history, so resubmitting a spec (or two specs that
happen to produce the same history) never duplicates bytes.  A
retention policy bounds the store: when either the entry count or the
total byte budget is exceeded, the least recently *used* artifacts
are evicted (reads refresh recency, so hot verdicts survive).

The store is safe for concurrent use from the daemon's worker
threads; all index mutations happen under one lock and file writes go
through a same-directory temp file + ``os.replace`` so readers never
observe a torn artifact.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.errors import ReproError

__all__ = ["ArtifactStore", "RetentionPolicy", "StoreError"]


class StoreError(ReproError):
    """The artifact store could not read or write an entry."""


class RetentionPolicy:
    """Bounds on the artifact store (``None`` = unbounded).

    Attributes:
        max_entries: maximum number of stored artifacts.
        max_bytes: maximum total serialized size.
    """

    __slots__ = ("max_entries", "max_bytes")

    def __init__(
        self,
        max_entries: Optional[int] = 512,
        max_bytes: Optional[int] = 256 * 1024 * 1024,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise StoreError(
                f"max_entries must be >= 1 (or None), got {max_entries}"
            )
        if max_bytes is not None and max_bytes < 1:
            raise StoreError(
                f"max_bytes must be >= 1 (or None), got {max_bytes}"
            )
        self.max_entries = max_entries
        self.max_bytes = max_bytes

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
        }


class ArtifactStore:
    """Disk store of artifact JSON, keyed by content hash.

    ``put`` is idempotent per key; ``get`` refreshes the entry's LRU
    position.  Existing files are re-indexed at startup (ordered by
    mtime, oldest first) so a restarted daemon keeps its artifacts.
    """

    def __init__(
        self,
        root: os.PathLike,
        policy: Optional[RetentionPolicy] = None,
    ) -> None:
        self.root = Path(root)
        self.policy = policy or RetentionPolicy()
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        #: key -> size in bytes, in least-recently-used-first order.
        self._index: "OrderedDict[str, int]" = OrderedDict()
        self._bytes = 0
        self.evictions = 0
        self._load_existing()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def put(self, key: str, artifact: Dict[str, Any]) -> str:
        """Store ``artifact`` under ``key``; returns the file path."""
        self._check_key(key)
        payload = json.dumps(
            artifact, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        path = self._path(key)
        with self._lock:
            if key in self._index:
                # Same content hash -> same artifact; refresh recency.
                self._index.move_to_end(key)
                return str(path)
            tmp = path.with_suffix(".tmp")
            try:
                tmp.write_bytes(payload)
                os.replace(tmp, path)
            except OSError as exc:
                raise StoreError(
                    f"cannot write artifact {key}: {exc}"
                ) from exc
            self._index[key] = len(payload)
            self._bytes += len(payload)
            self._evict_over_budget()
        return str(path)

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored artifact dict, or None when absent/evicted."""
        self._check_key(key)
        path = self._path(key)
        with self._lock:
            if key not in self._index:
                return None
            self._index.move_to_end(key)
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(
                f"artifact {key} is unreadable: {exc}"
            ) from exc

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._index

    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def keys(self) -> List[str]:
        """Stored keys, least recently used first."""
        with self._lock:
            return list(self._index)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes": self._bytes,
                "evictions": self.evictions,
                "policy": self.policy.to_dict(),
            }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    @staticmethod
    def _check_key(key: str) -> None:
        # Keys are hex digests; anything else risks path traversal.
        if not key or not all(c in "0123456789abcdef" for c in key):
            raise StoreError(
                f"artifact key must be a lowercase hex digest, got "
                f"{key!r}"
            )

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _load_existing(self) -> None:
        entries = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path.stem, stat.st_size))
        for _mtime, key, size in sorted(entries):
            self._index[key] = size
            self._bytes += size
        self._evict_over_budget()

    def _evict_over_budget(self) -> None:
        # Caller holds the lock (or is the constructor).
        policy = self.policy
        while self._index and (
            (
                policy.max_entries is not None
                and len(self._index) > policy.max_entries
            )
            or (
                policy.max_bytes is not None
                and self._bytes > policy.max_bytes
            )
        ):
            key, size = self._index.popitem(last=False)
            self._bytes -= size
            self.evictions += 1
            try:
                self._path(key).unlink()
            except OSError:
                # The index entry is gone either way; a leftover file
                # is re-indexed (and re-evicted) on the next startup.
                continue
