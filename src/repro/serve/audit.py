"""Append-only JSONL request log for the serving daemon.

Every submission — accepted, coalesced onto an in-flight run, served
from the verdict cache, or rejected — appends one JSON line, so the
full request history of a daemon is one greppable file
(``requests.log.jsonl`` inside the store directory).  Writes are
serialized under a lock and flushed per line; the log is an audit
trail, not a hot path.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional

from repro.serve.clock import wall_now

__all__ = ["AuditLog"]


class AuditLog:
    """One JSONL line per request, flushed as it happens."""

    def __init__(self, path: os.PathLike) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = self.path.open("a", encoding="utf-8")
        self.entries = 0

    def record(
        self,
        event: str,
        *,
        run_id: Optional[str] = None,
        spec_hash: Optional[str] = None,
        protocol: Optional[str] = None,
        status: Optional[str] = None,
        client: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        """Append one audit line (``ts`` is wall-clock epoch seconds)."""
        entry: Dict[str, Any] = {"ts": wall_now(), "event": event}
        for key, value in (
            ("run_id", run_id),
            ("spec_hash", spec_hash),
            ("protocol", protocol),
            ("status", status),
            ("client", client),
            ("detail", detail),
        ):
            if value is not None:
                entry[key] = value
        line = json.dumps(entry, sort_keys=True)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()
            self.entries += 1

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "AuditLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
