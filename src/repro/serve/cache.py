"""Verdict cache: canonical spec hash → finished ``RunArtifact`` dict.

Every run the simulator executes is a pure function of its
:class:`~repro.runtime.spec.RunSpec` (that is the whole point of the
deterministic kernel), so a finished artifact can be replayed to any
later submission of a semantically identical spec.  The cache keys on
:meth:`RunSpec.spec_hash` — the canonical, defaults-materialized form
— holds a bounded number of artifacts in memory (LRU), and writes
every entry through to disk so a restarted daemon starts warm.

Only *successful* executions are cached; a failed run (worker crash,
fault-policy error) must re-execute on resubmission.
"""

from __future__ import annotations

import json
import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["VerdictCache"]


class VerdictCache:
    """Disk-backed LRU of spec-hash → artifact dict.

    ``memory_entries`` bounds the in-memory tier only; the disk tier
    holds every verdict ever cached (it lives inside the store
    directory, whose retention is managed separately by the
    operator).  A memory miss that hits disk repopulates the memory
    tier, so steady-state repeat traffic is served without I/O.
    """

    def __init__(
        self,
        root: os.PathLike,
        memory_entries: int = 256,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.memory_entries = max(1, int(memory_entries))
        self._memory: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def get(self, spec_hash: str) -> Optional[Dict[str, Any]]:
        """The cached artifact for this spec hash, or None."""
        with self._lock:
            cached = self._memory.get(spec_hash)
            if cached is not None:
                self._memory.move_to_end(spec_hash)
                self.hits += 1
                return cached
        # Memory miss: try the disk tier outside the lock (read-only).
        path = self._path(spec_hash)
        try:
            artifact = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            # Absent or torn disk entry == a miss; the run simply
            # re-executes and rewrites it.
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
            self.disk_hits += 1
            self._remember(spec_hash, artifact)
        return artifact

    def put(self, spec_hash: str, artifact: Dict[str, Any]) -> None:
        """Cache a finished artifact (memory + write-through to disk)."""
        payload = json.dumps(
            artifact, sort_keys=True, separators=(",", ":")
        )
        path = self._path(spec_hash)
        tmp = path.with_suffix(".tmp")
        with self._lock:
            self._remember(spec_hash, artifact)
            try:
                tmp.write_text(payload, encoding="utf-8")
                os.replace(tmp, path)
            except OSError:
                # Disk tier is an optimization; the memory entry is
                # already live and the next daemon start just runs cold.
                return

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "memory_entries": len(self._memory),
                "hits": self.hits,
                "disk_hits": self.disk_hits,
                "misses": self.misses,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _remember(self, spec_hash: str, artifact: Dict[str, Any]) -> None:
        # Caller holds the lock.
        self._memory[spec_hash] = artifact
        self._memory.move_to_end(spec_hash)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _path(self, spec_hash: str) -> Path:
        return self.root / f"{spec_hash}.json"
