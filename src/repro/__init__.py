"""repro — Consistency Conditions for Multi-Object Distributed Operations.

A from-scratch Python reproduction of Mittal & Garg's 1998 framework
for consistency of *m-operations* (atomic operations spanning multiple
objects):

* the formal model — m-operations, histories, legality, admissibility
  (:mod:`repro.core`);
* the consistency conditions **m-sequential consistency**,
  **m-linearizability** and **m-normality**, with exact (NP-complete)
  and constrained polynomial-time checkers (:mod:`repro.core`);
* the Theorem-2 reduction between strict view serializability and
  m-linearizability (:mod:`repro.db`);
* a discrete-event simulation of an asynchronous distributed system
  with atomic broadcast (:mod:`repro.sim`, :mod:`repro.abcast`);
* the paper's two replication protocols (Figures 4 and 6) plus
  baselines (:mod:`repro.protocols`);
* the motivating multi-object operations — DCAS, CASN, atomic
  m-register assignment, transfers (:mod:`repro.objects`);
* workload generators, the paper's figures as executable scenarios,
  and analysis helpers (:mod:`repro.workloads`, :mod:`repro.analysis`).

Quickstart::

    from repro import (
        mlin_cluster, transfer, balance_total,
        check_m_linearizability,
    )

    cluster = mlin_cluster(3, ["acct_a", "acct_b"],
                           initial_values={"acct_a": 100, "acct_b": 100},
                           seed=1)
    result = cluster.run([
        [transfer("acct_a", "acct_b", 30)],
        [balance_total(["acct_a", "acct_b"])],
        [transfer("acct_b", "acct_a", 10)],
    ])
    assert check_m_linearizability(result.history).holds
"""

from repro.core import (
    ConsistencyVerdict,
    History,
    HistoryIndex,
    MOperation,
    Operation,
    Relation,
    check_admissible,
    check_condition,
    check_m_linearizability,
    check_m_normality,
    check_m_sequential_consistency,
    history_from_json,
    history_to_json,
    is_m_linearizable,
    is_m_normal,
    is_m_sequentially_consistent,
    load_history,
    make_mop,
    read,
    save_history,
    write,
)
from repro.db import (
    Schedule,
    is_conflict_serializable,
    is_strict_view_serializable,
    is_view_serializable,
    schedule_from_string,
    schedule_to_history,
)
from repro.errors import ReproError
from repro.objects import (
    balance_total,
    casn,
    compare_and_swap,
    dcas,
    fetch_add,
    m_assign,
    m_read,
    read_reg,
    sum_of,
    swap_objects,
    transfer,
    write_reg,
)
from repro.protocols import (
    Cluster,
    MProgram,
    RunResult,
    aggregate_cluster,
    causal_cluster,
    local_cluster,
    lock_cluster,
    mlin_cluster,
    msc_cluster,
    server_cluster,
)
from repro.workloads import (
    figure1,
    figure2_h1,
    figure5_scenario,
    figure7_scenario,
    random_workloads,
)

__version__ = "1.10.0"

__all__ = [
    "Cluster",
    "ConsistencyVerdict",
    "History",
    "HistoryIndex",
    "MOperation",
    "MProgram",
    "Operation",
    "Relation",
    "ReproError",
    "RunResult",
    "Schedule",
    "__version__",
    "aggregate_cluster",
    "causal_cluster",
    "balance_total",
    "casn",
    "check_admissible",
    "check_condition",
    "check_m_linearizability",
    "check_m_normality",
    "check_m_sequential_consistency",
    "compare_and_swap",
    "dcas",
    "fetch_add",
    "figure1",
    "figure2_h1",
    "figure5_scenario",
    "figure7_scenario",
    "is_conflict_serializable",
    "is_m_linearizable",
    "is_m_normal",
    "is_m_sequentially_consistent",
    "is_strict_view_serializable",
    "is_view_serializable",
    "history_from_json",
    "history_to_json",
    "load_history",
    "local_cluster",
    "lock_cluster",
    "m_assign",
    "m_read",
    "make_mop",
    "mlin_cluster",
    "msc_cluster",
    "random_workloads",
    "read",
    "read_reg",
    "schedule_from_string",
    "save_history",
    "schedule_to_history",
    "server_cluster",
    "sum_of",
    "swap_objects",
    "transfer",
    "write",
    "write_reg",
]
