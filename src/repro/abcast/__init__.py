"""Atomic (total-order) broadcast implementations (substrate S11)."""

from repro.abcast.interface import AtomicBroadcast, DeliverFn
from repro.abcast.lamport import LamportAbcast
from repro.abcast.sequencer import SequencerAbcast

__all__ = [
    "AtomicBroadcast",
    "DeliverFn",
    "LamportAbcast",
    "SequencerAbcast",
]
