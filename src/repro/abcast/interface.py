"""Atomic (total-order) broadcast interface (substrate S11).

Both protocols in Section 5 assume an atomic broadcast primitive:
"atomic broadcast ensures that all processes apply all update
m-operations in the same order".  The required properties are the
classic ones:

* **Validity** — a message broadcast by a correct process is
  eventually delivered by every process (channels are reliable).
* **Integrity** — each message is delivered at most once, and only if
  it was broadcast.
* **Total order** — any two processes deliver any two messages in the
  same relative order.

This module defines the implementation-independent interface; the
concrete algorithms live in :mod:`repro.abcast.sequencer` and
:mod:`repro.abcast.lamport` and are validated against these properties
by their test suites.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ProtocolError
from repro.sim.network import Network

#: Delivery callback: (sender_pid, payload) -> None.
DeliverFn = Callable[[int, Any], None]


class AtomicBroadcast:
    """Base class for total-order broadcast implementations.

    Lifecycle: construct with the network, then each participant calls
    :meth:`attach` exactly once with its delivery callback, and
    afterwards may call :meth:`broadcast`.

    Implementations deliver every broadcast payload exactly once at
    every participant, in one global order.
    """

    def __init__(self, network: Network) -> None:
        self.network = network
        self._deliver: Dict[int, DeliverFn] = {}
        #: per-pid delivery logs (sender, payload), kept for property
        #: checking in tests; cheap relative to simulation cost.
        self.delivery_log: Dict[int, List[Tuple[int, Any]]] = {}
        #: global position of each pid's log[0] — 0 normally, the
        #: snapshot cursor after a peer-snapshot recovery (the prefix
        #: below it was adopted as state, never re-delivered).
        self.delivery_offset: Dict[int, int] = {}

    @property
    def n(self) -> int:
        """Number of participants."""
        return self.network.n

    def attach(self, pid: int, deliver: DeliverFn) -> None:
        """Register participant ``pid``'s delivery callback."""
        if pid in self._deliver:
            raise ProtocolError(f"participant {pid} already attached")
        self._deliver[pid] = deliver
        self.delivery_log[pid] = []
        self.delivery_offset[pid] = 0

    def broadcast(self, sender: int, payload: Any) -> None:
        """Atomically broadcast ``payload`` on behalf of ``sender``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Crash/recovery hooks (optional; the fault-tolerant sequencer
    # implements them, other implementations inherit the base
    # behaviour: forget the crashed participant's deliveries)
    # ------------------------------------------------------------------

    def on_crash(self, pid: int) -> None:
        """Participant ``pid`` crashed: its volatile state is gone.

        The delivery log restarts empty — on recovery the participant
        re-delivers the total order from scratch (or from a snapshot
        cursor), so the rebuilt log stays prefix-consistent with the
        other participants' logs.
        """
        self.delivery_log[pid] = []
        self.delivery_offset[pid] = 0

    def recover(self, pid: int) -> None:
        """Participant ``pid`` restarted and wants to catch up."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support crash recovery"
        )

    def handles(self, kind: str) -> bool:
        """True iff this layer owns network messages of this kind."""
        raise NotImplementedError

    def handle(self, pid: int, src: int, message: Any) -> None:
        """Process a layer-owned message arriving at endpoint ``pid``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Shared helpers for implementations
    # ------------------------------------------------------------------

    def _local_deliver(
        self, pid: int, sender: int, payload: Any, msg_id: Any
    ) -> None:
        """Invoke ``pid``'s callback and record the delivery.

        ``msg_id`` is an implementation-assigned identifier unique per
        broadcast; it powers the integrity check below.
        """
        deliver = self._deliver.get(pid)
        if deliver is None:
            raise ProtocolError(f"delivery at unattached participant {pid}")
        self.delivery_log[pid].append((sender, msg_id))
        deliver(sender, payload)

    # ------------------------------------------------------------------
    # Property checking (used by tests and by protocol self-checks)
    # ------------------------------------------------------------------

    def check_total_order(self) -> Optional[str]:
        """Verify the delivery logs satisfy total order + integrity.

        Returns None when the properties hold, else a human-readable
        description of the first violation.  A run may end mid-flight,
        so participants may have delivered different-length logs; with
        total order the logs must agree element-wise wherever they
        overlap (each log ``i``-th entry sits at global position
        ``delivery_offset + i``), and integrity forbids duplicate
        message ids within one log.
        """
        reference: Dict[int, Tuple[int, Any]] = {}
        for pid in range(self.n):
            log = self.delivery_log.get(pid, [])
            base = self.delivery_offset.get(pid, 0)
            ids = [msg_id for _sender, msg_id in log]
            if len(ids) != len(set(ids)):
                return f"participant {pid} delivered a message twice"
            for i, entry in enumerate(log):
                position = base + i
                known = reference.setdefault(position, entry)
                if known != entry:
                    return (
                        f"participant {pid} delivered {entry} at position "
                        f"{position} but another delivered {known}"
                    )
        return None
