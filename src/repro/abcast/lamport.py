"""Decentralised atomic broadcast via Lamport clocks and acknowledgments.

Lamport's classic total-ordering construction (the mutual-exclusion
queue of "Time, Clocks, ..."): every broadcast is multicast with the
sender's logical timestamp, every receiver acknowledges to everyone,
and a message is delivered once (a) it has been acknowledged by all
``n`` participants and (b) it carries the minimum ``(timestamp,
origin)`` key among pending messages.

Lamport's algorithm assumes FIFO channels; the paper's network is
explicitly non-FIFO ("the messages can get reordered"), so this
implementation layers FIFO *per-sender reassembly* on top: each
protocol message carries a per-sender sequence number, and receivers
buffer until they can process each sender's stream in send order.
With that, the usual argument applies: when process ``p`` has
processed ``q``'s acknowledgment of ``m``, it has already processed
every message ``q`` sent earlier — in particular any broadcast of
``q`` timestamped below ``m`` — so the min-pending rule cannot
deliver out of order.

Cost per broadcast: ``n`` broadcast messages plus ``n^2``
acknowledgments, two message delays on the critical path.  The
contrast with the fixed sequencer's ``n + 1`` messages is measured in
experiment A2.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Set, Tuple

from repro.abcast.interface import AtomicBroadcast
from repro.errors import ProtocolError
from repro.sim.network import Message, Network

BCAST = "abl-bcast"
ACK = "abl-ack"

#: Total-order key of a pending broadcast: (lamport ts, origin pid, id).
Key = Tuple[int, int, int]


class LamportAbcast(AtomicBroadcast):
    """Decentralised total-order broadcast (no sequencer).

    All ``network.n`` endpoints participate.  The owning process must
    route messages whose kind starts with ``"abl-"`` into
    :meth:`handle`.
    """

    def __init__(self, network: Network) -> None:
        super().__init__(network)
        n = network.n
        self._clock: List[int] = [0] * n
        self._msg_counter = itertools.count()
        # Pending broadcasts per participant: key -> (sender, payload).
        self._pending: Dict[int, Dict[Key, Tuple[int, Any]]] = {
            pid: {} for pid in range(n)
        }
        # Acks per participant: key -> set of ackers.
        self._acks: Dict[int, Dict[Key, Set[int]]] = {
            pid: {} for pid in range(n)
        }
        # Keys already delivered (acks for them can be discarded).
        self._delivered: Dict[int, Set[Key]] = {pid: set() for pid in range(n)}
        # FIFO reassembly: per receiver, per sender: next expected
        # sequence number and the out-of-order buffer.
        self._send_seq: List[int] = [0] * n
        self._recv_next: Dict[int, List[int]] = {
            pid: [0] * n for pid in range(n)
        }
        self._recv_buffer: Dict[int, Dict[Tuple[int, int], Message]] = {
            pid: {} for pid in range(n)
        }

    # ------------------------------------------------------------------
    # AtomicBroadcast API
    # ------------------------------------------------------------------

    def broadcast(self, sender: int, payload: Any) -> None:
        """Multicast the payload with the sender's Lamport timestamp."""
        self._clock[sender] += 1
        key: Key = (self._clock[sender], sender, next(self._msg_counter))
        body = {"key": key, "sender": sender, "payload": payload}
        self._multicast(sender, Message(BCAST, body))

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------

    def handles(self, kind: str) -> bool:
        """True iff this layer owns messages of the given kind."""
        return kind in (BCAST, ACK)

    def handle(self, pid: int, src: int, message: Message) -> None:
        """FIFO-reassemble, then process, a protocol message."""
        seq = message.payload["fifo_seq"]
        expected = self._recv_next[pid]
        if seq == expected[src]:
            self._process(pid, src, message)
            expected[src] += 1
            # Drain any buffered successors.
            while (src, expected[src]) in self._recv_buffer[pid]:
                buffered = self._recv_buffer[pid].pop((src, expected[src]))
                self._process(pid, src, buffered)
                expected[src] += 1
        elif seq > expected[src]:
            # A duplicated frame overwrites its identical twin.
            self._recv_buffer[pid][(src, seq)] = message
        # else: duplicate of an already-processed frame (the network's
        # duplication fault) — drop it; processing it twice would
        # double-count acks at best and double-deliver at worst.

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _multicast(self, src: int, message: Message) -> None:
        """Send to every participant with per-sender FIFO numbering.

        One network message per destination; each carries the same
        per-*multicast* sequence number slot, so reassembly is per
        (src, dst) stream.
        """
        for dst in range(self.network.n):
            body = dict(message.payload)
            body["fifo_seq"] = self._send_seq[src]
            self.network.send(src, dst, Message(message.kind, body))
        self._send_seq[src] += 1

    def _process(self, pid: int, src: int, message: Message) -> None:
        body = message.payload
        if message.kind == BCAST:
            key: Key = tuple(body["key"])  # type: ignore[assignment]
            self._clock[pid] = max(self._clock[pid], key[0]) + 1
            self._pending[pid][key] = (body["sender"], body["payload"])
            self._acks[pid].setdefault(key, set()).add(body["sender"])
            # Acknowledge to everyone (including self) so all
            # participants converge on the same ack counts.
            self._clock[pid] += 1
            ack_body = {"key": key, "acker": pid}
            self._multicast(pid, Message(ACK, ack_body))
            self._try_deliver(pid)
        elif message.kind == ACK:
            key = tuple(body["key"])  # type: ignore[assignment]
            if key in self._delivered[pid]:
                return
            self._acks[pid].setdefault(key, set()).add(body["acker"])
            self._try_deliver(pid)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected message kind {message.kind!r}")

    def _try_deliver(self, pid: int) -> None:
        pending = self._pending[pid]
        while pending:
            key = min(pending)
            ackers = self._acks[pid].get(key, set())
            if len(ackers) < self.network.n:
                return
            sender, payload = pending.pop(key)
            self._acks[pid].pop(key, None)
            self._delivered[pid].add(key)
            self._local_deliver(pid, sender, payload, key[2])
