"""Fixed-sequencer atomic broadcast.

The simplest total-order broadcast over reliable channels: a designated
*sequencer* process assigns consecutive sequence numbers.

* To broadcast, a process sends ``abc-req`` to the sequencer.
* The sequencer stamps the payload with the next sequence number and
  sends ``abc-seq`` to every participant (including the sender and
  itself).
* Each participant buffers out-of-order arrivals (the network is
  non-FIFO) and delivers in sequence-number order.

Message cost per broadcast: ``1 + n`` point-to-point messages and two
message delays on the critical path (request to sequencer + relay),
or one delay when the sender *is* the sequencer.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Tuple

from repro.abcast.interface import AtomicBroadcast
from repro.errors import ProtocolError
from repro.sim.network import Message, Network

#: Message kinds used on the wire.
REQ = "abc-req"
SEQ = "abc-seq"


class SequencerAbcast(AtomicBroadcast):
    """Fixed-sequencer total-order broadcast.

    Args:
        network: the simulated network; all ``network.n`` endpoints
            participate.
        sequencer: pid of the sequencing process (default 0).

    The implementation piggybacks on the endpoints' handlers: it wires
    itself into the network via :meth:`handle`, which the owning
    process must call for messages whose kind starts with ``"abc-"``.
    """

    def __init__(self, network: Network, *, sequencer: int = 0) -> None:
        super().__init__(network)
        if not 0 <= sequencer < network.n:
            raise ProtocolError(f"sequencer pid {sequencer} out of range")
        self.sequencer = sequencer
        self._next_seq = itertools.count()
        self._next_msg_id = itertools.count()
        # Per-participant delivery cursor and out-of-order buffer.
        self._expected: Dict[int, int] = {pid: 0 for pid in range(network.n)}
        self._buffer: Dict[int, Dict[int, Tuple[int, Any, int]]] = {
            pid: {} for pid in range(network.n)
        }

    # ------------------------------------------------------------------
    # AtomicBroadcast API
    # ------------------------------------------------------------------

    def broadcast(self, sender: int, payload: Any) -> None:
        """Send the payload to the sequencer for ordering."""
        msg_id = next(self._next_msg_id)
        self.network.send(
            sender,
            self.sequencer,
            Message(REQ, {"sender": sender, "payload": payload, "id": msg_id}),
        )

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------

    def handles(self, kind: str) -> bool:
        """True iff this layer owns messages of the given kind."""
        return kind in (REQ, SEQ)

    def handle(self, pid: int, src: int, message: Message) -> None:
        """Process an ``abc-*`` message arriving at endpoint ``pid``."""
        if message.kind == REQ:
            if pid != self.sequencer:
                raise ProtocolError(
                    f"abc-req arrived at non-sequencer {pid}"
                )
            self._sequence(message.payload)
        elif message.kind == SEQ:
            body = message.payload
            self._buffer[pid][body["seq"]] = (
                body["sender"],
                body["payload"],
                body["id"],
            )
            self._drain(pid)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _sequence(self, request: Dict[str, Any]) -> None:
        seq = next(self._next_seq)
        stamped = {
            "seq": seq,
            "sender": request["sender"],
            "payload": request["payload"],
            "id": request["id"],
        }
        self.network.send_to_all(self.sequencer, Message(SEQ, stamped))

    def _drain(self, pid: int) -> None:
        buffer = self._buffer[pid]
        while self._expected[pid] in buffer:
            sender, payload, msg_id = buffer.pop(self._expected[pid])
            self._expected[pid] += 1
            self._local_deliver(pid, sender, payload, msg_id)
