"""Fixed-sequencer atomic broadcast, with optional failover.

The simplest total-order broadcast over reliable channels: a designated
*sequencer* process assigns consecutive sequence numbers.

* To broadcast, a process sends ``abc-req`` to the sequencer.
* The sequencer stamps the payload with the next sequence number and
  sends ``abc-seq`` to every participant (including the sender and
  itself).
* Each participant buffers out-of-order arrivals (the network is
  non-FIFO) and delivers in sequence-number order.

Message cost per broadcast: ``1 + n`` point-to-point messages and two
message delays on the critical path (request to sequencer + relay),
or one delay when the sender *is* the sequencer.

Fault tolerance (``fault_tolerant=True``)
-----------------------------------------

The robustness subsystem (see ``docs/fault_model.md``) relaxes the
paper's crash-free assumption; this layer then provides:

* **Duplicate suppression** — requests are deduplicated by message id
  at the sequencer and relays by sequence number at each participant,
  so duplicated or retransmitted frames never double-deliver.
* **Sequencer failover** — when the sequencer crashes, a deterministic
  successor (the next live pid in ring order) is elected after a
  detection delay.  The new sequencer rebuilds the sequencing state
  from the live participants' retained logs: delivered entries keep
  their numbers (no live process can have delivered past a gap),
  buffered-but-undelivered entries are *renumbered* contiguously, and
  everything is restamped with a new epoch and rebroadcast.
  Participants drop stale-epoch relays, and on learning of the new
  epoch re-send their still-unsequenced requests — the in-flight-
  request retry path.  Requests are idempotent by message id, so the
  retry can never double-sequence.
* **Crash recovery** — a restarted participant fetches the sequenced
  log from the current sequencer (``abc-fetch``/``abc-log``) and
  re-delivers from its cursor (0 after a full wipe, or a snapshot
  cursor installed by the protocol layer).

The election gathers the live participants' state in one atomic step
(standing in for a synchronous state-collection round) but performs
all repair — new-epoch announcement, rebroadcast, request retry,
log fetch — through real (lossy, reordering) network messages.  The
handoff is safe under the single-failure-at-a-time schedules the
chaos harness generates; overlapping crashes of the sequencer and the
only participant that delivered a suffix can lose that suffix, as in
any 1-resilient primary-backup scheme without stable storage.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set

from repro.abcast.interface import AtomicBroadcast
from repro.errors import ProtocolError, SequencerUnavailable
from repro.obs import get_tracer
from repro.sim.network import Message, Network

#: Message kinds used on the wire.
REQ = "abc-req"
SEQ = "abc-seq"
NEWSEQ = "abc-new-seq"
FETCH = "abc-fetch"
LOG = "abc-log"

KINDS = (REQ, SEQ, NEWSEQ, FETCH, LOG)


class SequencerAbcast(AtomicBroadcast):
    """Fixed-sequencer total-order broadcast.

    Args:
        network: the simulated network; all ``network.n`` endpoints
            participate.
        sequencer: pid of the (initial) sequencing process (default 0).
        fault_tolerant: enable duplicate suppression of relays,
            sequencer failover and participant recovery.  Off by
            default: the paper's experiments assume reliable channels
            and crash-free processes, and the non-fault-tolerant mode
            preserves their exact message costs.
        failover_delay: virtual time between a sequencer crash and the
            successor election completing (models failure detection).

    The implementation piggybacks on the endpoints' handlers: it wires
    itself into the network via :meth:`handle`, which the owning
    process must call for messages whose kind starts with ``"abc-"``.
    """

    def __init__(
        self,
        network: Network,
        *,
        sequencer: int = 0,
        fault_tolerant: bool = False,
        failover_delay: float = 5.0,
    ) -> None:
        super().__init__(network)
        if not 0 <= sequencer < network.n:
            raise ProtocolError(f"sequencer pid {sequencer} out of range")
        self.sequencer = sequencer
        self.fault_tolerant = fault_tolerant
        self.failover_delay = failover_delay
        self.epoch = 0
        #: Completed failovers: (time, old sequencer, new sequencer).
        self.failovers: List[tuple] = []
        self._next_msg_id = itertools.count()
        # --- sequencer-side state (volatile: lost when the current
        # sequencer crashes, rebuilt by the election) ---
        self._next_seq = 0
        self._sequenced_ids: Set[int] = set()
        self._seq_log: Dict[int, Dict[str, Any]] = {}
        # --- per-participant state ---
        self._expected: Dict[int, int] = {pid: 0 for pid in range(network.n)}
        self._buffer: Dict[int, Dict[int, Dict[str, Any]]] = {
            pid: {} for pid in range(network.n)
        }
        #: Delivered entries retained per participant; feeds elections
        #: and peer snapshots.
        self._plog: Dict[int, Dict[int, Dict[str, Any]]] = {
            pid: {} for pid in range(network.n)
        }
        #: Participant's current epoch (stale-epoch relays dropped).
        self._pepoch: Dict[int, int] = {pid: 0 for pid in range(network.n)}
        #: Participants whose delivery is gated (snapshot install).
        self._suspended: Set[int] = set()
        #: Sender pid -> msg id -> request body, for requests not yet
        #: seen in the delivered order (durable client intent; resent
        #: on failover and recovery).
        self._unsequenced: Dict[int, Dict[int, Dict[str, Any]]] = {
            pid: {} for pid in range(network.n)
        }
        #: Open tracing span covering sequencer crash -> election done.
        self._failover_span: Optional[Any] = None

    # ------------------------------------------------------------------
    # AtomicBroadcast API
    # ------------------------------------------------------------------

    def broadcast(self, sender: int, payload: Any) -> None:
        """Send the payload to the sequencer for ordering."""
        if not self.fault_tolerant and self.network.is_down(self.sequencer):
            raise SequencerUnavailable(
                f"sequencer {self.sequencer} is down and failover is "
                "disabled"
            )
        msg_id = next(self._next_msg_id)
        body = {"sender": sender, "payload": payload, "id": msg_id}
        if self.fault_tolerant:
            self._unsequenced[sender][msg_id] = body
        self.network.send(sender, self.sequencer, Message(REQ, body))

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------

    def handles(self, kind: str) -> bool:
        """True iff this layer owns messages of the given kind."""
        return kind in KINDS

    def handle(self, pid: int, src: int, message: Message) -> None:
        """Process an ``abc-*`` message arriving at endpoint ``pid``."""
        if message.kind == REQ:
            if pid != self.sequencer:
                if self.fault_tolerant:
                    # Stale address (pre-failover sender, or a frame
                    # retried into a restarted ex-sequencer): forward.
                    self.network.send(pid, self.sequencer, message)
                    return
                raise ProtocolError(
                    f"abc-req arrived at non-sequencer {pid}"
                )
            self._sequence(message.payload)
        elif message.kind == SEQ:
            self._accept(pid, message.payload)
            self._drain(pid)
        elif message.kind == NEWSEQ:
            self._on_new_sequencer(pid, message.payload)
        elif message.kind == FETCH:
            if pid != self.sequencer:
                self.network.send(pid, self.sequencer, message)
                return
            self._serve_fetch(pid, message.payload)
        elif message.kind == LOG:
            self._on_log(pid, message.payload)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # Crash / recovery hooks (driven by the cluster / fault injector)
    # ------------------------------------------------------------------

    def on_crash(self, pid: int) -> None:
        """Participant ``pid`` crashed; wipe its volatile state."""
        super().on_crash(pid)
        self._expected[pid] = 0
        self._buffer[pid].clear()
        self._plog[pid].clear()
        self._suspended.discard(pid)
        if pid == self.sequencer:
            # The sequencing state was in the crashed process's memory.
            self._next_seq = 0
            self._sequenced_ids = set()
            self._seq_log = {}
            if self.fault_tolerant:
                failed_epoch = self.epoch
                tracer = get_tracer()
                if tracer.enabled and self._failover_span is None:
                    self._failover_span = tracer.begin(
                        "abcast.failover", failed=pid, epoch=failed_epoch
                    )
                self.network.sim.schedule(
                    self.failover_delay,
                    lambda: self._elect(pid, failed_epoch),
                )

    def recover(self, pid: int, *, cursor: int = 0) -> None:
        """Participant ``pid`` restarted; catch up from ``cursor``.

        ``cursor=0`` replays the whole totally-ordered log (the
        process starts from a fresh store); a positive cursor resumes
        after a peer snapshot covering deliveries ``0..cursor-1``.
        Also re-sends the participant's still-unsequenced requests —
        their original frames may have died with the old sequencer.
        """
        if not self.fault_tolerant:
            raise SequencerUnavailable(
                "recovery requires a fault-tolerant sequencer"
            )
        # Stay gated until the LOG reply arrives: it carries the
        # current epoch, which is what lets _drain tell a live relay
        # from a stale pre-crash frame still floating in the network.
        self._suspended.add(pid)
        self._expected[pid] = cursor
        self.delivery_offset[pid] = cursor
        self._buffer[pid] = {
            seq: entry
            for seq, entry in self._buffer[pid].items()
            if seq >= cursor
        }
        self.network.send(
            pid, self.sequencer, Message(FETCH, {"pid": pid, "from": cursor})
        )
        for body in list(self._unsequenced[pid].values()):
            self.network.send(pid, self.sequencer, Message(REQ, body))
        self._drain(pid)

    def suspend(self, pid: int) -> None:
        """Gate delivery at ``pid`` (while a snapshot is in flight)."""
        self._suspended.add(pid)

    def install_snapshot(
        self, pid: int, cursor: int, log: Dict[int, Dict[str, Any]]
    ) -> None:
        """Adopt a peer's retained log up to ``cursor`` (state transfer).

        The retained log keeps the recovered participant eligible as
        an election donor for entries it did not re-deliver itself.
        """
        self._plog[pid] = {
            seq: entry for seq, entry in log.items() if seq < cursor
        }

    def cursor(self, pid: int) -> int:
        """``pid``'s delivery cursor (next expected sequence number)."""
        return self._expected[pid]

    def retained_log(self, pid: int) -> Dict[int, Dict[str, Any]]:
        """``pid``'s retained delivered entries (for peer snapshots)."""
        return dict(self._plog[pid])

    # ------------------------------------------------------------------
    # Sequencer internals
    # ------------------------------------------------------------------

    def _sequence(self, request: Dict[str, Any]) -> None:
        if request["id"] in self._sequenced_ids:
            return  # duplicate or retried request: already ordered
        self._sequenced_ids.add(request["id"])
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "abcast.sequence",
                seq=self._next_seq,
                epoch=self.epoch,
                sender=request["sender"],
            )
        stamped = {
            "seq": self._next_seq,
            "epoch": self.epoch,
            "sender": request["sender"],
            "payload": request["payload"],
            "id": request["id"],
        }
        self._next_seq += 1
        self._seq_log[stamped["seq"]] = stamped
        self.network.send_to_all(self.sequencer, Message(SEQ, stamped))

    def _serve_fetch(self, pid: int, body: Dict[str, Any]) -> None:
        start = body["from"]
        entries = [
            self._seq_log[seq]
            for seq in range(start, self._next_seq)
            if seq in self._seq_log
        ]
        self.network.send(
            pid,
            body["pid"],
            Message(LOG, {"entries": entries, "epoch": self.epoch}),
        )

    # ------------------------------------------------------------------
    # Participant internals
    # ------------------------------------------------------------------

    def _accept(self, pid: int, entry: Dict[str, Any]) -> None:
        if entry["epoch"] < self._pepoch[pid]:
            return  # renumbered away by a failover this pid saw
        seq = entry["seq"]
        if seq < self._expected[pid]:
            return  # duplicate of an already-delivered relay
        existing = self._buffer[pid].get(seq)
        if existing is not None and existing["epoch"] >= entry["epoch"]:
            return  # duplicate buffered relay
        self._buffer[pid][seq] = entry

    def _drain(self, pid: int) -> None:
        if pid in self._suspended:
            return
        buffer = self._buffer[pid]
        while self._expected[pid] in buffer:
            entry = buffer.pop(self._expected[pid])
            if entry["epoch"] < self._pepoch[pid]:
                # A stale pre-failover frame occupying a slot the
                # election renumbered; the current sequencer will
                # (re)relay this slot's real entry.  Do not advance.
                break
            self._plog[pid][entry["seq"]] = entry
            self._expected[pid] += 1
            if self.fault_tolerant and pid == entry["sender"]:
                # Retire the retained request only when the *sender*
                # delivers it.  Another participant's delivery is not
                # enough: that participant (e.g. the sequencer, which
                # delivers its own relays first) may crash as the only
                # process that saw the entry, and then the sender's
                # retained copy is what the retry path resends.
                self._unsequenced[pid].pop(entry["id"], None)
            self._local_deliver(
                pid, entry["sender"], entry["payload"], entry["id"]
            )

    def _on_new_sequencer(self, pid: int, body: Dict[str, Any]) -> None:
        # Equal epochs still proceed: the election already fenced the
        # live participants to the new epoch, and this announcement is
        # what triggers their in-flight-request retry.
        if body["epoch"] < self._pepoch[pid]:
            return
        self._pepoch[pid] = body["epoch"]
        # Buffered relays from older epochs were renumbered; drop them.
        self._buffer[pid] = {
            seq: entry
            for seq, entry in self._buffer[pid].items()
            if entry["epoch"] >= body["epoch"]
        }
        # In-flight-request retry: everything this participant has
        # broadcast but not yet seen delivered may have died with the
        # old sequencer.
        for req in list(self._unsequenced[pid].values()):
            self.network.send(pid, self.sequencer, Message(REQ, req))
        self._drain(pid)

    def _on_log(self, pid: int, body: Dict[str, Any]) -> None:
        if body["epoch"] > self._pepoch[pid]:
            self._pepoch[pid] = body["epoch"]
        # The LOG reply completes recovery: the participant now knows
        # the current epoch, so delivery can resume (see recover()).
        self._suspended.discard(pid)
        for entry in body["entries"]:
            self._accept(pid, entry)
        self._drain(pid)

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def _elect(self, failed: int, failed_epoch: int) -> None:
        if self.epoch != failed_epoch or self.sequencer != failed:
            return  # superseded by a newer election
        if not self.network.is_down(failed):
            # The sequencer restarted within the detection window (it
            # recovers as a follower of itself; no handoff needed —
            # but its sequencing state is gone, so we must still
            # elect, possibly re-electing the same pid).
            pass
        n = self.network.n
        successor: Optional[int] = None
        for step in range(1, n + 1):
            candidate = (failed + step) % n
            if not self.network.is_down(candidate):
                successor = candidate
                break
        if successor is None:
            raise SequencerUnavailable(
                "no live candidate to take over sequencing"
            )
        self.epoch += 1
        old = self.sequencer
        self.sequencer = successor
        self.failovers.append((self.network.sim.now, old, successor))
        if self._failover_span is not None:
            self._failover_span.end(successor=successor, epoch=self.epoch)
            self._failover_span = None
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "abcast.epoch",
                epoch=self.epoch,
                sequencer=successor,
                failed=old,
            )

        # --- state collection (atomic stand-in for a gather round) ---
        live = [pid for pid in range(n) if not self.network.is_down(pid)]
        # Epoch-fence the collected participants in the same atomic
        # step: pre-crash relays still in flight must not extend any
        # delivered prefix past the state the election just gathered
        # (the renumbering below is computed from exactly this state).
        for pid in live:
            self._pepoch[pid] = self.epoch
        donor = max(live, key=lambda pid: self._expected[pid])
        delivered_upto = self._expected[donor]
        log: Dict[int, Dict[str, Any]] = {}
        for pid in live:
            for seq, entry in self._plog[pid].items():
                if seq < delivered_upto:
                    log.setdefault(seq, entry)
        # Undelivered entries exist only in buffers (no live process
        # delivered past `delivered_upto`); renumber them contiguously
        # in old-sequence order, deduplicated by message id.
        pending: Dict[int, Dict[str, Any]] = {}
        for pid in live:
            for entry in self._buffer[pid].values():
                if entry["seq"] >= delivered_upto:
                    pending.setdefault(entry["id"], entry)
        renumbered = sorted(pending.values(), key=lambda e: e["seq"])

        # --- install the rebuilt sequencer state (restamped) ---
        self._seq_log = {}
        self._sequenced_ids = set()
        next_seq = 0
        for seq in sorted(log):
            if seq != next_seq:  # pragma: no cover - defensive
                raise ProtocolError(
                    f"failover log has a gap at sequence {next_seq}"
                )
            entry = dict(log[seq])
            entry["epoch"] = self.epoch
            self._seq_log[seq] = entry
            self._sequenced_ids.add(entry["id"])
            next_seq += 1
        for entry in renumbered:
            stamped = dict(entry)
            stamped["seq"] = next_seq
            stamped["epoch"] = self.epoch
            self._seq_log[next_seq] = stamped
            self._sequenced_ids.add(stamped["id"])
            next_seq += 1
        self._next_seq = next_seq

        # --- repair over the real network ---
        for dst in live:
            self.network.send(
                successor,
                dst,
                Message(NEWSEQ, {"epoch": self.epoch, "sequencer": successor}),
            )
        base = min(self._expected[pid] for pid in live)
        for seq in range(base, self._next_seq):
            for dst in live:
                self.network.send(
                    successor, dst, Message(SEQ, self._seq_log[seq])
                )
