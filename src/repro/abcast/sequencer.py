"""Fixed-sequencer atomic broadcast, with optional failover.

The simplest total-order broadcast over reliable channels: a designated
*sequencer* process assigns consecutive sequence numbers.

* To broadcast, a process sends ``abc-req`` to the sequencer.
* The sequencer stamps the payload with the next sequence number and
  sends ``abc-seq`` to every participant (including the sender and
  itself).
* Each participant buffers out-of-order arrivals (the network is
  non-FIFO) and delivers in sequence-number order.

Message cost per broadcast: ``1 + n`` point-to-point messages and two
message delays on the critical path (request to sequencer + relay),
or one delay when the sender *is* the sequencer.

Fault tolerance (``fault_tolerant=True``)
-----------------------------------------

The robustness subsystem (see ``docs/fault_model.md``) relaxes the
paper's crash-free assumption; this layer then provides:

* **Duplicate suppression** — requests are deduplicated by message id
  at the sequencer and relays by sequence number at each participant,
  so duplicated or retransmitted frames never double-deliver.
* **Sequencer failover** — when the sequencer crashes, a deterministic
  successor (the next live pid in ring order) is elected after a
  detection delay.  The new sequencer rebuilds the sequencing state
  from the live participants' retained logs: delivered entries keep
  their numbers (no live process can have delivered past a gap),
  buffered-but-undelivered entries are *renumbered* contiguously, and
  everything is restamped with a new epoch and rebroadcast.
  Participants drop stale-epoch relays, and on learning of the new
  epoch re-send their still-unsequenced requests — the in-flight-
  request retry path.  Requests are idempotent by message id, so the
  retry can never double-sequence.
* **Crash recovery** — a restarted participant fetches the sequenced
  log from the current sequencer (``abc-fetch``/``abc-log``) and
  re-delivers from its cursor (0 after a full wipe, or a snapshot
  cursor installed by the protocol layer).

Partition tolerance (``bind_detector``)
---------------------------------------

All sequencing state is held **per participant**: each pid has its
own view of who the sequencer is (``_psequencer``) and its own epoch
(``_pepoch``), and a pid holds sequencing state only while its own
view names itself.  Nothing global leaks across a link cut, so a
partition is modeled honestly — a stale minority sequencer really can
keep stamping old-epoch entries, and the negative controls prove the
checkers catch the resulting split-brain.

Binding a :class:`~repro.sim.detector.HeartbeatDetector` arms the
quorum-aware degraded mode (unless ``quorum_aware=False``, the
negative control):

* **Quorum-gated delivery** — participants acknowledge every accepted
  relay (``abc-ack``); the sequencer advances a contiguous *stable*
  watermark once a majority acked and announces it (``abc-stable``,
  also piggybacked on relays).  Participants deliver only below the
  watermark, so nothing a minority delivered can ever be missing from
  a majority's election state: a stable entry was acked by a quorum,
  every majority intersects that quorum, and the election renumbering
  preserves the stable prefix position-for-position.
* **Degraded minority** — a sequencer that (by its own detector view)
  cannot reach a quorum stops sequencing: requests are *deferred*
  (``degraded="defer"``, replayed when quorum returns) and, in
  ``degraded="refuse"`` mode, ``broadcast()`` on a minority process
  raises :class:`~repro.errors.PartitionedError` instead of queueing.
  Local stale reads on the minority side are the protocol layer's
  decision (m-SC explicitly allows them; see ``docs/fault_model.md``).
* **Partition failover** — when an observer's detector suspects the
  observer's *own* sequencer, an election is scheduled; it aborts
  unless the mutually-reachable view is a majority, so only the
  majority side elects.  Epoch fencing extends to partition-induced
  loss: the ``abc-new-seq`` announcement is sent to *every* up pid —
  the reliable shim carries it across the cut at heal time — which
  fences the minority's ex-sequencer (its state and deferred queue
  are dropped), redirects the minority to the new sequencer, and
  triggers the unsequenced-request retry.  That retry is the
  post-heal reconciliation: every operation queued on the minority
  side is replayed through the new sequencer's atomic broadcast.

The election gathers the live participants' state in one atomic step
(standing in for a synchronous state-collection round) but performs
all repair — new-epoch announcement, rebroadcast, request retry,
log fetch — through real (lossy, reordering, partitionable) network
messages.  The handoff is safe under the single-failure-at-a-time
schedules the chaos harness generates; overlapping crashes of the
sequencer and the only participant that delivered a suffix can lose
that suffix, as in any 1-resilient primary-backup scheme without
stable storage.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.abcast.interface import AtomicBroadcast
from repro.errors import PartitionedError, ProtocolError, SequencerUnavailable
from repro.obs import get_tracer
from repro.sim.network import Message, Network

#: Message kinds used on the wire.
REQ = "abc-req"
SEQ = "abc-seq"
NEWSEQ = "abc-new-seq"
FETCH = "abc-fetch"
LOG = "abc-log"
ACK = "abc-ack"
STABLE = "abc-stable"

KINDS = (REQ, SEQ, NEWSEQ, FETCH, LOG, ACK, STABLE)


@dataclass
class _SeqState:
    """One pid's sequencer-side state (exists only while it leads)."""

    next_seq: int = 0
    ids: Set[int] = field(default_factory=set)
    log: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    #: seq -> pids that acknowledged the relay (quorum-gated mode).
    acks: Dict[int, Set[int]] = field(default_factory=dict)
    #: Contiguous stable watermark: every seq below it is quorum-acked.
    stable: int = 0
    #: Requests parked while the sequencer lacks a quorum.
    deferred: Dict[int, Dict[str, Any]] = field(default_factory=dict)


class SequencerAbcast(AtomicBroadcast):
    """Fixed-sequencer total-order broadcast.

    Args:
        network: the simulated network; all ``network.n`` endpoints
            participate.
        sequencer: pid of the (initial) sequencing process (default 0).
        fault_tolerant: enable duplicate suppression of relays,
            sequencer failover and participant recovery.  Off by
            default: the paper's experiments assume reliable channels
            and crash-free processes, and the non-fault-tolerant mode
            preserves their exact message costs.
        failover_delay: virtual time between a sequencer crash (or a
            partition suspicion) and the successor election completing
            (models failure-detection confirmation).

    The implementation piggybacks on the endpoints' handlers: it wires
    itself into the network via :meth:`handle`, which the owning
    process must call for messages whose kind starts with ``"abc-"``.
    """

    def __init__(
        self,
        network: Network,
        *,
        sequencer: int = 0,
        fault_tolerant: bool = False,
        failover_delay: float = 5.0,
    ) -> None:
        super().__init__(network)
        if not 0 <= sequencer < network.n:
            raise ProtocolError(f"sequencer pid {sequencer} out of range")
        #: The *latest-epoch* sequencer (what a fresh observer with a
        #: global view would name); individual participants may lag —
        #: see ``_psequencer``.
        self.sequencer = sequencer
        self.fault_tolerant = fault_tolerant
        self.failover_delay = failover_delay
        self.epoch = 0
        #: Completed failovers: (time, old sequencer, new sequencer).
        self.failovers: List[tuple] = []
        #: Degraded-mode incidents: (time, pid, reason, msg id|None).
        self.degraded: List[tuple] = []
        self._next_msg_id = itertools.count()
        # --- quorum awareness (armed by bind_detector) ---
        self.detector = None
        self.degraded_mode = "defer"
        self._quorum_aware = True
        self._quorum: Optional[int] = None
        #: Quorum machinery active (detector bound with safeguards on).
        #: A plain attribute, not a property — it is read on every
        #: accepted delivery and the method-call cost showed up in
        #: profiles of the 1000-process workload.
        self._gated = False
        # --- sequencer-side state, per pid *currently holding the
        # role in its own view* (volatile: dies with a crash, dropped
        # when an epoch fence demotes the holder) ---
        self._seq_state: Dict[int, _SeqState] = {sequencer: _SeqState()}
        # --- per-participant state ---
        #: Each participant's view of who the sequencer is.  Diverges
        #: across a partition (that is the point); reconciled by the
        #: NEWSEQ announcement.
        self._psequencer: Dict[int, int] = {
            pid: sequencer for pid in range(network.n)
        }
        self._expected: Dict[int, int] = {pid: 0 for pid in range(network.n)}
        self._buffer: Dict[int, Dict[int, Dict[str, Any]]] = {
            pid: {} for pid in range(network.n)
        }
        #: Delivered entries retained per participant; feeds elections
        #: and peer snapshots.
        self._plog: Dict[int, Dict[int, Dict[str, Any]]] = {
            pid: {} for pid in range(network.n)
        }
        #: Participant's current epoch (stale-epoch relays dropped).
        self._pepoch: Dict[int, int] = {pid: 0 for pid in range(network.n)}
        #: Participant's known stable watermarks, **per announcing
        #: epoch** (quorum-gated mode).  A watermark from epoch ``e``
        #: vouches only for entries of epoch >= ``e``: an election
        #: preserves the stable prefix position-for-position going
        #: *forward*, so a newer epoch's watermark says nothing about
        #: a stale buffered entry from an older epoch still awaiting
        #: its fence (the split-brain heal race).
        self._pstable: Dict[int, Dict[int, int]] = {
            pid: {} for pid in range(network.n)
        }
        #: Participants whose delivery is gated (snapshot install).
        self._suspended: Set[int] = set()
        #: Sender pid -> msg id -> request body, for requests not yet
        #: seen in the delivered order (durable client intent; resent
        #: on failover and recovery).
        self._unsequenced: Dict[int, Dict[int, Dict[str, Any]]] = {
            pid: {} for pid in range(network.n)
        }
        #: Recovery-completion callbacks: pid -> thunk fired once the
        #: replayed delivery reaches the LOG reply's ``upto`` target.
        self._on_caught_up: Dict[int, Any] = {}
        #: Open tracing span covering sequencer crash -> election done.
        self._failover_span: Optional[Any] = None

    # ------------------------------------------------------------------
    # Quorum awareness
    # ------------------------------------------------------------------

    def bind_detector(
        self,
        detector,
        *,
        quorum: Optional[int] = None,
        quorum_aware: bool = True,
        degraded: str = "defer",
    ) -> None:
        """Arm partition handling with a heartbeat failure detector.

        With ``quorum_aware=True`` (default) this enables quorum-gated
        delivery, minority degradation and majority-side partition
        failover.  ``quorum_aware=False`` keeps the detector driving
        elections but strips every quorum safeguard — the split-brain
        negative control.
        """
        if degraded not in ("defer", "refuse"):
            raise ProtocolError(
                f"unknown degraded mode {degraded!r}; expected 'defer' "
                "or 'refuse'"
            )
        self.detector = detector
        self._quorum_aware = quorum_aware
        self._quorum = quorum
        self.degraded_mode = degraded
        self._gated = quorum_aware
        detector.on_change = self.on_detector_event

    def quorum_size(self) -> int:
        """The majority threshold used for stability and elections."""
        return (
            self._quorum
            if self._quorum is not None
            else self.network.n // 2 + 1
        )

    def _quorate(self, pid: int) -> bool:
        """Does ``pid``'s own detector view still see a majority?"""
        if self.detector is None:
            return True
        alive = self.network.n - len(self.detector.suspects(pid))
        return alive >= self.quorum_size()

    def _is_sequencer(self, pid: int) -> bool:
        """True iff ``pid``'s own view names itself sequencer."""
        return self._psequencer[pid] == pid

    def _state(self, pid: int) -> _SeqState:
        state = self._seq_state.get(pid)
        if state is None:
            state = self._seq_state[pid] = _SeqState()
        return state

    # ------------------------------------------------------------------
    # AtomicBroadcast API
    # ------------------------------------------------------------------

    def broadcast(self, sender: int, payload: Any) -> None:
        """Send the payload to the sequencer (in the sender's view)."""
        if not self.fault_tolerant and self.network.is_down(self.sequencer):
            raise SequencerUnavailable(
                f"sequencer {self.sequencer} is down and failover is "
                "disabled"
            )
        if (
            self._gated
            and self.degraded_mode == "refuse"
            and not self._quorate(sender)
        ):
            self.degraded.append(
                (self.network.sim.now, sender, "refused", None)
            )
            raise PartitionedError(
                f"P{sender} is on the minority side of a partition "
                "(degraded mode 'refuse'): broadcast rejected"
            )
        msg_id = next(self._next_msg_id)
        body = {"sender": sender, "payload": payload, "id": msg_id}
        if self.fault_tolerant:
            self._unsequenced[sender][msg_id] = body
        self.network.send(
            sender, self._psequencer[sender], Message(REQ, body)
        )

    # ------------------------------------------------------------------
    # Wire protocol
    # ------------------------------------------------------------------

    def handles(self, kind: str) -> bool:
        """True iff this layer owns messages of the given kind."""
        return kind in KINDS

    def handle(self, pid: int, src: int, message: Message) -> None:
        """Process an ``abc-*`` message arriving at endpoint ``pid``."""
        if message.kind == REQ:
            if not self._is_sequencer(pid):
                if self.fault_tolerant:
                    # Stale address (pre-failover sender, or a frame
                    # retried into a fenced ex-sequencer): forward to
                    # the sequencer in *this* pid's view.
                    self.network.send(
                        pid, self._psequencer[pid], message
                    )
                    return
                raise ProtocolError(
                    f"abc-req arrived at non-sequencer {pid}"
                )
            self._sequence(pid, message.payload)
        elif message.kind == SEQ:
            entry = message.payload
            if self._gated and "stable" in entry:
                self._learn_stable(pid, entry["stable"], entry["epoch"])
            if self._accept(pid, entry) and self._gated:
                self._send_ack(pid, src, entry)
            self._drain(pid)
        elif message.kind == NEWSEQ:
            self._on_new_sequencer(pid, message.payload)
        elif message.kind == FETCH:
            if not self._is_sequencer(pid):
                self.network.send(pid, self._psequencer[pid], message)
                return
            self._serve_fetch(pid, message.payload)
        elif message.kind == LOG:
            self._on_log(pid, src, message.payload)
        elif message.kind == ACK:
            self._on_ack(pid, message.payload)
        elif message.kind == STABLE:
            body = message.payload
            self._learn_stable(pid, body["stable"], body["epoch"])
            self._drain(pid)
        else:  # pragma: no cover - defensive
            raise ProtocolError(f"unexpected message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # Crash / recovery hooks (driven by the cluster / fault injector)
    # ------------------------------------------------------------------

    def on_crash(self, pid: int) -> None:
        """Participant ``pid`` crashed; wipe its volatile state."""
        super().on_crash(pid)
        self._expected[pid] = 0
        self._buffer[pid].clear()
        self._plog[pid].clear()
        self._pstable[pid] = {}
        self._suspended.discard(pid)
        self._on_caught_up.pop(pid, None)
        # Sequencing state (if this pid led in its own view) was in
        # the crashed process's memory.
        self._seq_state.pop(pid, None)
        if pid == self.sequencer and self.fault_tolerant:
            failed_epoch = self.epoch
            tracer = get_tracer()
            if tracer.enabled and self._failover_span is None:
                self._failover_span = tracer.begin(
                    "abcast.failover", failed=pid, epoch=failed_epoch
                )
            self.network.sim.schedule(
                self.failover_delay,
                lambda: self._elect(pid, failed_epoch),
            )

    def recover(
        self, pid: int, *, cursor: int = 0, on_caught_up=None
    ) -> None:
        """Participant ``pid`` restarted; catch up from ``cursor``.

        ``cursor=0`` replays the whole totally-ordered log (the
        process starts from a fresh store); a positive cursor resumes
        after a peer snapshot covering deliveries ``0..cursor-1``.
        Also re-sends the participant's still-unsequenced requests —
        their original frames may have died with the old sequencer.

        ``on_caught_up`` fires once the replay has re-delivered every
        entry the sequencer's log held when it served the fetch.  The
        cluster gates the restarted *client* on it: answering a local
        query from the half-replayed store would read values older
        than ones this process's earlier responses already exposed.
        """
        if not self.fault_tolerant:
            raise SequencerUnavailable(
                "recovery requires a fault-tolerant sequencer"
            )
        # A restarted process rejoins with the cluster's current view
        # of the sequencer (it re-learns everything else from the LOG
        # reply anyway).
        self._psequencer[pid] = self.sequencer
        # Stay gated until the LOG reply arrives: it carries the
        # current epoch, which is what lets _drain tell a live relay
        # from a stale pre-crash frame still floating in the network.
        self._suspended.add(pid)
        self._expected[pid] = cursor
        self.delivery_offset[pid] = cursor
        self._buffer[pid] = {
            seq: entry
            for seq, entry in self._buffer[pid].items()
            if seq >= cursor
        }
        if on_caught_up is not None:
            self._on_caught_up[pid] = on_caught_up
        self.network.send(
            pid, self.sequencer, Message(FETCH, {"pid": pid, "from": cursor})
        )
        for body in list(self._unsequenced[pid].values()):
            self.network.send(pid, self.sequencer, Message(REQ, body))
        self._drain(pid)

    def suspend(self, pid: int) -> None:
        """Gate delivery at ``pid`` (while a snapshot is in flight)."""
        self._suspended.add(pid)

    def install_snapshot(
        self, pid: int, cursor: int, log: Dict[int, Dict[str, Any]]
    ) -> None:
        """Adopt a peer's retained log up to ``cursor`` (state transfer).

        The retained log keeps the recovered participant eligible as
        an election donor for entries it did not re-deliver itself.
        """
        self._plog[pid] = {
            seq: entry for seq, entry in log.items() if seq < cursor
        }

    def cursor(self, pid: int) -> int:
        """``pid``'s delivery cursor (next expected sequence number)."""
        return self._expected[pid]

    def retained_log(self, pid: int) -> Dict[int, Dict[str, Any]]:
        """``pid``'s retained delivered entries (for peer snapshots)."""
        return dict(self._plog[pid])

    # ------------------------------------------------------------------
    # Sequencer internals
    # ------------------------------------------------------------------

    def _sequence(self, pid: int, request: Dict[str, Any]) -> None:
        state = self._state(pid)
        if request["id"] in state.ids:
            return  # duplicate or retried request: already ordered
        if self._gated and not self._quorate(pid):
            # Graceful degradation: a sequencer that cannot see a
            # majority must not extend the order (its relays could
            # never stabilize, and in the split-brain case they would
            # diverge from the majority's).  Park the request; it is
            # replayed when quorum returns, or re-driven by its
            # sender's unsequenced retry after an epoch fence.
            if request["id"] not in state.deferred:
                state.deferred[request["id"]] = request
                self.degraded.append(
                    (
                        self.network.sim.now,
                        pid,
                        "sequence-deferred",
                        request["id"],
                    )
                )
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.event(
                        "abcast.degraded",
                        pid=pid,
                        reason="sequence-deferred",
                        id=request["id"],
                    )
            return
        state.ids.add(request["id"])
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "abcast.sequence",
                seq=state.next_seq,
                epoch=self._pepoch[pid],
                sender=request["sender"],
            )
        stamped = {
            "seq": state.next_seq,
            "epoch": self._pepoch[pid],
            "sender": request["sender"],
            "payload": request["payload"],
            "id": request["id"],
        }
        if self._gated:
            stamped["stable"] = state.stable
        state.next_seq += 1
        state.log[stamped["seq"]] = stamped
        self.network.send_to_all(pid, Message(SEQ, stamped))

    def _serve_fetch(self, pid: int, body: Dict[str, Any]) -> None:
        state = self._state(pid)
        start = body["from"]
        entries = [
            state.log[seq]
            for seq in range(start, state.next_seq)
            if seq in state.log
        ]
        # Catch-up target for the recovering participant's client
        # gate.  Under quorum gating nothing past the stable watermark
        # is deliverable by anyone, so the watermark caps the target
        # (waiting for more would deadlock the restart).
        upto = state.next_seq
        if self._gated:
            upto = min(upto, state.stable)
        reply = {
            "entries": entries,
            "epoch": self._pepoch[pid],
            "upto": max(start, upto),
        }
        if self._gated:
            reply["stable"] = state.stable
        self.network.send(pid, body["pid"], Message(LOG, reply))

    def _on_ack(self, pid: int, body: Dict[str, Any]) -> None:
        if not self._is_sequencer(pid):
            return  # stale ack to a fenced or retired ex-sequencer
        if body["epoch"] != self._pepoch[pid]:
            return
        state = self._state(pid)
        state.acks.setdefault(body["seq"], set()).add(body["from"])
        quorum = self.quorum_size()
        advanced = False
        while len(state.acks.get(state.stable, ())) >= quorum:
            state.stable += 1
            advanced = True
        if advanced:
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "abcast.stable", pid=pid, stable=state.stable
                )
            self.network.send_to_all(
                pid,
                Message(
                    STABLE,
                    {"stable": state.stable, "epoch": self._pepoch[pid]},
                ),
            )

    def _send_ack(self, pid: int, relayer: int, entry: Dict[str, Any]) -> None:
        self.network.send(
            pid,
            relayer,
            Message(
                ACK,
                {"seq": entry["seq"], "epoch": entry["epoch"], "from": pid},
            ),
        )

    def _learn_stable(self, pid: int, stable: int, epoch: int) -> None:
        known = self._pstable[pid]
        if stable > known.get(epoch, 0):
            known[epoch] = stable

    def _stable_for(self, pid: int, entry_epoch: int) -> int:
        """Delivery bound for an entry of the given epoch.

        Only watermarks announced in epoch <= the entry's count: a
        stable position in epoch ``e`` names epoch-``e``'s entry at
        that position, which later epochs are guaranteed (by the
        election's renumbering) to keep — but an *older* entry at the
        same position may be an uncommitted stale one the fence has
        not yet swept away.
        """
        return max(
            (
                stable
                for epoch, stable in self._pstable[pid].items()
                if epoch <= entry_epoch
            ),
            default=0,
        )

    # ------------------------------------------------------------------
    # Participant internals
    # ------------------------------------------------------------------

    def _accept(self, pid: int, entry: Dict[str, Any]) -> bool:
        """Buffer a relay; True iff it is new (and worth acking)."""
        if entry["epoch"] < self._pepoch[pid]:
            return False  # renumbered away by a failover this pid saw
        seq = entry["seq"]
        if seq < self._expected[pid]:
            return False  # duplicate of an already-delivered relay
        existing = self._buffer[pid].get(seq)
        if existing is not None and existing["epoch"] >= entry["epoch"]:
            return False  # duplicate buffered relay
        self._buffer[pid][seq] = entry
        return True

    def _drain(self, pid: int) -> None:
        if pid in self._suspended:
            return
        # Hot loop: locals for the per-pid maps; ``expected``/``pepoch``
        # are re-read after each delivery callback, which may advance
        # them through events it triggers.
        buffer = self._buffer[pid]
        plog = self._plog[pid]
        gated = self._gated
        fault_tolerant = self.fault_tolerant
        expected = self._expected[pid]
        pepoch = self._pepoch[pid]
        while expected in buffer:
            entry = buffer[expected]
            if gated and expected >= self._stable_for(pid, entry["epoch"]):
                # Quorum-gated delivery: the relay is here but no
                # watermark of its own (or an older) epoch covers it
                # yet.  A newer epoch's watermark does not count — it
                # vouches for the *renumbered* entry at this position,
                # not a stale buffered one (leave that to the fence).
                break
            del buffer[expected]
            if entry["epoch"] < pepoch:
                # A stale pre-failover frame occupying a slot the
                # election renumbered; the current sequencer will
                # (re)relay this slot's real entry.  Do not advance.
                break
            plog[entry["seq"]] = entry
            self._expected[pid] = expected + 1
            if fault_tolerant and pid == entry["sender"]:
                # Retire the retained request only when the *sender*
                # delivers it.  Another participant's delivery is not
                # enough: that participant (e.g. the sequencer, which
                # delivers its own relays first) may crash as the only
                # process that saw the entry, and then the sender's
                # retained copy is what the retry path resends.
                self._unsequenced[pid].pop(entry["id"], None)
            self._local_deliver(
                pid, entry["sender"], entry["payload"], entry["id"]
            )
            expected = self._expected[pid]
            pepoch = self._pepoch[pid]

    def _on_new_sequencer(self, pid: int, body: Dict[str, Any]) -> None:
        # Equal epochs still proceed: the election already fenced the
        # live participants to the new epoch, and this announcement is
        # what triggers their in-flight-request retry.
        if body["epoch"] < self._pepoch[pid]:
            return
        self._pepoch[pid] = body["epoch"]
        new = body["sequencer"]
        self._psequencer[pid] = new
        if self._gated and "stable" in body:
            self._learn_stable(pid, body["stable"], body["epoch"])
        if new != pid and pid in self._seq_state:
            # The epoch fence reaching a partition-healed minority
            # ex-sequencer: its sequencing authority (and deferred
            # queue) die here; parked requests are re-driven by their
            # senders' unsequenced retry below.
            del self._seq_state[pid]
        # Buffered relays from older epochs were renumbered; drop them.
        self._buffer[pid] = {
            seq: entry
            for seq, entry in self._buffer[pid].items()
            if entry["epoch"] >= body["epoch"]
        }
        # In-flight-request retry: everything this participant has
        # broadcast but not yet seen delivered may have died with the
        # old sequencer (or sat deferred on a fenced minority one).
        for req in list(self._unsequenced[pid].values()):
            self.network.send(pid, new, Message(REQ, req))
        self._drain(pid)

    def _on_log(self, pid: int, src: int, body: Dict[str, Any]) -> None:
        if body["epoch"] > self._pepoch[pid]:
            self._pepoch[pid] = body["epoch"]
        if self._gated and "stable" in body:
            self._learn_stable(pid, body["stable"], body["epoch"])
        # The LOG reply completes recovery: the participant now knows
        # the current epoch, so delivery can resume (see recover()).
        self._suspended.discard(pid)
        for entry in body["entries"]:
            if self._accept(pid, entry) and self._gated:
                self._send_ack(pid, src, entry)
        self._drain(pid)
        callback = self._on_caught_up.get(pid)
        if callback is not None and self._expected[pid] >= body.get(
            "upto", 0
        ):
            del self._on_caught_up[pid]
            callback()

    # ------------------------------------------------------------------
    # Failover
    # ------------------------------------------------------------------

    def on_detector_event(
        self, kind: str, observer: int, target: int, now: float
    ) -> None:
        """Detector hook: drive partition failover and deferral replay.

        Installed as the bound detector's ``on_change``.
        """
        if not self.fault_tolerant:
            return
        if kind == "trust":
            # Quorum may be back: replay requests deferred while the
            # observer (if it leads in its own view) was degraded.
            if (
                self._is_sequencer(observer)
                and observer in self._seq_state
                and self._quorate(observer)
            ):
                state = self._seq_state[observer]
                deferred = list(state.deferred.values())
                state.deferred.clear()
                for request in deferred:
                    self._sequence(observer, request)
            return
        if kind != "suspect":
            return
        leader = self._psequencer[observer]
        if target != leader or observer == leader:
            return
        if self.network.is_down(observer):
            return
        # Confirmation delay mirrors the crash path; the epoch guard
        # dedups the elections every majority observer schedules.
        failed_epoch = self._pepoch[observer]
        tracer = get_tracer()
        if tracer.enabled and self._failover_span is None:
            self._failover_span = tracer.begin(
                "abcast.failover",
                failed=target,
                epoch=failed_epoch,
                cause="suspicion",
            )
        self.network.sim.schedule(
            self.failover_delay,
            lambda: self._elect_partition(observer, target, failed_epoch),
        )

    def _elect_partition(
        self, observer: int, failed: int, failed_epoch: int
    ) -> None:
        if self.network.is_down(observer):
            return
        if (
            self._psequencer[observer] != failed
            or self._pepoch[observer] != failed_epoch
            or self.epoch != failed_epoch
        ):
            return  # superseded by a newer election or a heal
        if self.detector is not None and not self.detector.is_suspected(
            observer, failed
        ):
            return  # the suspicion did not survive the confirmation delay
        n = self.network.n
        view = [
            pid
            for pid in range(n)
            if not self.network.is_down(pid)
            and self.network.reachable(observer, pid)
            and self.network.reachable(pid, observer)
        ]
        if self._gated and len(view) < self.quorum_size():
            # Minority side: electing here would be the split brain
            # the quorum rule exists to prevent.  Stay degraded.
            self.degraded.append(
                (self.network.sim.now, observer, "election-aborted", None)
            )
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "abcast.degraded",
                    pid=observer,
                    reason="election-aborted",
                )
            return
        successor: Optional[int] = None
        for step in range(1, n + 1):
            candidate = (failed + step) % n
            if candidate in view:
                successor = candidate
                break
        if successor is None:
            raise SequencerUnavailable(
                "no reachable candidate to take over sequencing"
            )
        self._run_election(successor, view, failed)

    def _elect(self, failed: int, failed_epoch: int) -> None:
        """Crash-path election (scheduled by :meth:`on_crash`)."""
        if self.epoch != failed_epoch or self.sequencer != failed:
            return  # superseded by a newer election
        if not self.network.is_down(failed):
            # The sequencer restarted within the detection window (it
            # recovers as a follower of itself; no handoff needed —
            # but its sequencing state is gone, so we must still
            # elect, possibly re-electing the same pid).
            pass
        n = self.network.n
        successor: Optional[int] = None
        for step in range(1, n + 1):
            candidate = (failed + step) % n
            if not self.network.is_down(candidate):
                successor = candidate
                break
        if successor is None:
            raise SequencerUnavailable(
                "no live candidate to take over sequencing"
            )
        live = [
            pid
            for pid in range(n)
            if not self.network.is_down(pid)
            and self.network.reachable(successor, pid)
            and self.network.reachable(pid, successor)
        ]
        if self._gated and len(live) < self.quorum_size():
            # A crash election on a minority fragment would split the
            # brain just like a partition election would; the majority
            # side elects via its own suspicion of the dead sequencer.
            self.degraded.append(
                (self.network.sim.now, successor, "election-aborted", None)
            )
            return
        self._run_election(successor, live, failed)

    def _run_election(
        self, successor: int, live: List[int], failed: int
    ) -> None:
        self.epoch += 1
        old = self.sequencer
        self.sequencer = successor
        self.failovers.append((self.network.sim.now, old, successor))
        if self._failover_span is not None:
            self._failover_span.end(successor=successor, epoch=self.epoch)
            self._failover_span = None
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "abcast.epoch",
                epoch=self.epoch,
                sequencer=successor,
                failed=failed,
            )

        # --- state collection (atomic stand-in for a gather round) ---
        # Epoch-fence the collected participants in the same atomic
        # step: pre-crash relays still in flight must not extend any
        # delivered prefix past the state the election just gathered
        # (the renumbering below is computed from exactly this state).
        # Participants *outside* the view (a partitioned minority) are
        # deliberately not touched: the NEWSEQ announcement fences
        # them whenever the network lets it through.
        for pid in live:
            self._pepoch[pid] = self.epoch
            self._psequencer[pid] = successor
        donor = max(live, key=lambda pid: self._expected[pid])
        delivered_upto = self._expected[donor]
        log: Dict[int, Dict[str, Any]] = {}
        for pid in live:
            for seq, entry in self._plog[pid].items():
                if seq < delivered_upto:
                    log.setdefault(seq, entry)
        # Undelivered entries exist only in buffers (no live process
        # delivered past `delivered_upto`); renumber them contiguously
        # in old-sequence order, deduplicated by message id.  In
        # quorum-gated mode the stable prefix is contiguous and fully
        # present in the gathered buffers (each stable entry was acked
        # by a quorum, which intersects this majority view), so stable
        # entries land back on their original numbers — nothing any
        # minority participant already delivered can move.
        pending: Dict[int, Dict[str, Any]] = {}
        for pid in live:
            for entry in self._buffer[pid].values():
                if entry["seq"] >= delivered_upto:
                    pending.setdefault(entry["id"], entry)
        renumbered = sorted(pending.values(), key=lambda e: e["seq"])

        # --- install the rebuilt sequencer state (restamped) ---
        state = _SeqState()
        next_seq = 0
        for seq in sorted(log):
            if seq != next_seq:  # pragma: no cover - defensive
                raise ProtocolError(
                    f"failover log has a gap at sequence {next_seq}"
                )
            entry = dict(log[seq])
            entry["epoch"] = self.epoch
            state.log[seq] = entry
            state.ids.add(entry["id"])
            next_seq += 1
        for entry in renumbered:
            stamped = dict(entry)
            stamped["seq"] = next_seq
            stamped["epoch"] = self.epoch
            state.log[next_seq] = stamped
            state.ids.add(stamped["id"])
            next_seq += 1
        state.next_seq = next_seq
        if self._gated:
            # Watermarks known to the gathered view all come from
            # epochs before this election (the epoch guard in _elect /
            # _elect_partition ensures no newer epoch existed), and
            # the renumbering preserved their prefixes, so the new
            # epoch adopts the largest one.
            known = max(
                self._stable_for(pid, self.epoch) for pid in live
            )
            state.stable = min(max(delivered_upto, known), next_seq)
            for seq, entry in state.log.items():
                entry["stable"] = state.stable
        self._seq_state[successor] = state
        # The failed leader's own state is NOT cleared here: on the
        # crash path on_crash already wiped it, and on the partition
        # path it lives across the cut — clearing it would be the
        # oracle leak this refactor removes.  The NEWSEQ fence retires
        # it instead.

        # --- repair over the real network ---
        announcement = {"epoch": self.epoch, "sequencer": successor}
        if self._gated:
            announcement["stable"] = state.stable
        for dst in range(self.network.n):
            # Every *up* pid gets the announcement, including ones the
            # successor cannot currently reach: the reliable shim
            # retries across the cut, so the fence and the redirect
            # arrive with the heal — that is the post-heal
            # reconciliation trigger.
            if not self.network.is_down(dst):
                self.network.send(
                    successor, dst, Message(NEWSEQ, dict(announcement))
                )
        base = min(self._expected[pid] for pid in live)
        for seq in range(base, state.next_seq):
            for dst in range(self.network.n):
                if not self.network.is_down(dst):
                    self.network.send(
                        successor, dst, Message(SEQ, state.log[seq])
                    )
