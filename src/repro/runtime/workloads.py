"""Workload registrations for the runtime layer.

Each :class:`~repro.runtime.registry.WorkloadSpec` adapts one workload
family to the uniform builder signature ``builder(n, objects, ops,
seed) -> workloads`` (one program list per process).  The module is
imported lazily by :func:`repro.runtime.registry.workload_registry`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.runtime.registry import WorkloadSpec, register_workload
from repro.workloads.generator import BLIND_MIX, random_workloads
from repro.workloads.scenarios import scenario_workloads

__all__ = ["BLIND", "HOTSPOT", "RANDOM", "SCENARIO", "ZIPFIAN"]


def _random(n: int, objects: Sequence[str], ops: int, seed: int):
    return random_workloads(n, objects, ops, seed=seed)


def _blind(n: int, objects: Sequence[str], ops: int, seed: int):
    return random_workloads(n, objects, ops, mix=BLIND_MIX, seed=seed)


def _hotspot(n: int, objects: Sequence[str], ops: int, seed: int):
    return random_workloads(n, objects, ops, seed=seed, zipf_s=1.5)


def _zipfian(n: int, objects: Sequence[str], ops: int, seed: int):
    return random_workloads(n, objects, ops, seed=seed, zipf_s=1.0)


def _scenario(n: int, objects: Sequence[str], ops: int, seed: int) -> List:
    # Scripted (Figure 5/7): shape is fixed by the scenario, the seed
    # is irrelevant, and ``ops`` sets the reader's read count.
    return scenario_workloads(n_reads=ops)


RANDOM = register_workload(
    WorkloadSpec(
        name="random",
        builder=_random,
        summary="mixed reads/writes/m-ops, uniform object choice",
    )
)

BLIND = register_workload(
    WorkloadSpec(
        name="blind",
        builder=_blind,
        summary="blind writes and reads only (safe for local gossip)",
    )
)

HOTSPOT = register_workload(
    WorkloadSpec(
        name="hotspot",
        builder=_hotspot,
        summary="zipf-skewed object choice (contention stress)",
    )
)

ZIPFIAN = register_workload(
    WorkloadSpec(
        name="zipfian",
        builder=_zipfian,
        summary="zipf(1.0)-skewed object choice (moderate contention)",
    )
)

SCENARIO = register_workload(
    WorkloadSpec(
        name="scenario",
        builder=_scenario,
        summary="Figure-5/7 script: one writer, one far reader",
        fixed_n=3,
        fixed_objects=("x", "y"),
    )
)
