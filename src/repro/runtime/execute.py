"""``execute(spec) -> RunArtifact`` — the one run pipeline.

Every surface that runs a protocol (the ``demo``/``trace``/``run``
CLI commands, the chaos harness's spec form, the exploration driver
and the benchmark report) goes through this module: resolve the
protocol and workload from the registry, build the cluster, arm the
fault plan if the spec carries one, install tracing/metrics when
asked, run, verify per the spec's :class:`~repro.runtime.spec
.VerifyPolicy` (taking the Theorem-7 fast path with a static
:class:`~repro.analysis.static.prover.ConstraintCertificate` whenever
the prover certifies the workload), and return one serializable
:class:`RunArtifact`.

Imports of the protocol/sim layers happen inside :func:`execute` —
this module is re-exported from :mod:`repro.runtime`, which protocol
modules import at load time for registration; resolving at call time
keeps the package import graph acyclic (same pattern as
``repro.sim.chaos``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.runtime.registry import (
    ProtocolSpec,
    WorkloadSpec,
    get_workload,
    resolve_protocol,
)
from repro.runtime.spec import InvalidSpecError, RunSpec

__all__ = ["FaultPolicyError", "RunArtifact", "execute", "history_hash"]


class FaultPolicyError(ReproError):
    """The spec asks for faults on a protocol without recovery support."""


def history_hash(history) -> str:
    """A deterministic digest of a history (determinism guard)."""
    from repro.core.serialize import history_to_dict

    payload = json.dumps(
        history_to_dict(history), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class VerdictRecord:
    """One consistency check's outcome, in serializable form."""

    condition: str
    holds: bool
    method: str
    certificate: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "condition": self.condition,
            "holds": self.holds,
            "method": self.method,
            "certificate": self.certificate,
        }


@dataclass
class RunArtifact:
    """Everything one executed :class:`RunSpec` produced.

    The artifact is JSON-serializable (:meth:`to_dict` / :meth:`save`);
    the two live handles (``result``, ``chaos``) are carried for
    in-process callers — the benchmark report reads ``result``, the
    chaos CLI reads ``chaos`` — and are summarized, not embedded, in
    the JSON form.
    """

    spec: RunSpec
    protocol: str
    condition: Optional[str]
    n: int
    objects: Tuple[str, ...]
    completed: int
    expected: int
    duration: float
    history_hash: str
    verdicts: List[VerdictRecord] = field(default_factory=list)
    #: chaos verdict components (empty outside fault runs).
    violations: List[str] = field(default_factory=list)
    failure: Optional[str] = None
    net_stats: Dict[str, Any] = field(default_factory=dict)
    metrics: Optional[Dict[str, Any]] = None
    trace_path: Optional[str] = None
    trace_spans: int = 0
    #: live handles — not serialized.
    result: Any = field(default=None, repr=False, compare=False)
    chaos: Any = field(default=None, repr=False, compare=False)
    tracer: Any = field(default=None, repr=False, compare=False)

    @property
    def ok(self) -> bool:
        """The run completed, stayed clean, and every check holds."""
        return (
            self.failure is None
            and not self.violations
            and self.completed == self.expected
            and all(v.holds for v in self.verdicts)
        )

    @property
    def history(self):
        return self.result.history if self.result is not None else None

    def to_dict(self) -> Dict[str, Any]:
        from repro.core.serialize import history_to_dict

        return {
            "spec": self.spec.to_dict(),
            "protocol": self.protocol,
            "condition": self.condition,
            "n": self.n,
            "objects": list(self.objects),
            "completed": self.completed,
            "expected": self.expected,
            "duration": self.duration,
            "history_hash": self.history_hash,
            "verdicts": [v.to_dict() for v in self.verdicts],
            "violations": list(self.violations),
            "failure": self.failure,
            "net_stats": dict(self.net_stats),
            "metrics": self.metrics,
            "trace_path": self.trace_path,
            "trace_spans": self.trace_spans,
            "ok": self.ok,
            "history": (
                history_to_dict(self.result.history)
                if self.result is not None
                else None
            ),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")

    def summary(self) -> str:
        """One line for CLI output and CI logs."""
        checks = (
            ", ".join(
                f"{v.condition}={'ok' if v.holds else 'VIOLATED'}"
                f"[{v.method}"
                + (f"+cert:{v.certificate}" if v.certificate else "")
                + "]"
                for v in self.verdicts
            )
            or "unverified"
        )
        verdict = "ok" if self.ok else (
            self.failure
            or (self.violations[0] if self.violations else "incomplete")
        )
        return (
            f"{self.protocol}/{self.spec.workload} seed={self.spec.seed}"
            f" n={self.n}: {self.completed}/{self.expected} ops in "
            f"{self.duration:.1f}t, {checks} -> {verdict}"
        )


def _build_workloads(
    workload: WorkloadSpec, n: int, objects: Tuple[str, ...], spec: RunSpec
):
    return workload.builder(n, objects, spec.ops, spec.seed + 1)


def _static_certificate(proto: ProtocolSpec, workloads, result):
    """Ask the prover for a workload certificate; None when it refuses."""
    from repro.analysis.static.prover import (
        CertificationRefused,
        certify_workloads,
    )

    protocol = (
        proto.name if proto.capabilities.certificate_eligible else None
    )
    try:
        cert = certify_workloads(workloads, protocol=protocol)
    except CertificationRefused:
        return None
    if cert.requires_chain:
        if result is None or not result.ww_sequence:
            return None
        cert = cert.with_chain(result.ww_sequence)
    return cert


def _verify(
    spec: RunSpec, proto: ProtocolSpec, workloads, result
) -> List[VerdictRecord]:
    """Run the spec's verification policy over a finished run."""
    from repro.core import check_condition, check_m_causal_consistency

    policy = spec.verify
    if not policy.enabled:
        return []
    condition = policy.condition or proto.condition
    if condition is None:
        # Baselines/controls guarantee nothing — nothing to check.
        return []
    if condition == "m-causal":
        verdict = check_m_causal_consistency(result.history)
        return [
            VerdictRecord(
                condition="m-causal",
                holds=verdict.holds,
                method="causal",
            )
        ]
    extra_pairs = result.ww_pairs() if policy.use_ww else ()
    certificate = None
    if policy.certificate == "auto":
        certificate = _static_certificate(proto, workloads, result)
    verdict = check_condition(
        result.history,
        condition,
        method=policy.method,
        extra_pairs=extra_pairs,
        certificate=certificate,
        mode=policy.mode,
        workers=policy.workers,
        window=policy.window,
    )
    return [
        VerdictRecord(
            condition=verdict.condition,
            holds=verdict.holds,
            method=verdict.method_used,
            certificate=verdict.certificate,
        )
    ]


def _check_options(spec: RunSpec, proto: ProtocolSpec) -> Dict[str, Any]:
    options = spec.options_dict()
    unknown = set(options) - set(proto.options)
    if unknown:
        raise InvalidSpecError(
            f"protocol {proto.name!r} does not take option(s) "
            f"{sorted(unknown)}; declared: {sorted(proto.options)}"
        )
    return options


def execute(spec: RunSpec, **overrides) -> RunArtifact:
    """Run one :class:`RunSpec` end to end and return the artifact.

    ``overrides`` are extra, non-serializable cluster-factory keywords
    (e.g. a custom ``abcast_factory`` in benchmarks) — an escape hatch
    for in-process callers; everything a spec file can express should
    go through the spec.
    """
    from repro.obs import (
        MetricsRegistry,
        Tracer,
        install_metrics,
        install_tracer,
        uninstall_metrics,
        uninstall_tracer,
    )

    proto = resolve_protocol(spec.protocol)
    workload = get_workload(spec.workload)
    n, objects = workload.shape(spec.n, spec.objects)
    options = _check_options(spec, proto)
    options.update(overrides)

    tracer = Tracer() if spec.tracing else None
    registry = MetricsRegistry() if spec.metrics else None
    if tracer is not None:
        install_tracer(tracer)
    if registry is not None:
        install_metrics(registry)
    try:
        if spec.faults is not None:
            artifact = _execute_faulty(
                spec, proto, workload, n, objects, options
            )
        else:
            artifact = _execute_clean(
                spec, proto, workload, n, objects, options
            )
    finally:
        if registry is not None:
            uninstall_metrics()
        if tracer is not None:
            uninstall_tracer()

    if registry is not None:
        snapshot = registry.snapshot()
        if artifact.metrics:
            snapshot.update(artifact.metrics)
        artifact.metrics = snapshot
    if tracer is not None:
        artifact.tracer = tracer
        artifact.trace_spans = len(tracer.records())
        if spec.trace_path:
            tracer.export_jsonl(spec.trace_path)
            artifact.trace_path = spec.trace_path
    return artifact


def _execute_clean(
    spec: RunSpec,
    proto: ProtocolSpec,
    workload: WorkloadSpec,
    n: int,
    objects: Tuple[str, ...],
    options: Dict[str, Any],
) -> RunArtifact:
    cluster = proto.factory(
        n,
        objects,
        seed=spec.seed,
        latency=spec.latency.build(),
        **options,
    )
    workloads = _build_workloads(workload, n, objects, spec)
    expected = sum(len(w) for w in workloads)
    result = cluster.run(
        workloads, max_events=spec.max_events, settle=spec.settle
    )
    verdicts = _verify(spec, proto, workloads, result)
    violations = []
    if result.abcast_violation is not None:
        violations.append(f"abcast: {result.abcast_violation}")
    return RunArtifact(
        spec=spec,
        protocol=proto.name,
        condition=spec.verify.condition or proto.condition,
        n=n,
        objects=objects,
        completed=len(result.recorder.records),
        expected=expected,
        duration=result.duration,
        history_hash=history_hash(result.history),
        verdicts=verdicts,
        violations=violations,
        net_stats=result.net_stats.snapshot(),
        result=result,
    )


def _execute_faulty(
    spec: RunSpec,
    proto: ProtocolSpec,
    workload: WorkloadSpec,
    n: int,
    objects: Tuple[str, ...],
    options: Dict[str, Any],
) -> RunArtifact:
    from repro.sim.chaos import run_chaos

    faults = spec.faults
    # Eligibility follows the plan, not a blanket flag: crash events
    # need crash tolerance, partition events need partition tolerance.
    # With an explicit plan the requirements are read off it; a seeded
    # draw is a crash plan unless ``partition`` selects the partition
    # generator.
    plan = faults.plan
    needs_crash = plan.crashes if plan is not None else not faults.partition
    needs_partition = (
        bool(plan.partitions) if plan is not None else faults.partition
    )
    if needs_crash and not proto.capabilities.crash_tolerant:
        raise FaultPolicyError(
            f"protocol {proto.name!r} has no crash-recovery support; "
            "crash plans require a crash-tolerant protocol (see "
            "repro.runtime.crash_tolerant_protocols())"
        )
    if needs_partition and not proto.capabilities.partition_tolerant:
        raise FaultPolicyError(
            f"protocol {proto.name!r} has no partition-tolerance "
            "support; partition plans require the partition_tolerant "
            "capability (see repro.runtime.partition_tolerant_protocols())"
        )
    workloads = _build_workloads(workload, n, objects, spec)
    chaos = run_chaos(
        proto.name,
        faults.seed,
        n=n,
        objects=objects,
        ops_per_process=spec.ops,
        recovery=faults.recovery,
        recover=faults.recover,
        plan=faults.plan,
        partition=faults.partition,
        quorum_aware=faults.quorum_aware,
        degraded=faults.degraded,
        detector_period=faults.detector_period,
        detector_timeout=faults.detector_timeout,
        horizon=faults.horizon,
        failover_delay=faults.failover_delay,
        max_events=spec.max_events,
        workloads=workloads,
        latency=spec.latency.build(),
        cluster_seed=spec.seed,
        ack_timeout=faults.ack_timeout,
        retry_backoff=faults.retry_backoff,
        retry_jitter=faults.retry_jitter,
        max_retries=faults.max_retries,
        verify_window=spec.verify.window,
        verify_workers=spec.verify.workers,
        **options,
    )
    result = chaos.result
    verdicts: List[VerdictRecord] = []
    if result is not None and spec.verify.enabled:
        verdicts = _verify(spec, proto, workloads, result)
    violations = list(chaos.violations)
    if chaos.abcast_violation is not None:
        violations.append(f"abcast: {chaos.abcast_violation}")
    return RunArtifact(
        spec=spec,
        protocol=proto.name,
        condition=spec.verify.condition or proto.condition,
        n=n,
        objects=objects,
        completed=chaos.completed,
        expected=chaos.expected,
        duration=chaos.duration,
        history_hash=(
            history_hash(result.history) if result is not None else ""
        ),
        verdicts=verdicts,
        violations=violations,
        failure=chaos.failure,
        net_stats=dict(chaos.metrics),
        metrics=dict(chaos.metrics),
        result=result,
        chaos=chaos,
    )
