"""Declarative run specifications — ``RunSpec`` and its JSON codec.

A :class:`RunSpec` is a complete, serializable description of one
protocol run: which protocol and workload, the cluster shape, the
seeds, the latency model, an optional fault plan, observability
toggles and the verification policy.  ``from_json(to_json(spec)) ==
spec`` holds for every spec, so runs can be stored, shipped and
replayed bit-for-bit (``python -m repro run SPEC.json``).

The executable half lives in :mod:`repro.runtime.execute`; this
module is pure data.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ReproError
from repro.sim.faults import (
    CrashEvent,
    DelaySpike,
    FaultPlan,
    HealEvent,
    PartitionEvent,
)
from repro.sim.latency import (
    AsymmetricLatency,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    UniformLatency,
)

__all__ = [
    "FaultSpec",
    "InvalidSpecError",
    "LatencySpec",
    "RunSpec",
    "VerifyPolicy",
    "fault_plan_from_dict",
    "fault_plan_to_dict",
]


class InvalidSpecError(ReproError):
    """The spec (or its JSON form) is malformed."""


def _canonical_value(value: Any) -> Any:
    """JSON data normalized for hashing.

    Integral floats collapse to ints (a spec file saying ``"settle":
    0`` and the in-memory default ``0.0`` are the same spec), tuples
    become lists, and mapping keys become strings — so two
    semantically identical specs always canonicalize to the same
    bytes regardless of which surface built them.
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        return int(value) if value.is_integer() else value
    if isinstance(value, int):
        return value
    if isinstance(value, Mapping):
        return {
            str(key): _canonical_value(item)
            for key, item in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    raise InvalidSpecError(
        f"value {value!r} ({type(value).__name__}) has no canonical "
        "JSON form"
    )


@dataclass(frozen=True)
class LatencySpec:
    """A serializable latency-model description.

    ``kind`` selects the :mod:`repro.sim.latency` class; ``params``
    are its positional constructor arguments:

    * ``uniform(low, high)`` — the default, the paper's reordering
      channel;
    * ``fixed(delay)``;
    * ``exponential(mean_delay, floor)``;
    * ``asymmetric(base, jitter, slow_node, slow_extra)``.
    """

    kind: str = "uniform"
    params: Tuple[float, ...] = (0.5, 1.5)

    _BUILDERS = {
        "uniform": UniformLatency,
        "fixed": FixedLatency,
        "exponential": ExponentialLatency,
        "asymmetric": lambda base, jitter, slow_node, slow_extra: (
            AsymmetricLatency(base, jitter, int(slow_node), slow_extra)
        ),
    }

    def __post_init__(self) -> None:
        if self.kind not in self._BUILDERS:
            raise InvalidSpecError(
                f"unknown latency kind {self.kind!r}; expected one of "
                f"{sorted(self._BUILDERS)}"
            )
        object.__setattr__(self, "params", tuple(self.params))

    def build(self) -> LatencyModel:
        """Instantiate the concrete latency model."""
        try:
            return self._BUILDERS[self.kind](*self.params)
        except TypeError as exc:
            raise InvalidSpecError(
                f"latency {self.kind!r} rejected params {self.params}: "
                f"{exc}"
            ) from None

    @classmethod
    def of(cls, model: Optional[LatencyModel]) -> "LatencySpec":
        """Describe a concrete latency model (None = the default)."""
        if model is None:
            return cls()
        if isinstance(model, UniformLatency):
            return cls("uniform", (model.low, model.high))
        if isinstance(model, FixedLatency):
            return cls("fixed", (model.delay,))
        if isinstance(model, ExponentialLatency):
            return cls("exponential", (model.mean_delay, model.floor))
        if isinstance(model, AsymmetricLatency):
            return cls(
                "asymmetric",
                (model.base, model.jitter, model.slow_node,
                 model.slow_extra),
            )
        raise InvalidSpecError(
            f"latency model {type(model).__name__} has no spec form"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "params": list(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "LatencySpec":
        return cls(
            kind=data.get("kind", "uniform"),
            params=tuple(data.get("params", (0.5, 1.5))),
        )


def fault_plan_to_dict(plan: FaultPlan) -> Dict[str, Any]:
    """A :class:`~repro.sim.faults.FaultPlan` as plain JSON data."""
    return asdict(plan)


def fault_plan_from_dict(data: Mapping[str, Any]) -> FaultPlan:
    """Rebuild a :class:`~repro.sim.faults.FaultPlan` from JSON data."""
    return FaultPlan(
        seed=data.get("seed", 0),
        drop_prob=data.get("drop_prob", 0.0),
        dup_prob=data.get("dup_prob", 0.0),
        crashes=tuple(
            CrashEvent(
                pid=c["pid"],
                at=c["at"],
                restart_after=c.get("restart_after"),
            )
            for c in data.get("crashes", ())
        ),
        spikes=tuple(
            DelaySpike(
                at=s["at"], duration=s["duration"], factor=s["factor"]
            )
            for s in data.get("spikes", ())
        ),
        partitions=tuple(
            PartitionEvent(
                at=p["at"],
                links=tuple(
                    (link[0], link[1]) for link in p.get("links", ())
                ),
                symmetric=p.get("symmetric", True),
                duration=p.get("duration"),
            )
            for p in data.get("partitions", ())
        ),
        heals=tuple(
            HealEvent(
                at=h["at"],
                links=(
                    None
                    if h.get("links") is None
                    else tuple(
                        (link[0], link[1]) for link in h["links"]
                    )
                ),
                symmetric=h.get("symmetric", True),
            )
            for h in data.get("heals", ())
        ),
    )


@dataclass(frozen=True)
class FaultSpec:
    """Fault injection for a run (requires a crash-tolerant protocol).

    Attributes:
        seed: seeds :meth:`~repro.sim.faults.FaultPlan.random` when no
            explicit ``plan`` is given.
        horizon: virtual-time spread of the generated plan.
        recovery: ``"replay"`` (re-deliver the log) or ``"snapshot"``
            (peer state transfer).
        recover: False = negative control; crashes become permanent
            and the run is *expected* to fail.
        failover_delay: sequencer failure-detection delay.
        plan: explicit fault plan, overriding the seeded draw.
        partition: draw the seeded plan from
            :meth:`~repro.sim.faults.FaultPlan.random_partition`
            (link-level partition schedule) instead of the crash
            schedule; requires a partition-tolerant protocol.
        quorum_aware: False = partition negative control (quorum
            safeguards stripped; a split-brain is *expected* and must
            be caught by the checkers).
        degraded: minority-side sequencer behaviour, ``"defer"`` or
            ``"refuse"``.
        detector_period / detector_timeout: heartbeat interval and
            initial silence threshold of the failure detector (armed
            whenever the plan contains partitions).
        ack_timeout / retry_backoff / retry_jitter / max_retries: the
            reliable shim's retransmission schedule — serialized so a
            replayed spec reproduces every ``DeliveryTimeout``
            bit-for-bit.
    """

    seed: int = 0
    horizon: float = 40.0
    recovery: str = "replay"
    recover: bool = True
    failover_delay: float = 4.0
    plan: Optional[FaultPlan] = None
    partition: bool = False
    quorum_aware: bool = True
    degraded: str = "defer"
    detector_period: float = 1.0
    detector_timeout: float = 3.5
    ack_timeout: float = 4.0
    retry_backoff: float = 2.0
    retry_jitter: float = 0.25
    max_retries: int = 40

    def __post_init__(self) -> None:
        if self.recovery not in ("replay", "snapshot"):
            raise InvalidSpecError(
                f"unknown recovery mode {self.recovery!r}; expected "
                "'replay' or 'snapshot'"
            )
        if self.degraded not in ("defer", "refuse"):
            raise InvalidSpecError(
                f"unknown degraded mode {self.degraded!r}; expected "
                "'defer' or 'refuse'"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "recovery": self.recovery,
            "recover": self.recover,
            "failover_delay": self.failover_delay,
            "plan": (
                None if self.plan is None else fault_plan_to_dict(self.plan)
            ),
            "partition": self.partition,
            "quorum_aware": self.quorum_aware,
            "degraded": self.degraded,
            "detector_period": self.detector_period,
            "detector_timeout": self.detector_timeout,
            "ack_timeout": self.ack_timeout,
            "retry_backoff": self.retry_backoff,
            "retry_jitter": self.retry_jitter,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        plan = data.get("plan")
        return cls(
            seed=data.get("seed", 0),
            horizon=data.get("horizon", 40.0),
            recovery=data.get("recovery", "replay"),
            recover=data.get("recover", True),
            failover_delay=data.get("failover_delay", 4.0),
            plan=None if plan is None else fault_plan_from_dict(plan),
            partition=data.get("partition", False),
            quorum_aware=data.get("quorum_aware", True),
            degraded=data.get("degraded", "defer"),
            detector_period=data.get("detector_period", 1.0),
            detector_timeout=data.get("detector_timeout", 3.5),
            ack_timeout=data.get("ack_timeout", 4.0),
            retry_backoff=data.get("retry_backoff", 2.0),
            retry_jitter=data.get("retry_jitter", 0.25),
            max_retries=data.get("max_retries", 40),
        )


@dataclass(frozen=True)
class VerifyPolicy:
    """What to check after the run, and how.

    Attributes:
        enabled: run the consistency checkers at all.
        condition: condition to check; None = the protocol's declared
            strongest condition (skip verification when the protocol
            declares none).
        method: checker selection (``auto``/``exact``/``constrained``),
            forwarded to :func:`repro.core.check_condition`.
        use_ww: feed the run's recorded ``~ww`` synchronization order
            as ``extra_pairs`` (the Theorem-7 fast path).
        certificate: ``"auto"`` = ask the static prover to certify
            the workload and hand the checkers the resulting
            :class:`~repro.analysis.static.prover.ConstraintCertificate`
            (falling back silently when it refuses); ``"off"`` = always
            use the dynamic constraint phase.
        mode: verification plan mode (``"full"``, ``"sharded"`` or
            ``"windowed"``), forwarded to
            :func:`repro.core.check_condition`.  Sharded and windowed
            plans need a certificate of the right shape; the engine
            raises :class:`~repro.errors.PlanRefused` otherwise.
        workers: shard-executor process count for ``mode="sharded"``
            (1 = in-process, the safe default).
        window: ``~ww`` lookback depth for ``mode="windowed"`` — also
            selects the bounded-memory
            :class:`~repro.core.index.WindowedIndex` for in-run chaos
            audits when faults are armed.
    """

    enabled: bool = True
    condition: Optional[str] = None
    method: str = "auto"
    use_ww: bool = True
    certificate: str = "auto"
    mode: str = "full"
    workers: int = 1
    window: Optional[int] = None

    def __post_init__(self) -> None:
        if self.method not in ("auto", "exact", "constrained"):
            raise InvalidSpecError(
                f"unknown check method {self.method!r}"
            )
        if self.certificate not in ("auto", "off"):
            raise InvalidSpecError(
                f"certificate policy must be 'auto' or 'off', got "
                f"{self.certificate!r}"
            )
        if self.mode not in ("full", "sharded", "windowed"):
            raise InvalidSpecError(
                f"unknown verify mode {self.mode!r}; expected 'full', "
                "'sharded' or 'windowed'"
            )
        if self.workers < 1:
            raise InvalidSpecError(
                f"workers must be >= 1, got {self.workers}"
            )
        if self.window is not None and self.window < 1:
            raise InvalidSpecError(
                f"window must be >= 1 (or null), got {self.window}"
            )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "enabled": self.enabled,
            "condition": self.condition,
            "method": self.method,
            "use_ww": self.use_ww,
            "certificate": self.certificate,
            "mode": self.mode,
            "workers": self.workers,
            "window": self.window,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "VerifyPolicy":
        return cls(
            enabled=data.get("enabled", True),
            condition=data.get("condition"),
            method=data.get("method", "auto"),
            use_ww=data.get("use_ww", True),
            certificate=data.get("certificate", "auto"),
            mode=data.get("mode", "full"),
            workers=data.get("workers", 1),
            window=data.get("window"),
        )


@dataclass(frozen=True)
class RunSpec:
    """A complete, declarative description of one protocol run.

    Seeding convention (shared by the demo CLI and the benchmark
    report): the cluster's randomness uses ``seed``, the workload
    generator uses ``seed + 1``, and the network is internally seeded
    ``seed + 1`` by the cluster — one integer reproduces the run.
    """

    protocol: str
    workload: str = "random"
    n: int = 3
    objects: Tuple[str, ...] = ("x", "y", "z")
    ops: int = 5
    seed: int = 0
    latency: LatencySpec = LatencySpec()
    faults: Optional[FaultSpec] = None
    tracing: bool = False
    trace_path: Optional[str] = None
    metrics: bool = False
    verify: VerifyPolicy = VerifyPolicy()
    settle: float = 0.0
    max_events: int = 5_000_000
    #: Protocol-specific factory keywords (sorted key/value pairs so
    #: specs stay hashable and order-insensitively equal); the keys
    #: must appear in the protocol's ``ProtocolSpec.options``.
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "objects", tuple(self.objects))
        options = self.options
        if isinstance(options, Mapping):
            options = options.items()
        object.__setattr__(
            self, "options", tuple(sorted((k, v) for k, v in options))
        )
        if self.n <= 0:
            raise InvalidSpecError("n must be positive")
        if self.ops < 0:
            raise InvalidSpecError("ops must be non-negative")

    def options_dict(self) -> Dict[str, Any]:
        """The protocol options as a plain keyword dict."""
        return dict(self.options)

    def with_(self, **changes) -> "RunSpec":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------
    # JSON codec
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "workload": self.workload,
            "n": self.n,
            "objects": list(self.objects),
            "ops": self.ops,
            "seed": self.seed,
            "latency": self.latency.to_dict(),
            "faults": (
                None if self.faults is None else self.faults.to_dict()
            ),
            "tracing": self.tracing,
            "trace_path": self.trace_path,
            "metrics": self.metrics,
            "verify": self.verify.to_dict(),
            "settle": self.settle,
            "max_events": self.max_events,
            "options": dict(self.options),
        }

    def to_json(self, *, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------
    # Canonical form — the serving layer's cache key
    # ------------------------------------------------------------------

    def canonical_dict(self) -> Dict[str, Any]:
        """The spec as normalized JSON data (defaults materialized).

        Every field appears (dataclass defaults are filled in at
        construction), ``options`` are already key-sorted, and values
        are normalized via :func:`_canonical_value` — so two specs
        that execute identically produce identical canonical dicts no
        matter how sparsely their JSON source spelled them.
        """
        return _canonical_value(self.to_dict())

    def canonical_json(self) -> str:
        """The canonical dict as compact, key-sorted JSON text."""
        return json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )

    def spec_hash(self) -> str:
        """SHA-256 of :meth:`canonical_json` — the verdict-cache key.

        Semantically identical specs (field order, materialized
        defaults, int/float spellings) hash identically; any change
        that could alter the run's outcome changes the hash.
        """
        return hashlib.sha256(
            self.canonical_json().encode("utf-8")
        ).hexdigest()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        if "protocol" not in data:
            raise InvalidSpecError("run spec needs a 'protocol'")
        unknown = set(data) - {
            "protocol", "workload", "n", "objects", "ops", "seed",
            "latency", "faults", "tracing", "trace_path", "metrics",
            "verify", "settle", "max_events", "options",
        }
        if unknown:
            raise InvalidSpecError(
                f"unknown run-spec field(s): {sorted(unknown)}"
            )
        faults = data.get("faults")
        return cls(
            protocol=data["protocol"],
            workload=data.get("workload", "random"),
            n=data.get("n", 3),
            objects=tuple(data.get("objects", ("x", "y", "z"))),
            ops=data.get("ops", 5),
            seed=data.get("seed", 0),
            latency=LatencySpec.from_dict(data.get("latency", {})),
            faults=None if faults is None else FaultSpec.from_dict(faults),
            tracing=data.get("tracing", False),
            trace_path=data.get("trace_path"),
            metrics=data.get("metrics", False),
            verify=VerifyPolicy.from_dict(data.get("verify", {})),
            settle=data.get("settle", 0.0),
            max_events=data.get("max_events", 5_000_000),
            options=tuple(
                sorted(data.get("options", {}).items())
            ),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidSpecError(f"run spec is not valid JSON: {exc}")
        if not isinstance(data, dict):
            raise InvalidSpecError("run spec JSON must be an object")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "RunSpec":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())
            handle.write("\n")
