"""Protocol and workload registries — the runtime layer's ground truth.

Every replication protocol registers a :class:`ProtocolSpec` *next to
its own module* (at the bottom of ``repro/protocols/<name>.py``), and
every runnable workload a :class:`WorkloadSpec` — so the CLI, the
chaos harness, the exploration driver and the benchmark report all
resolve the same table instead of each keeping a private dict.  The
spec ties together what the paper treats as one family (Section 5):
the cluster factory, the strongest consistency condition the protocol
guarantees, and capability flags that gate the optional machinery
(crash recovery, static certificates, the relevant-objects query
optimization).

The registries are populated as a side effect of importing
:mod:`repro.protocols` / :mod:`repro.workloads`; the accessor
functions below trigger those imports lazily, so this module itself
stays import-cycle-free (protocol modules import *us* at load time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ReproError

__all__ = [
    "Capabilities",
    "ProtocolSpec",
    "UnknownProtocolError",
    "UnknownWorkloadError",
    "WorkloadSpec",
    "crash_tolerant_protocols",
    "get_protocol",
    "partition_tolerant_protocols",
    "get_workload",
    "protocol_names",
    "protocol_registry",
    "register_protocol",
    "register_workload",
    "resolve_protocol",
    "workload_names",
    "workload_registry",
]


class UnknownProtocolError(ReproError):
    """The named protocol is not in the registry."""


class UnknownWorkloadError(ReproError):
    """The named workload is not in the registry."""


@dataclass(frozen=True)
class Capabilities:
    """What a protocol's implementation supports beyond a plain run.

    Attributes:
        crash_tolerant: the protocol survives process crash-restarts
            (and, where it uses atomic broadcast, sequencer failover);
            only these protocols are eligible for crash chaos.
        partition_tolerant: the protocol survives link-level network
            partitions — its liveness may degrade (blocked updates,
            deferred sequencing, explicit
            :class:`~repro.errors.PartitionedError` refusals on the
            minority side) but its claimed consistency condition
            holds on every history the run records; required for
            chaos plans that contain partition events.
        certificate_eligible: runs expose a total synchronization
            order (``RunResult.ww_sequence``), so the static prover
            can bind a ``total-update-order``
            :class:`~repro.analysis.static.prover.ConstraintCertificate`
            to them and the checkers take the Theorem-7 fast path.
        query_optimizable: supports the Section-5.2 relevant-objects
            query-reply optimization (``reply_relevant_only``).
    """

    crash_tolerant: bool = False
    partition_tolerant: bool = False
    certificate_eligible: bool = False
    query_optimizable: bool = False


@dataclass(frozen=True)
class ProtocolSpec:
    """One protocol's registry entry.

    Attributes:
        name: registry key (e.g. ``"msc"``), also the CLI name.
        factory: the ``*_cluster(n, objects, **kwargs)`` builder.
        condition: strongest consistency condition every run
            guarantees (``"m-sc"``, ``"m-lin"``, ``"m-causal"``) or
            None for the deliberately weaker baselines/controls.
        summary: one line for ``--help`` and the docs table.
        capabilities: optional-machinery flags (see
            :class:`Capabilities`).
        uses_abcast: the protocol is built on the atomic-broadcast
            layer (drives whether fault-tolerant runs arm the
            fault-tolerant sequencer).
        options: names of JSON-representable factory keywords a
            :class:`~repro.runtime.spec.RunSpec` may carry for this
            protocol (e.g. ``delta``, ``reply_relevant_only``).
    """

    name: str
    factory: Callable = field(compare=False)
    condition: Optional[str] = None
    summary: str = ""
    capabilities: Capabilities = Capabilities()
    uses_abcast: bool = True
    options: Tuple[str, ...] = ()


@dataclass(frozen=True)
class WorkloadSpec:
    """One workload family's registry entry.

    Attributes:
        name: registry key (e.g. ``"random"``).
        builder: ``builder(n, objects, ops, seed) -> Workloads`` (one
            program sequence per process).
        summary: one line for ``--help`` and the docs table.
        fixed_n: the workload scripts a specific process count (the
            scenario workloads do); None = any.
        fixed_objects: the workload scripts specific object names;
            None = any.
    """

    name: str
    builder: Callable = field(compare=False)
    summary: str = ""
    fixed_n: Optional[int] = None
    fixed_objects: Optional[Tuple[str, ...]] = None

    def shape(
        self, n: int, objects: Sequence[str]
    ) -> Tuple[int, Tuple[str, ...]]:
        """The (n, objects) the cluster must use for this workload."""
        if self.fixed_n is not None:
            n = self.fixed_n
        if self.fixed_objects is not None:
            objects = self.fixed_objects
        return n, tuple(objects)


_PROTOCOLS: Dict[str, ProtocolSpec] = {}
_WORKLOADS: Dict[str, WorkloadSpec] = {}


def register_protocol(spec: ProtocolSpec) -> ProtocolSpec:
    """Add one protocol to the registry (called at module import).

    Re-registration under the same name must be the *same* spec
    (idempotent reloads are fine; two protocols claiming one name is
    a bug surfaced immediately).
    """
    existing = _PROTOCOLS.get(spec.name)
    if existing is not None and existing != spec:
        raise ReproError(
            f"protocol {spec.name!r} registered twice with different "
            "specs"
        )
    _PROTOCOLS[spec.name] = spec
    return spec


def register_workload(spec: WorkloadSpec) -> WorkloadSpec:
    """Add one workload family to the registry."""
    existing = _WORKLOADS.get(spec.name)
    if existing is not None and existing != spec:
        raise ReproError(
            f"workload {spec.name!r} registered twice with different "
            "specs"
        )
    _WORKLOADS[spec.name] = spec
    return spec


def _ensure_protocols_loaded() -> None:
    # Registration happens as an import side effect of the protocol
    # modules; importing the package is what fills the table.
    import repro.protocols  # noqa: F401


def _ensure_workloads_loaded() -> None:
    import repro.runtime.workloads  # noqa: F401


def protocol_registry() -> Dict[str, ProtocolSpec]:
    """Name -> :class:`ProtocolSpec` for every registered protocol."""
    _ensure_protocols_loaded()
    return dict(_PROTOCOLS)


def workload_registry() -> Dict[str, WorkloadSpec]:
    """Name -> :class:`WorkloadSpec` for every registered workload."""
    _ensure_workloads_loaded()
    return dict(_WORKLOADS)


def protocol_names() -> Tuple[str, ...]:
    """Sorted names of every registered protocol."""
    return tuple(sorted(protocol_registry()))


def workload_names() -> Tuple[str, ...]:
    """Sorted names of every registered workload."""
    return tuple(sorted(workload_registry()))


def get_protocol(name: str) -> ProtocolSpec:
    """Look a protocol up by name, with a helpful error."""
    registry = protocol_registry()
    try:
        return registry[name]
    except KeyError:
        raise UnknownProtocolError(
            f"unknown protocol {name!r}; registered: "
            f"{', '.join(sorted(registry))}"
        ) from None


def get_workload(name: str) -> WorkloadSpec:
    """Look a workload up by name, with a helpful error."""
    registry = workload_registry()
    try:
        return registry[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown workload {name!r}; registered: "
            f"{', '.join(sorted(registry))}"
        ) from None


def resolve_protocol(protocol) -> ProtocolSpec:
    """Accept a registry name *or* a registered factory callable.

    The callable form keeps pre-runtime call sites (benchmarks that
    import ``msc_cluster`` directly) working while still resolving
    through the registry.
    """
    if isinstance(protocol, str):
        return get_protocol(protocol)
    for spec in protocol_registry().values():
        if spec.factory is protocol:
            return spec
    raise UnknownProtocolError(
        f"{protocol!r} is neither a registered protocol name nor a "
        "registered cluster factory"
    )


def crash_tolerant_protocols() -> Dict[str, ProtocolSpec]:
    """The chaos-eligible subset (capability ``crash_tolerant``)."""
    return {
        name: spec
        for name, spec in protocol_registry().items()
        if spec.capabilities.crash_tolerant
    }


def partition_tolerant_protocols() -> Dict[str, ProtocolSpec]:
    """The partition-chaos subset (capability ``partition_tolerant``)."""
    return {
        name: spec
        for name, spec in protocol_registry().items()
        if spec.capabilities.partition_tolerant
    }
