"""Runtime layer: registries + declarative runs (S34).

One pipeline from a declarative :class:`RunSpec` to a serializable
:class:`RunArtifact`::

    registry (ProtocolSpec / WorkloadSpec)
        -> RunSpec (JSON-round-trippable)
        -> execute(spec)
        -> RunArtifact (history, verdicts, metrics, net stats)

The CLI (``demo``/``trace``/``chaos``/``run``), the chaos harness,
the exploration driver and the benchmark report all resolve protocols
and workloads through this package instead of keeping private tables.
"""

from repro.runtime.execute import (
    FaultPolicyError,
    RunArtifact,
    execute,
    history_hash,
)
from repro.runtime.registry import (
    Capabilities,
    ProtocolSpec,
    UnknownProtocolError,
    UnknownWorkloadError,
    WorkloadSpec,
    crash_tolerant_protocols,
    get_protocol,
    get_workload,
    partition_tolerant_protocols,
    protocol_names,
    protocol_registry,
    register_protocol,
    register_workload,
    resolve_protocol,
    workload_names,
    workload_registry,
)
from repro.runtime.spec import (
    FaultSpec,
    InvalidSpecError,
    LatencySpec,
    RunSpec,
    VerifyPolicy,
)

__all__ = [
    "Capabilities",
    "FaultPolicyError",
    "FaultSpec",
    "InvalidSpecError",
    "LatencySpec",
    "ProtocolSpec",
    "RunArtifact",
    "RunSpec",
    "UnknownProtocolError",
    "UnknownWorkloadError",
    "VerifyPolicy",
    "WorkloadSpec",
    "crash_tolerant_protocols",
    "execute",
    "get_protocol",
    "get_workload",
    "history_hash",
    "partition_tolerant_protocols",
    "protocol_names",
    "protocol_registry",
    "register_protocol",
    "register_workload",
    "resolve_protocol",
    "workload_names",
    "workload_registry",
]
