"""The Figure-4 protocol: m-sequential consistency (Section 5.1).

Three actions, each local and atomic:

* **(A1)** On invocation of an m-operation that potentially writes
  (``may_write``), atomically broadcast it to all processes.
* **(A2)** On delivery of an atomic broadcast, apply the m-operation
  to the local copy (bumping ``ts[x]`` for every written ``x``); if
  this process issued it, generate the response.
* **(A3)** On invocation of a query m-operation, apply it to the
  local copy immediately and respond.

Theorem 15 proves every execution of this protocol m-sequentially
consistent; experiment T15 checks that claim over randomized runs.
The protocol is *not* m-linearizable: a query reads its local replica,
which may not yet reflect an update whose response was already
generated elsewhere (the benchmark ``test_fig5_scenario.py`` exhibits
exactly the stale read that Figure 5 illustrates).

Response-time shape (experiment A2, mirroring Attiya–Welch): queries
cost only the local delay; updates pay the atomic-broadcast latency.
This is the classic "fast reads, slow writes" sequentially consistent
implementation, generalised to multi-object operations.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ProtocolError
from repro.obs import get_tracer
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.runtime.registry import Capabilities, ProtocolSpec, register_protocol


class MSCProcess(BaseProcess):
    """One participant in the Figure-4 protocol."""

    def on_invoke(self, pending: PendingOp) -> None:
        tracer = get_tracer()
        if pending.program.may_write:
            # (A1): atomically broadcast the update.
            abcast = self.cluster.abcast
            if abcast is None:
                raise ProtocolError(
                    "the Fig-4 protocol requires an atomic-broadcast layer"
                )
            if tracer.enabled:
                tracer.event(
                    "proto.abcast", uid=pending.uid, process=self.pid
                )
            abcast.broadcast(
                self.pid,
                {"uid": pending.uid, "program": pending.program},
            )
        else:
            # (A3): queries execute against the local copy at once.
            with tracer.span(
                "msc.query.local", uid=pending.uid, process=self.pid
            ):
                record = self.store.execute(pending.program, pending.uid)
            self.respond(pending, record)

    def on_abcast_deliver(self, sender: int, payload: Dict[str, Any]) -> None:
        # (A2): apply to the local copy; respond if we issued it.
        self._apply_update_delivery(sender, payload)


def msc_cluster(
    n: int,
    objects,
    **kwargs,
) -> Cluster:
    """Build a Figure-4 (m-sequentially consistent) cluster.

    Accepts every :class:`~repro.protocols.base.Cluster` keyword.
    """
    return make_cluster(MSCProcess, n, objects, **kwargs)


register_protocol(
    ProtocolSpec(
        name="msc",
        factory=msc_cluster,
        condition="m-sc",
        summary="Figure-4 protocol: broadcast updates, local queries",
        capabilities=Capabilities(
            crash_tolerant=True,
            partition_tolerant=True,
            certificate_eligible=True,
        ),
    )
)
