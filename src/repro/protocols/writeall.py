"""Write-all replication: correct only for disciplined programs.

Section 4's alternate discipline puts "the onus of enforcing these
constraints ... with the programmer": if program executions are data
race free (DRF) or concurrent write free (CWF), the *system* can skip
the global synchronization that the Section-5 protocols pay for.
This protocol is the system half of that bargain:

* an update executes locally, ships its effects to every replica
  (plain unordered messages — **no atomic broadcast, no total
  order**), and responds once all replicas acknowledge;
* a query reads the local replica, free.

The response-after-all-acks rule makes every update *globally
visible* by its response — so whenever the program keeps conflicting
m-operations from overlapping (DRF), conflicting effects land
everywhere in their real-time order and executions are
m-linearizable.  When the programmer breaks the discipline —
overlapping writes to the same object — replicas may apply them in
different orders and stay permanently split-brained: the checkers
catch it, and experiment DR quantifies how often.

Costs vs. the Fig-4 protocol: the same ~2 message delays per update
(one-way + ack, no sequencer detour), ``2(n-1)`` messages, local
queries — the performance the paper says weaker guarantees buy.

Effects (values), not programs, travel on the wire: without a total
order, re-execution on a diverged replica is not deterministic (same
reasoning as :mod:`repro.protocols.causal`).
"""

from __future__ import annotations

from typing import Any

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.runtime.registry import (
    Capabilities,
    ProtocolSpec,
    register_protocol,
)
from repro.sim.network import Message

APPLY = "wa-apply"
ACK = "wa-ack"


class WriteAllProcess(BaseProcess):
    """One replica of the write-all protocol."""

    def on_invoke(self, pending: PendingOp) -> None:
        record = self.store.execute(pending.program, pending.uid)
        if not record.wobjects or self.cluster.n == 1:
            self.respond(pending, record)
            return
        pending.extra["record"] = record
        pending.extra["awaiting"] = self.cluster.n - 1
        writes = {
            obj: self.store.value_of(obj) for obj in record.wobjects
        }
        self.cluster.network.send_to_all(
            self.pid,
            Message(APPLY, {"uid": pending.uid, "writes": writes}),
            include_self=False,
        )

    def handle_message(self, src: int, message: Message) -> None:
        if message.kind == APPLY:
            body = message.payload
            self.store.apply_writes(body["writes"], body["uid"])
            self.cluster.network.send(
                self.pid, src, Message(ACK, {"uid": body["uid"]})
            )
        elif message.kind == ACK:
            pending = self._pending
            if pending is None or pending.uid != message.payload["uid"]:
                raise ProtocolError(
                    f"P{self.pid}: stray write-all ack for uid "
                    f"{message.payload['uid']}"
                )
            pending.extra["awaiting"] -= 1
            if pending.extra["awaiting"] == 0:
                self.respond(pending, pending.extra["record"])
        else:
            super().handle_message(src, message)

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise ProtocolError(
            "the write-all protocol does not use atomic broadcast"
        )


def writeall_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build a write-all cluster (correct for DRF/CWF programs only)."""
    return make_cluster(
        WriteAllProcess, n, objects, uses_abcast=False, **kwargs
    )


register_protocol(
    ProtocolSpec(
        name="writeall",
        factory=writeall_cluster,
        condition=None,
        summary="write-all-read-local (sound for DRF/CWF programs only)",
        # A cut only delays the write-all acknowledgments: the
        # reliable shim carries them across at heal time, so the
        # protocol blocks through a partition rather than diverging.
        # No crash tolerance, so it is eligible for crash-free
        # partition plans only.
        capabilities=Capabilities(partition_tolerant=True),
        uses_abcast=False,
    )
)
