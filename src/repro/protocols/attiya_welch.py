"""The Attiya-Welch-style linearizable DSM (comparison baseline).

Section 1: "Attiya and Welch provide sequentially consistent and
linearizable implementations ... But their implementation for
linearizability assumes that clocks are perfectly synchronized and
there is an upper bound on the delay of the message.  ...  More
importantly, we provide an algorithm for implementation of
m-linearizability in an asynchronous distributed system which does
not make any assumptions about clock synchronization or the message
delay."

To measure that contrast rather than assert it, this module implements
the clock-based design the paper is comparing against, generalised to
m-operations:

* perfectly synchronized clocks — granted for free by the simulator
  (every process reads the same virtual ``now``);
* an assumed message-delay upper bound ``delta``;
* an **update** invoked at time ``T`` is multicast with timestamp
  ``T`` and takes effect at every replica at exactly ``T + delta``
  (ties broken by ``(T, pid, uid)``); the issuer responds at
  ``T + delta``;
* a **query** executes on the local replica immediately — *zero*
  latency, the headline advantage clock assumptions buy (the Fig-6
  protocol pays a full gather round trip for the same guarantee).

When every message really arrives within ``delta``, all replicas
apply every update at the same instant inside its invocation/response
window, and executions are m-linearizable.  When the network violates
the bound — a heavy-tailed latency model, or simply a too-optimistic
``delta`` — late updates are applied on arrival, replicas transiently
diverge, and m-linearizability (and even m-sequential consistency)
breaks: the run result counts ``late_applies`` and the checkers catch
the violations.  The Fig-6 protocol on identical networks keeps its
guarantee (experiment AW).
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.protocols.store import MProgram
from repro.runtime.registry import ProtocolSpec, register_protocol
from repro.sim.network import Message

UPDATE = "aw-update"

#: Total order on updates: (send time, sender pid, uid).
Stamp = Tuple[float, int, int]


class AWProcess(BaseProcess):
    """One replica of the clock-based protocol."""

    def __init__(self, pid: int, cluster: "AWCluster") -> None:
        super().__init__(pid, cluster)
        # Updates waiting for their effect time, as a heap of
        # (stamp, program, uid).
        self._pending_updates: List[Tuple[Stamp, MProgram]] = []
        #: updates that arrived after their scheduled effect time.
        self.late_applies = 0

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def on_invoke(self, pending: PendingOp) -> None:
        cluster: "AWCluster" = self.cluster  # type: ignore[assignment]
        if not pending.program.may_write:
            record = self.store.execute(pending.program, pending.uid)
            self.respond(pending, record)
            return
        now = cluster.sim.now
        stamp: Stamp = (now, self.pid, pending.uid)
        # Enqueue the local copy before the broadcast: once the
        # update is on the wire a peer may act on it, so this
        # process's own state must already reflect it (the
        # handler-atomicity discipline; in the cooperative kernel the
        # two orders are equivalent, but only this one survives a
        # preemptive scheduler).
        self._enqueue(stamp, pending.program)
        cluster.network.send_to_all(
            self.pid,
            Message(
                UPDATE,
                {"stamp": stamp, "program": pending.program},
            ),
            include_self=False,
        )
        # Respond exactly at the effect time T + delta.
        delay = cluster.delta
        cluster.sim.schedule(
            delay, lambda: self._respond_update(pending)
        )

    def _respond_update(self, pending: PendingOp) -> None:
        # The local apply fires at the same instant (scheduled by
        # _enqueue); simulator FIFO ties guarantee it ran first, so
        # the record is ready.
        record = pending.extra.get("record")
        if record is None:  # pragma: no cover - scheduling invariant
            raise ProtocolError(
                f"P{self.pid}: update {pending.uid} response fired "
                "before its local apply"
            )
        self.respond(pending, record)

    # ------------------------------------------------------------------
    # Replication
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: Message) -> None:
        if message.kind != UPDATE:
            super().handle_message(src, message)
            return
        stamp: Stamp = tuple(message.payload["stamp"])  # type: ignore
        self._enqueue(stamp, message.payload["program"])

    def _enqueue(self, stamp: Stamp, program: MProgram) -> None:
        cluster: "AWCluster" = self.cluster  # type: ignore[assignment]
        heapq.heappush(self._pending_updates, (stamp, program))
        effect_time = stamp[0] + cluster.delta
        if cluster.sim.now >= effect_time:
            # The delay-bound assumption was violated: apply on
            # arrival (best effort) and record the breach.
            self.late_applies += 1
            self._apply_due(cluster.sim.now)
        else:
            cluster.sim.schedule(
                effect_time - cluster.sim.now,
                lambda: self._apply_due(effect_time),
            )

    def _apply_due(self, up_to: float) -> None:
        cluster: "AWCluster" = self.cluster  # type: ignore[assignment]
        while (
            self._pending_updates
            and self._pending_updates[0][0][0] + cluster.delta <= up_to
        ):
            stamp, program = heapq.heappop(self._pending_updates)
            _t, sender, uid = stamp
            record = self.store.execute(program, uid)
            if sender == self.pid and self._pending is not None and (
                self._pending.uid == uid
            ):
                self._pending.extra["record"] = record

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise ProtocolError(
            "the Attiya-Welch baseline does not use the abcast layer"
        )


class AWCluster(Cluster):
    """A cluster running the clock-based protocol with bound ``delta``."""

    def __init__(self, *args, delta: float = 2.0, **kwargs):
        kwargs.setdefault("process_class", AWProcess)
        super().__init__(*args, **kwargs)
        if delta <= 0:
            raise ProtocolError("delta must be positive")
        self.delta = delta

    def total_late_applies(self) -> int:
        """Delay-bound violations observed across all replicas."""
        return sum(
            proc.late_applies
            for proc in self.processes
            if isinstance(proc, AWProcess)
        )


def aw_cluster(n: int, objects, *, delta: float = 2.0, **kwargs) -> AWCluster:
    """Build an Attiya-Welch-style cluster.

    Args:
        n: number of replicas.
        objects: shared object names.
        delta: the assumed message-delay upper bound.  Correctness
            holds iff the latency model respects it.
        **kwargs: any :class:`~repro.protocols.base.Cluster` keyword.
    """
    return make_cluster(
        AWProcess,
        n,
        objects,
        cluster_class=AWCluster,
        uses_abcast=False,
        delta=delta,
        **kwargs,
    )


register_protocol(
    ProtocolSpec(
        name="aw",
        factory=aw_cluster,
        condition="m-sc",
        summary="Attiya-Welch clocks: fast writes, delta-delayed applies",
        uses_abcast=False,
        options=("delta",),
    )
)
