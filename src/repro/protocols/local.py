"""Negative control: eager local writes with unordered gossip.

This protocol deliberately drops the one ingredient the Section-5
protocols rely on — the *total order* on update m-operations — to show
that the checkers actually catch inconsistency:

* an update executes immediately on the issuer's replica and responds;
* the update is then gossiped to the other replicas as plain
  (unordered, reordering-prone) point-to-point messages, each of which
  applies it on arrival;
* a query reads the local replica.

Two concurrent updates can therefore be applied in different orders
at different replicas, and queries can observe write orders that no
single legal sequential history explains.  Runs of this protocol are
frequently **not** m-sequentially consistent; the test suite asserts
that violations occur (and that the exact checker flags them) on
seeds where replicas genuinely diverge.

The recorded reads-from relation remains exact: each replica tracks
which m-operation last wrote each of *its* copies, and reads are
attributed against the replica they executed on.

Workload caveat: use *blind-write* programs (writes of constants)
with this control.  A value-dependent program (e.g. a read-modify-
write transfer) re-executed on a diverged replica writes a different
value there, and the resulting observations cannot be expressed as a
history at all (a read would return a value no recorded write ever
wrote) — :meth:`History.from_mops` rejects such runs, which is itself
evidence of inconsistency, but the interesting checkable cases come
from blind writes.
"""

from __future__ import annotations

from typing import Any

from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.protocols.store import MProgram
from repro.runtime.registry import ProtocolSpec, register_protocol
from repro.sim.network import Message

GOSSIP = "gossip"


class LocalProcess(BaseProcess):
    """Applies updates locally first, then gossips them unordered."""

    def on_invoke(self, pending: PendingOp) -> None:
        record = self.store.execute(pending.program, pending.uid)
        if pending.program.may_write:
            self.cluster.network.send_to_all(
                self.pid,
                Message(
                    GOSSIP,
                    {"uid": pending.uid, "program": pending.program},
                ),
                include_self=False,
            )
        self.respond(pending, record)

    def handle_message(self, src: int, message: Message) -> None:
        if message.kind == GOSSIP:
            uid = message.payload["uid"]
            program: MProgram = message.payload["program"]
            self.store.execute(program, uid)
        else:
            super().handle_message(src, message)

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise NotImplementedError(
            "the local-gossip control never uses atomic broadcast"
        )


def local_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build the (inconsistent) local-gossip control cluster."""
    return make_cluster(LocalProcess, n, objects, uses_abcast=False, **kwargs)


register_protocol(
    ProtocolSpec(
        name="local",
        factory=local_cluster,
        condition=None,
        summary="negative control: apply locally, gossip unordered",
        uses_abcast=False,
    )
)
