"""Shared scaffolding for the replicated-DSM protocols (Section 5).

A :class:`Cluster` wires together the simulator, the network, an
atomic-broadcast implementation and one :class:`BaseProcess` per
participant, then drives per-process *workloads* (sequences of
:class:`~repro.protocols.store.MProgram`) through the protocol under
test.  Processes are sequential, as the model requires: each issues
its next m-operation only after receiving the response of the
previous one (well-formedness, Section 2.2).

Protocol subclasses implement two hooks:

* :meth:`BaseProcess.on_invoke` — what happens when the client issues
  an m-operation (classify update vs. query conservatively via
  ``MProgram.may_write`` and start the protocol's actions).
* :meth:`BaseProcess.handle_message` — protocol-specific messages
  (e.g. the Fig-6 "query"/"query response").

Atomic-broadcast traffic is routed to the abcast layer transparently.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Type

from repro.abcast.interface import AtomicBroadcast
from repro.abcast.sequencer import SequencerAbcast
from repro.core.history import History
from repro.errors import ProcessCrashed, ProtocolError, SimulationError
from repro.obs import get_tracer
from repro.protocols.recorder import HistoryRecorder, OpRecord
from repro.protocols.store import ExecutionRecord, MProgram, VersionedStore
from repro.sim.detector import HEARTBEAT_KIND, HeartbeatDetector
from repro.sim.kernel import Simulator
from repro.sim.latency import LatencyModel, UniformLatency
from repro.sim.network import ChannelStats, Message, Network

#: A workload: one program sequence per process.
Workloads = Sequence[Sequence[MProgram]]

#: Wire kinds of the peer-snapshot recovery exchange.
SNAP_REQ = "snap-req"
SNAP_RESP = "snap-resp"


@dataclass
class PendingOp:
    """Book-keeping for an m-operation between invocation and response."""

    uid: int
    program: MProgram
    inv: float
    extra: Dict[str, Any] = field(default_factory=dict)
    #: Open tracing span covering invocation → response (None when no
    #: tracer is installed); ended by :meth:`BaseProcess.respond`.
    span: Optional[Any] = None


class BaseProcess:
    """One participant: a sequential client plus its replica state."""

    #: The protocol answers *queries* from abcast deliveries too (the
    #: aggregate-object baseline broadcasts everything); recovery then
    #: treats an unanswered query like an unanswered update.
    abcast_answers_queries = False

    def __init__(self, pid: int, cluster: "Cluster") -> None:
        self.pid = pid
        self.cluster = cluster
        self.store = VersionedStore(cluster.initial_values)
        self._programs: List[MProgram] = []
        self._next_program = 0
        self._pending: Optional[PendingOp] = None
        #: True while the replica is down (between crash and recover).
        self.crashed = False
        #: uids this process has generated responses for — client-side
        #: knowledge, so it survives replica crashes and lets replayed
        #: own-update deliveries be recognised as already answered.
        self._responded_uids: set = set()
        #: An invocation came due while the process was down.
        self._issue_deferred = False
        self._awaiting_snapshot = False

    # ------------------------------------------------------------------
    # Client side: sequential issue loop
    # ------------------------------------------------------------------

    def load(self, programs: Sequence[MProgram]) -> None:
        """Install this process's workload."""
        self._programs = list(programs)
        self._next_program = 0

    def start(self) -> None:
        """Schedule the first invocation (with per-process jitter)."""
        delay = self.cluster.rng.uniform(0.0, self.cluster.start_jitter)
        self.cluster.sim.schedule(delay, self._issue_next)

    def _issue_next(self) -> None:
        if self.crashed:
            # The client's next request waits out the downtime and is
            # re-driven by recovery.
            self._issue_deferred = True
            return
        if self._pending is not None:
            raise ProtocolError(
                f"P{self.pid} issued an m-operation while one is pending"
            )
        if self._next_program >= len(self._programs):
            return
        program = self._programs[self._next_program]
        self._next_program += 1
        uid = self.cluster.next_uid()
        inv = self.cluster.sim.now
        self._pending = PendingOp(uid=uid, program=program, inv=inv)
        tracer = get_tracer()
        if tracer.enabled:
            # The operation's issue → abcast → apply → respond arc
            # crosses simulator events, so the span is unscoped and
            # ended by respond().
            self._pending.span = tracer.begin(
                "op.update" if program.may_write else "op.query",
                uid=uid,
                process=self.pid,
                program=program.name,
            )
        self.cluster.recorder.begin(uid, inv, program.name)
        self.on_invoke(self._pending)

    def respond(self, pending: PendingOp, record: ExecutionRecord) -> None:
        """Generate the response event for the pending m-operation."""
        if self._pending is None or self._pending.uid != pending.uid:
            raise ProtocolError(
                f"P{self.pid}: response for {pending.uid} but pending is "
                f"{self._pending.uid if self._pending else None}"
            )
        resp = self.cluster.sim.now
        if not resp > pending.inv:
            # Zero-latency local actions still consume local processing
            # time; keep real-time order sound by nudging the response.
            resp = pending.inv + self.cluster.local_delay
        self.cluster.recorder.complete(
            OpRecord(
                uid=pending.uid,
                process=self.pid,
                name=pending.program.name,
                inv=pending.inv,
                resp=resp,
                ops=record.ops,
                reads_from=dict(record.reads_from),
                result=record.result,
                is_update=pending.program.may_write,
            )
        )
        if self.cluster.monitor is not None:
            from repro.core.monitor import ObservedOp

            self.cluster.monitor.complete(
                ObservedOp(
                    uid=pending.uid,
                    process=self.pid,
                    inv=pending.inv,
                    resp=resp,
                    reads_from=dict(record.reads_from),
                    writes=tuple(
                        op.obj for op in record.ops if op.is_write
                    ),
                    is_update=pending.program.may_write,
                ),
                now=self.cluster.sim.now,
            )
        if pending.span is not None:
            pending.span.end(resp=resp)
            pending.span = None
        self._responded_uids.add(pending.uid)
        self._pending = None
        # Schedule the next invocation strictly after the (possibly
        # clamped) response time, preserving well-formedness even when
        # the think time is zero or smaller than the clamp.
        delay = (
            (resp - self.cluster.sim.now)
            + max(self.cluster.think_time(), self.cluster.local_delay)
        )
        self.cluster.sim.schedule(delay, self._issue_next)

    @property
    def done(self) -> bool:
        """True iff the workload is exhausted and nothing is pending."""
        return self._pending is None and self._next_program >= len(
            self._programs
        )

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Lose all volatile replica state (store, protocol buffers).

        The *client's* pending request is not replica state: it
        survives and is re-driven on recovery, so a crash can delay an
        m-operation's response but never orphan it.
        """
        if self.crashed:
            raise ProcessCrashed(f"P{self.pid} crashed twice")
        self.crashed = True
        self._awaiting_snapshot = False
        self.store.reset()

    def recover(self) -> None:
        """Rejoin after a restart, rebuilding the replica.

        ``cluster.recovery`` selects the strategy: ``"replay"``
        re-delivers the atomic-broadcast log from the start onto the
        wiped store; ``"snapshot"`` installs a live peer's exported
        state and resumes delivery from its cursor (the abcast layer
        fills the tail).
        """
        if not self.crashed:
            raise ProcessCrashed(f"P{self.pid} recovered while up")
        self.crashed = False
        abcast = self.cluster.abcast
        if abcast is None:
            self._resume_client()
            return
        # An unresponded broadcast operation forces replay recovery
        # even in snapshot mode: its response can only be generated by
        # (re)delivering it, and a snapshot whose cursor lies past the
        # operation's slot folds it into adopted state silently — the
        # client would wait forever.  Updates always ride the abcast;
        # protocols that broadcast queries too (the aggregate-object
        # baseline) set ``abcast_answers_queries``.
        unanswered_update = (
            self._pending is not None
            and (
                self._pending.program.may_write
                or self.abcast_answers_queries
            )
            and self._pending.uid not in self._responded_uids
        )
        if (
            self.cluster.recovery == "snapshot"
            and self.cluster.n > 1
            and not unanswered_update
        ):
            peer = self._pick_snapshot_peer()
            if peer is not None:
                abcast.suspend(self.pid)
                self._awaiting_snapshot = True
                self.cluster.network.send(
                    self.pid, peer, Message(SNAP_REQ, {"pid": self.pid})
                )
                return
        # The client resumes only once the replay catches up to the
        # sequencer's log: a local query answered from the
        # half-replayed store could read values older than ones this
        # process's earlier responses already exposed (an illegal
        # triple under any condition with a total update order).
        abcast.recover(
            self.pid, cursor=0, on_caught_up=self._resume_client
        )

    def _pick_snapshot_peer(self) -> Optional[int]:
        """Deterministic donor choice: the lowest live peer."""
        down = self.cluster.network.down
        for pid in range(self.cluster.n):
            if pid != self.pid and pid not in down:
                return pid
        return None  # pragma: no cover - all peers down; fall back

    def _resume_client(self) -> None:
        """Re-drive the surviving client request and the issue loop."""
        pending = self._pending
        if pending is not None and pending.uid not in self._responded_uids:
            self.on_recover_pending(pending)
        if self._issue_deferred:
            self._issue_deferred = False
            self.cluster.sim.schedule(
                self.cluster.local_delay, self._issue_next
            )

    def on_recover_pending(self, pending: PendingOp) -> None:
        """Protocol hook: re-drive the m-operation open at crash time.

        Default: nothing — an update's broadcast is retried by the
        abcast layer itself and the response fires when the replayed
        delivery reaches this process.  Protocols whose queries span
        events (Fig-6) override this to restart the gather.
        """

    def _apply_update_delivery(
        self, sender: int, payload: Dict[str, Any]
    ) -> None:
        """Shared action (A2): apply a delivered update, respond if ours.

        Tolerant of recovery replay: a re-delivered own update that
        was already answered is applied to the store (rebuilding the
        replica) without generating a second response.
        """
        uid: int = payload["uid"]
        program: MProgram = payload["program"]
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "proto.apply", uid=uid, process=self.pid, sender=sender
            )
        record = self.store.execute(program, uid)
        if sender != self.pid:
            return
        pending = self._pending
        if pending is not None and pending.uid == uid:
            self.respond(pending, record)
            return
        if uid in self._responded_uids:
            return  # recovery replay of an already-answered update
        raise ProtocolError(
            f"P{self.pid}: delivery of own update {uid} but no "
            "matching pending m-operation"
        )

    # ------------------------------------------------------------------
    # Network plumbing
    # ------------------------------------------------------------------

    def on_network(self, src: int, message: Message) -> None:
        """Route an incoming message to the detector, abcast or protocol."""
        if message.kind == HEARTBEAT_KIND:
            detector = self.cluster.detector
            if detector is not None:
                detector.on_heartbeat(self.pid, src)
            return
        abcast = self.cluster.abcast
        if abcast is not None and abcast.handles(message.kind):
            abcast.handle(self.pid, src, message)
        else:
            self.handle_message(src, message)

    # ------------------------------------------------------------------
    # Protocol hooks
    # ------------------------------------------------------------------

    def on_invoke(self, pending: PendingOp) -> None:
        """Start the protocol's actions for a newly issued m-operation."""
        raise NotImplementedError

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        """Atomic-broadcast delivery (total order across processes)."""
        raise NotImplementedError

    def handle_message(self, src: int, message: Message) -> None:
        """Protocol-specific point-to-point message.

        The base class owns the peer-snapshot recovery exchange; every
        protocol inherits it by delegating unknown kinds here.
        """
        if message.kind == SNAP_REQ:
            abcast = self.cluster.abcast
            reply = {
                "snapshot": self.store.export(),
                "cursor": abcast.cursor(self.pid),
                "log": abcast.retained_log(self.pid),
            }
            self.cluster.network.send(
                self.pid, src, Message(SNAP_RESP, reply)
            )
            return
        if message.kind == SNAP_RESP:
            if not self._awaiting_snapshot:
                return  # late duplicate after recovery completed
            self._awaiting_snapshot = False
            body = message.payload
            self.store.install(body["snapshot"])
            abcast = self.cluster.abcast
            abcast.install_snapshot(self.pid, body["cursor"], body["log"])
            # Same client gate as replay recovery: the donor's cursor
            # may trail this process's own pre-crash deliveries, so
            # the adopted state alone is not safe to answer from.
            abcast.recover(
                self.pid,
                cursor=body["cursor"],
                on_caught_up=self._resume_client,
            )
            return
        raise ProtocolError(
            f"P{self.pid}: unexpected message kind {message.kind!r}"
        )


@dataclass
class RunResult:
    """Everything measured in one protocol run.

    Attributes:
        history: the recorded execution as a checkable history.
        recorder: the raw per-m-operation records.
        net_stats: message counts/sizes from the network layer.
        duration: virtual time when the run completed.
        abcast_violation: non-None iff the abcast layer's delivery
            logs violated total order/integrity (should never happen;
            asserted by tests).
        ww_sequence: uids of broadcast m-operations in atomic-
            broadcast delivery order — the implementation-level
            ``~ww`` order (D 5.3).  Feeding these as ``extra_pairs``
            into the checkers makes the recorded base order satisfy
            the WW-constraint, unlocking the polynomial Theorem-7
            verification path for arbitrarily large runs.
    """

    history: History
    recorder: HistoryRecorder
    net_stats: ChannelStats
    duration: float
    abcast_violation: Optional[str]
    ww_sequence: List[int] = field(default_factory=list)

    def ww_pairs(self) -> List[tuple]:
        """``~ww`` as explicit pairs (successive deliveries chained)."""
        return [
            (a, b)
            for a, b in zip(self.ww_sequence, self.ww_sequence[1:])
        ]

    def latencies(self, *, updates: Optional[bool] = None) -> List[float]:
        """Response times, optionally filtered to updates/queries.

        Args:
            updates: None = all m-operations; True = updates only
                (conservative classification); False = queries only.
        """
        return [
            rec.resp - rec.inv
            for rec in self.recorder.records
            if updates is None or rec.is_update == updates
        ]

    def results_by_uid(self) -> Dict[int, Any]:
        """uid -> program return value."""
        return {rec.uid: rec.result for rec in self.recorder.records}


class Cluster:
    """A simulated deployment of one replication protocol.

    Args:
        n: number of processes/replicas.
        objects: the shared object names.
        initial_values: per-object initial values (default 0 for all,
            the paper's convention).
        latency: message-delay model (default Uniform[0.5, 1.5] —
            non-FIFO reordering happens naturally).
        seed: seed for all randomness (latencies, jitter, think time).
        abcast_factory: builds the atomic-broadcast layer; default
            fixed sequencer at pid 0.  Pass None for protocols that do
            not use atomic broadcast.
        local_delay: virtual cost of a purely local m-operation.
        think_jitter: upper bound of the uniform think time between a
            response and the next invocation.
        start_jitter: upper bound of the initial per-process stagger.
    """

    def __init__(
        self,
        n: int,
        objects: Sequence[str],
        *,
        process_class: Type[BaseProcess],
        initial_values: Optional[Mapping[str, Any]] = None,
        latency: Optional[LatencyModel] = None,
        seed: int = 0,
        abcast_factory: Optional[
            Callable[[Network], AtomicBroadcast]
        ] = SequencerAbcast,
        local_delay: float = 1e-3,
        think_jitter: float = 0.2,
        start_jitter: float = 0.5,
        think_fn: Optional[Callable[[random.Random], float]] = None,
        network_factory: Optional[
            Callable[[Simulator, int], Network]
        ] = None,
        monitor=None,
        live_index=None,
        fault_tolerant: bool = False,
        recovery: str = "replay",
        query_retry: float = 6.0,
    ) -> None:
        if n <= 0:
            raise SimulationError("cluster needs at least one process")
        if not objects:
            raise SimulationError("cluster needs at least one shared object")
        self.n = n
        self.objects: Tuple[str, ...] = tuple(sorted(objects))
        values = {obj: 0 for obj in self.objects}
        if initial_values:
            values.update(initial_values)
        self.initial_values: Dict[str, Any] = values
        self.local_delay = local_delay
        self.think_jitter = think_jitter
        self.start_jitter = start_jitter
        self.think_fn = think_fn
        #: optional live verifier (repro.core.monitor.LiveMonitor);
        #: fed broadcast deliveries and completions as they happen.
        self.monitor = monitor
        #: optional repro.core.index.LiveIndex; fed the same stream
        #: through the recorder (completions) and _deliver
        #: (announcements), maintaining an incrementally closed order
        #: for cheap mid-run audits.
        self.live_index = live_index
        #: enables the crash/recovery surface (crash_process et al.)
        #: and the protocols' retry paths.
        self.fault_tolerant = fault_tolerant
        if recovery not in ("replay", "snapshot"):
            raise SimulationError(
                f"unknown recovery mode {recovery!r}; expected 'replay' "
                "or 'snapshot'"
            )
        self.recovery = recovery
        #: Fig-6 gather retry interval under fault tolerance.
        self.query_retry = query_retry
        self.rng = random.Random(seed)

        self.sim = Simulator()
        if network_factory is not None:
            self.network = network_factory(self.sim, n)
        else:
            self.network = Network(
                self.sim,
                n,
                latency=latency or UniformLatency(0.5, 1.5),
                seed=seed + 1,
            )
        self.abcast: Optional[AtomicBroadcast] = (
            abcast_factory(self.network) if abcast_factory else None
        )
        self.recorder = HistoryRecorder(live_index=live_index)
        self._uid_counter = itertools.count(1)
        #: uids of broadcast m-operations in delivery order — the
        #: ``~ww`` synchronization order of D 5.3/D 5.8 (identical at
        #: every replica by total order; captured at pid 0).
        self.ww_sequence: List[int] = []
        self.processes: List[BaseProcess] = []
        for pid in range(n):
            proc = process_class(pid, self)
            self.processes.append(proc)
            self.network.register(pid, proc.on_network)
            if self.abcast is not None:
                self.abcast.attach(
                    pid,
                    lambda sender, payload, _pid=pid: self._deliver(
                        _pid, sender, payload
                    ),
                )
        #: Optional heartbeat failure detector (see
        #: :meth:`attach_detector`); heartbeat frames are routed to it
        #: by :meth:`BaseProcess.on_network`, never to the protocol.
        self.detector: Optional[HeartbeatDetector] = None
        self._ran = False
        #: uids already recorded in ``ww_sequence`` (recovery replay
        #: re-delivers them at pid 0; they must not be re-announced).
        self._announced: set = set()

    def attach_detector(self, detector: HeartbeatDetector) -> None:
        """Arm a heartbeat failure detector for this cluster.

        Routes incoming heartbeats to it and wires its stop predicate
        to "every workload is done" — a detector that kept beating
        would hold the event queue open and the run would never
        quiesce.
        """
        if self.detector is not None:
            raise ProtocolError("cluster already has a detector attached")
        self.detector = detector
        if detector.should_stop is None:
            detector.should_stop = lambda: all(
                proc.done for proc in self.processes
            )
        detector.start()

    def _deliver(self, pid: int, sender: int, payload) -> None:
        # Record the broadcast order at each uid's *first* delivery,
        # whichever process that lands on: total order makes every
        # process's delivery stream an extension of the same global
        # sequence, so first-seen across processes reconstructs it
        # even when individual replicas crash, replay (duplicates are
        # filtered here) or skip their prefix via a peer snapshot.
        track = (
            isinstance(payload, dict)
            and "uid" in payload
            and payload["uid"] not in self._announced
        )
        if track:
            self._announced.add(payload["uid"])
            self.ww_sequence.append(payload["uid"])
        self.processes[pid].on_abcast_deliver(sender, payload)
        if track:
            self._notify_announce(payload["uid"], pid)

    def _notify_announce(self, uid: int, pid: int) -> None:
        """Feed one synchronization-order entry to the live verifiers.

        Must run *after* process ``pid`` applied ``uid`` — the write
        set is read back from its store.
        """
        if self.monitor is None and self.live_index is None:
            return
        store = self.processes[pid].store
        writes = tuple(
            obj for obj in store.objects if store.writer_of(obj) == uid
        )
        if self.monitor is not None:
            self.monitor.announce(uid, writes)
        if self.live_index is not None:
            self.live_index.announce(uid, writes)

    def announce_sync(self, uid: int, pid: int) -> None:
        """Record ``uid`` in the ``~ww`` sequence outside the abcast path.

        Protocols that serialize updates through something other than
        atomic broadcast (the single-server baseline's arrival order)
        call this at execution time so their runs still expose the
        total synchronization order the Theorem-7 fast path and the
        live verifiers key on.  Idempotent across recovery replays.
        """
        if uid in self._announced:
            return
        self._announced.add(uid)
        self.ww_sequence.append(uid)
        self._notify_announce(uid, pid)

    # ------------------------------------------------------------------
    # Cluster services used by processes
    # ------------------------------------------------------------------

    def next_uid(self) -> int:
        """Allocate a cluster-wide unique m-operation uid (> 0)."""
        return next(self._uid_counter)

    def think_time(self) -> float:
        """Think time between a response and the next invocation.

        Uses ``think_fn`` when supplied (scenario scripting needs
        deterministic spacing), else uniform jitter.
        """
        if self.think_fn is not None:
            return self.think_fn(self.rng)
        if self.think_jitter <= 0:
            return 0.0
        return self.rng.uniform(0.0, self.think_jitter)

    # ------------------------------------------------------------------
    # Fault injection surface (used by repro.sim.faults / sim.chaos)
    # ------------------------------------------------------------------

    def crash_process(self, pid: int) -> None:
        """Crash process ``pid``: replica state and in-flight timers die.

        Requires ``fault_tolerant=True`` — the protocols' recovery
        paths (delivery dedup, request retry, gather restart) are only
        armed then, and crashing a cluster without them would just
        wedge the run.
        """
        if not self.fault_tolerant:
            raise SimulationError(
                "crash injection requires Cluster(fault_tolerant=True)"
            )
        self.processes[pid].crash()
        self.network.crash(pid)
        if self.abcast is not None:
            self.abcast.on_crash(pid)

    def restart_process(self, pid: int) -> None:
        """Restart a crashed process and run its recovery protocol."""
        self.network.restore(pid)
        self.processes[pid].recover()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(
        self,
        workloads: Workloads,
        *,
        max_events: int = 5_000_000,
        settle: float = 0.0,
    ) -> RunResult:
        """Run the workloads to completion and record the history.

        Args:
            workloads: one program sequence per process (shorter than
                ``n`` is allowed; missing entries are empty).
            max_events: hard simulator-event budget (guards against
                protocol livelock).
            settle: extra virtual time to run after all m-operations
                complete, letting in-flight replication traffic land
                (useful when asserting replica convergence).

        Returns:
            A :class:`RunResult` with the recorded history.
        """
        self.prepare(workloads)
        self.sim.run(max_events=max_events)
        if settle > 0:
            self.sim.run(until=self.sim.now + settle, max_events=max_events)
        return self.finalize(max_events=max_events)

    def prepare(self, workloads: Workloads) -> None:
        """Load workloads and schedule the first invocations.

        Split out of :meth:`run` so that exploration drivers
        (:mod:`repro.sim.explore`) can interleave message deliveries
        manually between quiescence points.
        """
        if self._ran:
            raise SimulationError("a Cluster instance is single-use")
        self._ran = True
        if len(workloads) > self.n:
            raise SimulationError(
                f"{len(workloads)} workloads for {self.n} processes"
            )
        for pid, programs in enumerate(workloads):
            self.processes[pid].load(programs)
        for proc in self.processes:
            proc.start()

    def finalize(self, *, max_events: int = 5_000_000) -> RunResult:
        """Validate completion and assemble the :class:`RunResult`."""
        if not all(proc.done for proc in self.processes):
            stuck = [p.pid for p in self.processes if not p.done]
            raise ProtocolError(
                f"run ended with unfinished processes {stuck} "
                f"(event budget {max_events} exhausted?)"
            )
        violation = (
            self.abcast.check_total_order() if self.abcast is not None else None
        )
        if self.monitor is not None:
            self.monitor.flush()
        history = self.recorder.build_history(self.initial_values)
        return RunResult(
            history=history,
            recorder=self.recorder,
            net_stats=self.network.stats,
            duration=self.sim.now,
            abcast_violation=violation,
            ww_sequence=list(self.ww_sequence),
        )


def make_cluster(
    process_class: Type[BaseProcess],
    n: int,
    objects: Sequence[str],
    *,
    cluster_class: Optional[Type[Cluster]] = None,
    uses_abcast: bool = True,
    **kwargs,
) -> Cluster:
    """Shared builder behind every ``*_cluster`` factory.

    Per-protocol modules only declare what differs: the process class,
    a :class:`Cluster` subclass when they carry extra state (AW's
    ``delta``, locking's ``rw_locks``, Fig-6's reply optimization) and
    whether the protocol rides the atomic-broadcast layer.  Protocols
    with ``uses_abcast=False`` get ``abcast_factory=None`` defaulted
    in (still overridable by explicit keyword, matching the historic
    factories).
    """
    if not uses_abcast:
        kwargs.setdefault("abcast_factory", None)
    kwargs.setdefault("process_class", process_class)
    cls = cluster_class or Cluster
    return cls(n, objects, **kwargs)
