"""Baseline: a single unreplicated server.

The simplest m-linearizable implementation: one process holds the only
copy of the objects; every other process ships each m-operation to it
and waits for the result.  Linearization point = execution at the
server, which lies between invocation and response.

Useful as a latency/throughput baseline against the replicated
protocols: every m-operation costs a round trip to the server (or the
local delay, at the server itself), reads gain nothing from
replication, and the server serialises everything.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp
from repro.protocols.store import ExecutionRecord, MProgram
from repro.sim.network import Message

EXEC_REQ = "srv-exec"
EXEC_RESP = "srv-result"

#: The pid that hosts the single copy.
SERVER_PID = 0


class ServerProcess(BaseProcess):
    """Client of (or, at pid 0, host of) the central store."""

    def on_invoke(self, pending: PendingOp) -> None:
        if self.pid == SERVER_PID:
            record = self.store.execute(pending.program, pending.uid)
            self.respond(pending, record)
            return
        self.cluster.network.send(
            self.pid,
            SERVER_PID,
            Message(
                EXEC_REQ, {"uid": pending.uid, "program": pending.program}
            ),
        )

    def handle_message(self, src: int, message: Message) -> None:
        if message.kind == EXEC_REQ:
            if self.pid != SERVER_PID:
                raise ProtocolError(
                    f"P{self.pid}: execution request at non-server"
                )
            uid = message.payload["uid"]
            program: MProgram = message.payload["program"]
            record = self.store.execute(program, uid)
            self.cluster.network.send(
                self.pid,
                src,
                Message(EXEC_RESP, {"uid": uid, "record": record}),
            )
        elif message.kind == EXEC_RESP:
            pending = self._pending
            if pending is None or pending.uid != message.payload["uid"]:
                raise ProtocolError(
                    f"P{self.pid}: stray server result for uid "
                    f"{message.payload['uid']}"
                )
            record: ExecutionRecord = message.payload["record"]
            self.respond(pending, record)
        else:
            super().handle_message(src, message)

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise ProtocolError("the server baseline never uses atomic broadcast")


def server_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build a single-server baseline cluster (server at pid 0)."""
    kwargs.setdefault("abcast_factory", None)
    return Cluster(n, objects, process_class=ServerProcess, **kwargs)
