"""Baseline: a single unreplicated server.

The simplest m-linearizable implementation: one process holds the only
copy of the objects; every other process ships each m-operation to it
and waits for the result.  Linearization point = execution at the
server, which lies between invocation and response.

Useful as a latency/throughput baseline against the replicated
protocols: every m-operation costs a round trip to the server (or the
local delay, at the server itself), reads gain nothing from
replication, and the server serialises everything.

Crash tolerance (``fault_tolerant=True`` clusters) models the classic
write-ahead-logged server: every executed m-operation is committed to
the server's durable map before its result is sent, a restarting
server reinstalls the committed image, duplicate requests are answered
from the commit log without re-execution, and clients retry their
request on a timer (``cluster.query_retry``) so a response lost to a
server crash is regenerated.  The server's execution order is exposed
through :meth:`~repro.protocols.base.Cluster.announce_sync` as the
run's ``~ww`` synchronization order — the same Theorem-7 hook the
broadcast protocols get from the abcast delivery sequence.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.protocols.store import ExecutionRecord, MProgram
from repro.runtime.registry import Capabilities, ProtocolSpec, register_protocol
from repro.sim.network import Message

EXEC_REQ = "srv-exec"
EXEC_RESP = "srv-result"

#: The pid that hosts the single copy.
SERVER_PID = 0


class ServerProcess(BaseProcess):
    """Client of (or, at pid 0, host of) the central store."""

    def __init__(self, pid: int, cluster: Cluster) -> None:
        super().__init__(pid, cluster)
        #: Server-side commit log (pid 0 only): uid -> executed record.
        #: Durable — survives :meth:`crash` — so restarts answer
        #: retried requests without re-executing them.
        self._committed: Dict[int, ExecutionRecord] = {}
        #: Durable image of the store matching ``_committed``.
        self._durable_store: Any = None

    # ------------------------------------------------------------------
    # Server side
    # ------------------------------------------------------------------

    def _server_execute(
        self, uid: int, program: MProgram
    ) -> ExecutionRecord:
        """Execute once, commit durably, and dedup retried requests."""
        if uid in self._committed:
            return self._committed[uid]
        record = self.store.execute(program, uid)
        self._committed[uid] = record
        self._durable_store = self.store.export()
        # The server's arrival order *is* the synchronization order.
        self.cluster.announce_sync(uid, self.pid)
        return record

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def on_invoke(self, pending: PendingOp) -> None:
        if self.pid == SERVER_PID:
            record = self._server_execute(pending.uid, pending.program)
            self.respond(pending, record)
            return
        self._send_request(pending)

    def _send_request(self, pending: PendingOp) -> None:
        self.cluster.network.send(
            self.pid,
            SERVER_PID,
            Message(
                EXEC_REQ, {"uid": pending.uid, "program": pending.program}
            ),
        )
        if self.cluster.fault_tolerant:
            self._arm_retry(pending.uid)

    def _arm_retry(self, uid: int) -> None:
        """Resend until answered — a server crash can eat the response."""

        def retry() -> None:
            pending = self._pending
            if (
                self.crashed
                or pending is None
                or pending.uid != uid
                or uid in self._responded_uids
            ):
                return
            self._send_request(pending)

        self.cluster.sim.schedule(self.cluster.query_retry, retry)

    def on_recover_pending(self, pending: PendingOp) -> None:
        """Re-drive the request that was open when this process died."""
        if self.pid == SERVER_PID:
            record = self._server_execute(pending.uid, pending.program)
            self.respond(pending, record)
            return
        self._send_request(pending)

    def recover(self) -> None:
        if self.pid == SERVER_PID and self._durable_store is not None:
            # Reinstall the committed image before the client loop
            # resumes; retried requests then execute against it.
            self.store.install(self._durable_store)
        super().recover()

    # ------------------------------------------------------------------
    # Messages
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: Message) -> None:
        if message.kind == EXEC_REQ:
            if self.pid != SERVER_PID:
                raise ProtocolError(
                    f"P{self.pid}: execution request at non-server"
                )
            uid = message.payload["uid"]
            program: MProgram = message.payload["program"]
            record = self._server_execute(uid, program)
            self.cluster.network.send(
                self.pid,
                src,
                Message(EXEC_RESP, {"uid": uid, "record": record}),
            )
        elif message.kind == EXEC_RESP:
            uid = message.payload["uid"]
            pending = self._pending
            if pending is None or pending.uid != uid:
                if uid in self._responded_uids:
                    return  # duplicate reply to a retried request
                raise ProtocolError(
                    f"P{self.pid}: stray server result for uid {uid}"
                )
            record: ExecutionRecord = message.payload["record"]
            self.respond(pending, record)
        else:
            super().handle_message(src, message)

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise ProtocolError("the server baseline never uses atomic broadcast")


def server_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build a single-server baseline cluster (server at pid 0)."""
    return make_cluster(ServerProcess, n, objects, uses_abcast=False, **kwargs)


register_protocol(
    ProtocolSpec(
        name="server",
        factory=server_cluster,
        condition="m-lin",
        summary="single server at pid 0; every m-operation a round trip",
        capabilities=Capabilities(
            crash_tolerant=True, partition_tolerant=True
        ),
        uses_abcast=False,
    )
)
