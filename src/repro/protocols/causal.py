"""Causally consistent replication (extension; see repro.core.causal).

The Section-4 aside — "The system can then provide weaker guarantees
and have better performance" — made concrete: drop the total order on
updates and replicate them with a **causal broadcast** instead.

* On invocation, an update executes on the issuer's replica and
  responds immediately (no broadcast round trip: writes cost only the
  local delay — the performance win over the Fig-4/Fig-6 protocols,
  measured in experiment A4).
* The update's *effects* (the values it wrote) are multicast with a
  vector timestamp; receivers buffer each message until its causal
  dependencies are satisfied — the classic causal-delivery condition
  ``T[src] == delivered[src] + 1  and  T[k] <= delivered[k]`` for all
  other ``k`` — then install the writes.
* Queries read the local replica.

Concurrent updates may be applied in different orders at different
replicas and the replicas may stay divergent — exactly what causal
consistency permits and m-sequential consistency forbids.  Every
execution of this protocol is m-causally consistent (asserted over
randomized runs in the test suite); m-SC violations occur and are
caught by the exact checker.

Effects, not programs, travel on the wire: re-executing a
read-modify-write program against a diverged replica would compute
*different values* than the issuer observed, which is why this
protocol (unlike Fig-4/Fig-6, whose total order makes re-execution
deterministic) ships the written values.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.runtime.registry import ProtocolSpec, register_protocol
from repro.sim.network import Message

CAUSAL = "causal-update"


class CausalProcess(BaseProcess):
    """One replica of the causal protocol."""

    def __init__(self, pid: int, cluster: Cluster) -> None:
        super().__init__(pid, cluster)
        #: delivered-update counts per origin (own sends included).
        self.vc: List[int] = [0] * cluster.n
        self._buffer: List[Tuple[int, Dict[str, Any]]] = []

    def on_invoke(self, pending: PendingOp) -> None:
        record = self.store.execute(pending.program, pending.uid)
        if record.wobjects:
            deps = list(self.vc)
            self.vc[self.pid] += 1
            deps[self.pid] = self.vc[self.pid]
            payload = {
                "uid": pending.uid,
                "writes": {
                    obj: self.store.value_of(obj)
                    for obj in record.wobjects
                },
                "vt": deps,
            }
            self.cluster.network.send_to_all(
                self.pid, Message(CAUSAL, payload), include_self=False
            )
        self.respond(pending, record)

    def handle_message(self, src: int, message: Message) -> None:
        if message.kind != CAUSAL:
            super().handle_message(src, message)
            return
        self._buffer.append((src, message.payload))
        self._drain()

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise NotImplementedError(
            "the causal protocol does not use atomic broadcast"
        )

    # ------------------------------------------------------------------
    # Causal delivery
    # ------------------------------------------------------------------

    def _deliverable(self, src: int, vt: List[int]) -> bool:
        if vt[src] != self.vc[src] + 1:
            return False
        return all(
            vt[k] <= self.vc[k]
            for k in range(self.cluster.n)
            if k != src
        )

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for entry in list(self._buffer):
                src, payload = entry
                if self._deliverable(src, payload["vt"]):
                    self._buffer.remove(entry)
                    self.store.apply_writes(
                        payload["writes"], payload["uid"]
                    )
                    self.vc[src] += 1
                    progressed = True


def causal_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build a causally consistent replication cluster."""
    return make_cluster(CausalProcess, n, objects, uses_abcast=False, **kwargs)


register_protocol(
    ProtocolSpec(
        name="causal",
        factory=causal_cluster,
        condition="m-causal",
        summary="vector-clock gossip: causal delivery, no total order",
        uses_abcast=False,
    )
)
