"""History recording for protocol runs (S16).

Protocol processes report, for each m-operation they issue: the
invocation and response times, the operation sequence it performed,
and the reads-from entries captured from the store's version tracking
(the operational reading of D 5.1/D 5.6).  The recorder assembles a
:class:`~repro.core.history.History` that the Section 2/4 checkers can
consume directly — this is the loop that turns Theorems 15 and 20 into
executable experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.history import History
from repro.core.index import LiveIndex
from repro.core.operation import MOperation, Operation
from repro.errors import ProtocolError


@dataclass
class OpRecord:
    """One completed m-operation as reported by its issuing process.

    Attributes:
        uid: m-operation uid (cluster-wide unique, > 0).
        process: issuing process pid.
        name: program label.
        inv: invocation (virtual) time.
        resp: response (virtual) time.
        ops: the operation sequence performed at the issuer.
        reads_from: obj -> writer uid for external reads.
        result: the program's return value.
        is_update: conservative update classification used by the
            protocol (``may_write``), *not* whether it actually wrote.
    """

    uid: int
    process: int
    name: str
    inv: float
    resp: float
    ops: Tuple[Operation, ...]
    reads_from: Mapping[str, int]
    result: Any
    is_update: bool


@dataclass
class HistoryRecorder:
    """Collects :class:`OpRecord` entries and builds a history.

    When ``live_index`` is set, every completion is additionally fed
    to that :class:`~repro.core.index.LiveIndex`, which maintains the
    run's order and legality state incrementally — so mid-run audits
    (chaos harness, fault hooks) never rebuild a
    :class:`~repro.core.history.History`.
    """

    records: List[OpRecord] = field(default_factory=list)
    live_index: Optional[LiveIndex] = None
    _open_invocations: Dict[int, Tuple[float, str]] = field(
        default_factory=dict
    )

    def begin(self, uid: int, inv: float, name: str) -> None:
        """Mark an m-operation as invoked (for liveness accounting)."""
        if uid in self._open_invocations:
            raise ProtocolError(f"m-operation uid {uid} invoked twice")
        self._open_invocations[uid] = (inv, name)

    def complete(self, record: OpRecord) -> None:
        """Record a completed m-operation."""
        self._open_invocations.pop(record.uid, None)
        self.records.append(record)
        if self.live_index is not None:
            self.live_index.observe(
                record.uid,
                record.process,
                record.reads_from,
                record.is_update,
            )

    @property
    def incomplete(self) -> Dict[int, Tuple[float, str]]:
        """Invocations that never received a response."""
        return dict(self._open_invocations)

    def build_history(
        self, initial_values: Mapping[str, Any]
    ) -> History:
        """Assemble the recorded run into a checkable history.

        Raises :class:`ProtocolError` if any invocation is still open —
        the consistency conditions are defined over complete histories,
        and a hung m-operation indicates a protocol bug anyway.
        """
        if self._open_invocations:
            pending = ", ".join(
                f"{name}(uid={uid})"
                for uid, (_t, name) in sorted(self._open_invocations.items())
            )
            raise ProtocolError(
                f"cannot build history: incomplete m-operations: {pending}"
            )
        mops: List[MOperation] = []
        reads_from: Dict[Tuple[int, str], int] = {}
        for rec in sorted(self.records, key=lambda r: (r.inv, r.uid)):
            mops.append(
                MOperation(
                    uid=rec.uid,
                    process=rec.process,
                    ops=rec.ops,
                    inv=rec.inv,
                    resp=rec.resp,
                    name=f"{rec.name}#{rec.uid}",
                )
            )
            for obj, writer in rec.reads_from.items():
                reads_from[(rec.uid, obj)] = writer
        return History.from_mops(
            mops,
            initial_values=dict(initial_values),
            reads_from=reads_from,
        )

    def response_times(self) -> List[Tuple[OpRecord, float]]:
        """(record, latency) pairs for every completed m-operation."""
        return [(rec, rec.resp - rec.inv) for rec in self.records]
