"""The traditional DSM baseline — the paper's opening foil.

Abstract, first sentence: "The traditional Distributed Shared Memory
(DSM) model provides atomicity at levels of read and write on single
objects.  Therefore, multi-object operations such as double compare
and swap, and atomic m-register assignment cannot be efficiently
expressed in this model."

This protocol *is* that model, so the claim can be measured instead of
assumed.  Objects are partitioned to home processes (one copy each —
single-object reads and writes are therefore trivially atomic), but
an m-operation gets **no cross-object atomicity whatsoever**:

* it fetches each object it may touch from that object's home, all in
  parallel, with no locks;
* it executes its program against the assembled snapshot;
* it sends each written value to its home, which applies it on
  arrival (per-object arrival order = the object's total order).

Every individual read and write is linearizable (there is exactly one
copy and one home serializing it).  Multi-object m-operations tear:
a snapshot's fetches interleave with other operations' writes, and
two writers' multi-writes interleave per object — the executions
violate m-sequential consistency, and the checkers prove it
(experiment M0).  On single-object workloads the protocol is
indistinguishable from a correct one — which is precisely why the
single-object consistency theory the paper generalises was not
enough.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.protocols.locking import home_of
from repro.protocols.store import VersionedStore
from repro.runtime.registry import ProtocolSpec, register_protocol
from repro.sim.network import Message

FETCH = "td-fetch"
DATA = "td-data"
WRITE = "td-write"
WRITE_ACK = "td-ack"


class TraditionalProcess(BaseProcess):
    """Per-object atomicity only: fetch, compute, scatter writes."""

    def on_invoke(self, pending: PendingOp) -> None:
        program = pending.program
        if program.static_objects is None:
            raise ProtocolError(
                f"the traditional-DSM baseline requires program "
                f"{program.name!r} to declare static_objects"
            )
        objs = sorted(program.static_objects)
        pending.extra["snapshot"] = {}
        pending.extra["awaiting"] = len(objs)
        if not objs:
            self._execute(pending)
            return
        for obj in objs:
            home = home_of(obj, self.cluster.objects, self.cluster.n)
            self.cluster.network.send(
                self.pid,
                home,
                Message(FETCH, {"uid": pending.uid, "obj": obj}),
            )

    def _execute(self, pending: PendingOp) -> None:
        snapshot = pending.extra["snapshot"]
        temp_store = VersionedStore.from_export(snapshot)
        record = temp_store.execute(pending.program, pending.uid)
        pending.extra["record"] = record
        written = sorted(record.wobjects)
        if not written:
            self.respond(pending, record)
            return
        pending.extra["awaiting"] = len(written)
        for obj in written:
            home = home_of(obj, self.cluster.objects, self.cluster.n)
            self.cluster.network.send(
                self.pid,
                home,
                Message(
                    WRITE,
                    {
                        "uid": pending.uid,
                        "obj": obj,
                        "value": temp_store.value_of(obj),
                    },
                ),
            )

    def handle_message(self, src: int, message: Message) -> None:
        kind = message.kind
        body = message.payload
        if kind == FETCH:
            self._serve_fetch(src, body)
        elif kind == WRITE:
            self._serve_write(src, body)
        elif kind == DATA:
            self._on_data(body)
        elif kind == WRITE_ACK:
            self._on_ack(body)
        else:
            super().handle_message(src, message)

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise ProtocolError(
            "the traditional-DSM baseline never uses atomic broadcast"
        )

    # ------------------------------------------------------------------
    # Home role
    # ------------------------------------------------------------------

    def _serve_fetch(self, src: int, body: Dict[str, Any]) -> None:
        obj = body["obj"]
        value, version, writer = self.store.export(frozenset([obj]))[obj]
        self.cluster.network.send(
            self.pid,
            src,
            Message(
                DATA,
                {
                    "uid": body["uid"],
                    "obj": obj,
                    "value": value,
                    "version": version,
                    "writer": writer,
                },
            ),
        )

    def _serve_write(self, src: int, body: Dict[str, Any]) -> None:
        self.store.apply_writes({body["obj"]: body["value"]}, body["uid"])
        self.cluster.network.send(
            self.pid,
            src,
            Message(WRITE_ACK, {"uid": body["uid"], "obj": body["obj"]}),
        )

    # ------------------------------------------------------------------
    # Client replies
    # ------------------------------------------------------------------

    def _pending_for(self, uid: int) -> PendingOp:
        pending = self._pending
        if pending is None or pending.uid != uid:
            raise ProtocolError(
                f"P{self.pid}: stray reply for uid {uid}"
            )
        return pending

    def _on_data(self, body: Dict[str, Any]) -> None:
        pending = self._pending_for(body["uid"])
        pending.extra["snapshot"][body["obj"]] = (
            body["value"],
            body["version"],
            body["writer"],
        )
        pending.extra["awaiting"] -= 1
        if pending.extra["awaiting"] == 0:
            self._execute(pending)

    def _on_ack(self, body: Dict[str, Any]) -> None:
        pending = self._pending_for(body["uid"])
        pending.extra["awaiting"] -= 1
        if pending.extra["awaiting"] == 0:
            self.respond(pending, pending.extra["record"])


def traditional_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build the traditional (single-object-atomicity) DSM baseline."""
    return make_cluster(
        TraditionalProcess, n, objects, uses_abcast=False, **kwargs
    )


register_protocol(
    ProtocolSpec(
        name="traditional",
        factory=traditional_cluster,
        condition=None,
        summary="per-object atomicity only (torn m-operations visible)",
        uses_abcast=False,
    )
)
