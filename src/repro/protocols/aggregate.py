"""Baseline: the aggregate-object approach (Section 1's strawman).

The paper's introduction warns that multi-methods could be modelled
"by defining an aggregate object that represents the state of all
objects", but that "this technique has serious drawbacks ... loss of
locality and concurrency".  This protocol implements that strawman
faithfully so the loss can be *measured* (experiment A1): the whole
store is one logical object, so **every** m-operation — queries
included — must be globally ordered, i.e. atomically broadcast, and a
query pays the full broadcast latency that the Fig-4 protocol avoids
entirely and the Fig-6 protocol replaces with one round trip.

(The executions are trivially m-linearizable: every m-operation takes
effect at its delivery point, which lies between its invocation and
response.)
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.runtime.registry import Capabilities, ProtocolSpec, register_protocol


class AggregateProcess(BaseProcess):
    """Every m-operation is broadcast, as if on one big object."""

    # Queries ride the abcast like updates, so the shared replay-
    # tolerant delivery path answers them and recovery must replay an
    # unanswered query's slot.
    abcast_answers_queries = True

    def on_invoke(self, pending: PendingOp) -> None:
        abcast = self.cluster.abcast
        if abcast is None:
            raise ProtocolError(
                "the aggregate baseline requires an atomic-broadcast layer"
            )
        abcast.broadcast(
            self.pid,
            {"uid": pending.uid, "program": pending.program},
        )

    def on_abcast_deliver(self, sender: int, payload: Dict[str, Any]) -> None:
        self._apply_update_delivery(sender, payload)


def aggregate_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build an aggregate-object baseline cluster."""
    return make_cluster(AggregateProcess, n, objects, **kwargs)


register_protocol(
    ProtocolSpec(
        name="aggregate",
        factory=aggregate_cluster,
        condition="m-lin",
        summary="strawman: one big object, every m-operation broadcast",
        capabilities=Capabilities(
            crash_tolerant=True, partition_tolerant=True
        ),
    )
)
