"""Baseline: the aggregate-object approach (Section 1's strawman).

The paper's introduction warns that multi-methods could be modelled
"by defining an aggregate object that represents the state of all
objects", but that "this technique has serious drawbacks ... loss of
locality and concurrency".  This protocol implements that strawman
faithfully so the loss can be *measured* (experiment A1): the whole
store is one logical object, so **every** m-operation — queries
included — must be globally ordered, i.e. atomically broadcast, and a
query pays the full broadcast latency that the Fig-4 protocol avoids
entirely and the Fig-6 protocol replaces with one round trip.

(The executions are trivially m-linearizable: every m-operation takes
effect at its delivery point, which lies between its invocation and
response.)
"""

from __future__ import annotations

from typing import Any, Dict

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp
from repro.protocols.store import MProgram


class AggregateProcess(BaseProcess):
    """Every m-operation is broadcast, as if on one big object."""

    def on_invoke(self, pending: PendingOp) -> None:
        abcast = self.cluster.abcast
        if abcast is None:
            raise ProtocolError(
                "the aggregate baseline requires an atomic-broadcast layer"
            )
        abcast.broadcast(
            self.pid,
            {"uid": pending.uid, "program": pending.program},
        )

    def on_abcast_deliver(self, sender: int, payload: Dict[str, Any]) -> None:
        uid: int = payload["uid"]
        program: MProgram = payload["program"]
        record = self.store.execute(program, uid)
        if sender == self.pid:
            pending = self._pending
            if pending is None or pending.uid != uid:
                raise ProtocolError(
                    f"P{self.pid}: delivery of own m-operation {uid} but "
                    "no matching pending m-operation"
                )
            self.respond(pending, record)


def aggregate_cluster(n: int, objects, **kwargs) -> Cluster:
    """Build an aggregate-object baseline cluster."""
    return Cluster(n, objects, process_class=AggregateProcess, **kwargs)
