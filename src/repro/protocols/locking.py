"""Partitioned store with ordered two-phase locking (OO-constraint route).

Section 4 offers two ways to make executions efficiently checkable:
the WW-constraint ("all update m-operations must be globally
synchronized" — the broadcast protocols of Section 5) and the
**OO-constraint** ("m-operations need to be synchronized only at each
object level").  This protocol implements the object-level route:

* objects are *partitioned*, not replicated — each object lives at a
  home process (round-robin by name order);
* an m-operation acquires an exclusive lock on every object it may
  touch (its declared ``static_objects``), **in canonical object
  order** — the classic deadlock-free ordered acquisition;
* with all locks held it fetches the locked objects' values from
  their homes, executes the program locally on that snapshot, then
  commits written values back to the homes (which release the locks
  and grant waiters); the response follows the commit
  acknowledgments, making the execution strict-2PL and hence
  m-linearizable.

Cost shape (experiment A5): the lock phase is sequential, so latency
grows **linearly with the number of objects an m-operation spans**,
unlike the broadcast protocols' constant number of rounds — but
m-operations on disjoint objects never synchronize at all, so under
low contention the protocol scales where the broadcast protocols
serialize everything through one total order.

Requirements: every program must declare ``static_objects`` (the
conservative potentially-accessed set, exactly the paper's
conservative-classification stance applied to object sets).
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import ProtocolError
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.protocols.store import VersionedStore
from repro.runtime.registry import Capabilities, ProtocolSpec, register_protocol
from repro.sim.network import Message

LOCK_REQ = "lk-req"
LOCK_GRANT = "lk-grant"
FETCH_REQ = "lk-fetch"
FETCH_RESP = "lk-data"
COMMIT = "lk-commit"
COMMIT_ACK = "lk-ack"


def home_of(obj: str, objects: Tuple[str, ...], n: int) -> int:
    """The home process of an object (round-robin over sorted names)."""
    return objects.index(obj) % n


class LockProcess(BaseProcess):
    """A participant: client side plus its shard's lock manager."""

    def __init__(self, pid: int, cluster: Cluster) -> None:
        super().__init__(pid, cluster)
        # Lock manager state for objects homed here: per object, the
        # held mode ("S"/"X") with the holder set, plus a FIFO wait
        # queue of (mode, src, uid) requests.
        self._holders: Dict[str, Tuple[str, set]] = {}
        self._waiters: Dict[str, List[Tuple[str, int, int]]] = {}

    # ------------------------------------------------------------------
    # Client side
    # ------------------------------------------------------------------

    def on_invoke(self, pending: PendingOp) -> None:
        program = pending.program
        if program.static_objects is None:
            raise ProtocolError(
                f"the locking protocol requires program {program.name!r} "
                "to declare static_objects"
            )
        lockset = sorted(program.static_objects)
        pending.extra["lockset"] = lockset
        pending.extra["next_lock"] = 0
        pending.extra["snapshot"] = {}
        pending.extra["phase"] = "locking"
        # Lock mode: updates take exclusive locks on every potentially
        # touched object (conservative, per Section 5's classification
        # stance); queries take shared locks — the OO-constraint only
        # requires read-only m-operations to synchronize with *update*
        # m-operations on the object, never with each other.  The
        # rw_locks=False cluster option forces X everywhere, for the
        # read-concurrency ablation (experiment A6).
        rw = getattr(self.cluster, "rw_locks", True)
        pending.extra["mode"] = (
            "X" if program.may_write or not rw else "S"
        )
        self._request_next_lock(pending)

    def _request_next_lock(self, pending: PendingOp) -> None:
        idx = pending.extra["next_lock"]
        lockset = pending.extra["lockset"]
        if idx >= len(lockset):
            self._start_fetch(pending)
            return
        obj = lockset[idx]
        self._send_home(
            obj,
            Message(
                LOCK_REQ,
                {
                    "uid": pending.uid,
                    "obj": obj,
                    "mode": pending.extra["mode"],
                },
            ),
        )

    def _start_fetch(self, pending: PendingOp) -> None:
        pending.extra["phase"] = "fetching"
        lockset = pending.extra["lockset"]
        pending.extra["awaiting"] = len(lockset)
        if not lockset:  # a no-object program: execute immediately
            self._execute_and_commit(pending)
            return
        for obj in lockset:
            self._send_home(
                obj, Message(FETCH_REQ, {"uid": pending.uid, "obj": obj})
            )

    def _execute_and_commit(self, pending: PendingOp) -> None:
        pending.extra["phase"] = "committing"
        snapshot = pending.extra["snapshot"]
        temp_store = VersionedStore.from_export(snapshot)
        record = temp_store.execute(pending.program, pending.uid)
        pending.extra["record"] = record
        # One commit per locked object: written value (if any) plus
        # the lock release; homes apply before granting waiters.
        lockset = pending.extra["lockset"]
        pending.extra["awaiting"] = len(lockset)
        if not lockset:
            self.respond(pending, record)
            return
        for obj in lockset:
            value = (
                {obj: temp_store.value_of(obj)}
                if obj in record.wobjects
                else {}
            )
            self._send_home(
                obj,
                Message(
                    COMMIT,
                    {"uid": pending.uid, "obj": obj, "writes": value},
                ),
            )

    def _send_home(self, obj: str, message: Message) -> None:
        home = home_of(obj, self.cluster.objects, self.cluster.n)
        self.cluster.network.send(self.pid, home, message)

    # ------------------------------------------------------------------
    # Message handling (client + manager roles)
    # ------------------------------------------------------------------

    def handle_message(self, src: int, message: Message) -> None:
        kind = message.kind
        body = message.payload
        if kind == LOCK_REQ:
            self._manager_lock(src, body)
        elif kind == FETCH_REQ:
            self._manager_fetch(src, body)
        elif kind == COMMIT:
            self._manager_commit(src, body)
        elif kind == LOCK_GRANT:
            self._client_granted(body)
        elif kind == FETCH_RESP:
            self._client_data(body)
        elif kind == COMMIT_ACK:
            self._client_acked(body)
        else:
            super().handle_message(src, message)

    def on_abcast_deliver(self, sender: int, payload: Any) -> None:
        raise ProtocolError("the locking protocol never uses atomic broadcast")

    # ------------------------------------------------------------------
    # Lock-manager role (for objects homed at this pid)
    # ------------------------------------------------------------------

    def _check_home(self, obj: str) -> None:
        if home_of(obj, self.cluster.objects, self.cluster.n) != self.pid:
            raise ProtocolError(
                f"P{self.pid} received a manager message for {obj!r} "
                "homed elsewhere"
            )

    def _grant(self, obj: str, mode: str, src: int, uid: int) -> None:
        held_mode, holders = self._holders.get(obj, ("S", set()))
        if holders:
            assert held_mode == "S" and mode == "S"
            holders.add((src, uid))
            self._holders[obj] = ("S", holders)
        else:
            self._holders[obj] = (mode, {(src, uid)})
        self.cluster.network.send(
            self.pid, src, Message(LOCK_GRANT, {"uid": uid, "obj": obj})
        )

    def _manager_lock(self, src: int, body: Dict[str, Any]) -> None:
        obj, uid, mode = body["obj"], body["uid"], body["mode"]
        self._check_home(obj)
        held = self._holders.get(obj)
        waiting = self._waiters.get(obj, [])
        if held is None or not held[1]:
            self._grant(obj, mode, src, uid)
        elif (
            mode == "S"
            and held[0] == "S"
            and not waiting  # FIFO fairness: no reader overtakes a
            # queued writer (prevents writer starvation)
        ):
            self._grant(obj, "S", src, uid)
        else:
            self._waiters.setdefault(obj, []).append((mode, src, uid))

    def _holds(self, obj: str, src: int, uid: int) -> bool:
        held = self._holders.get(obj)
        return held is not None and (src, uid) in held[1]

    def _manager_fetch(self, src: int, body: Dict[str, Any]) -> None:
        obj, uid = body["obj"], body["uid"]
        self._check_home(obj)
        if not self._holds(obj, src, uid):
            raise ProtocolError(
                f"fetch of {obj!r} by a non-owner (uid {uid})"
            )
        value, version, writer = self.store.export(frozenset([obj]))[obj]
        self.cluster.network.send(
            self.pid,
            src,
            Message(
                FETCH_RESP,
                {
                    "uid": uid,
                    "obj": obj,
                    "value": value,
                    "version": version,
                    "writer": writer,
                },
            ),
        )

    def _manager_commit(self, src: int, body: Dict[str, Any]) -> None:
        obj, uid = body["obj"], body["uid"]
        self._check_home(obj)
        if not self._holds(obj, src, uid):
            raise ProtocolError(
                f"commit of {obj!r} by a non-owner (uid {uid})"
            )
        if body["writes"]:
            mode, _holders = self._holders[obj]
            if mode != "X":
                raise ProtocolError(
                    f"shared-lock holder attempted to write {obj!r}"
                )
            self.store.apply_writes(body["writes"], uid)
        self.cluster.network.send(
            self.pid, src, Message(COMMIT_ACK, {"uid": uid, "obj": obj})
        )
        # Release; once the object is free, grant the next waiter (an
        # X alone, or the whole S-prefix of the queue together).
        mode, holders = self._holders[obj]
        holders.discard((src, uid))
        if holders:
            return
        waiters = self._waiters.get(obj, [])
        if not waiters:
            return
        next_mode, next_src, next_uid = waiters.pop(0)
        self._grant(obj, next_mode, next_src, next_uid)
        if next_mode == "S":
            while waiters and waiters[0][0] == "S":
                _mode, s_src, s_uid = waiters.pop(0)
                self._grant(obj, "S", s_src, s_uid)

    # ------------------------------------------------------------------
    # Client-side replies
    # ------------------------------------------------------------------

    def _pending_for(self, uid: int) -> PendingOp:
        pending = self._pending
        if pending is None or pending.uid != uid:
            raise ProtocolError(
                f"P{self.pid}: reply for uid {uid} but pending is "
                f"{pending.uid if pending else None}"
            )
        return pending

    def _client_granted(self, body: Dict[str, Any]) -> None:
        pending = self._pending_for(body["uid"])
        assert pending.extra["phase"] == "locking"
        pending.extra["next_lock"] += 1
        self._request_next_lock(pending)

    def _client_data(self, body: Dict[str, Any]) -> None:
        pending = self._pending_for(body["uid"])
        assert pending.extra["phase"] == "fetching"
        pending.extra["snapshot"][body["obj"]] = (
            body["value"],
            body["version"],
            body["writer"],
        )
        pending.extra["awaiting"] -= 1
        if pending.extra["awaiting"] == 0:
            self._execute_and_commit(pending)

    def _client_acked(self, body: Dict[str, Any]) -> None:
        pending = self._pending_for(body["uid"])
        assert pending.extra["phase"] == "committing"
        pending.extra["awaiting"] -= 1
        if pending.extra["awaiting"] == 0:
            self.respond(pending, pending.extra["record"])


class LockCluster(Cluster):
    """An ordered-2PL cluster, optionally with shared read locks."""

    def __init__(self, *args, rw_locks: bool = True, **kwargs):
        kwargs.setdefault("process_class", LockProcess)
        super().__init__(*args, **kwargs)
        self.rw_locks = rw_locks


def lock_cluster(
    n: int, objects, *, rw_locks: bool = True, **kwargs
) -> LockCluster:
    """Build a partitioned, ordered-2PL cluster (OO-constraint route).

    Args:
        n: number of processes (each also homes a shard of objects).
        objects: shared object names.
        rw_locks: queries take shared locks (default).  ``False``
            forces exclusive locks everywhere — the read-concurrency
            ablation of experiment A6.
        **kwargs: any :class:`~repro.protocols.base.Cluster` keyword.
    """
    return make_cluster(
        LockProcess,
        n,
        objects,
        cluster_class=LockCluster,
        uses_abcast=False,
        rw_locks=rw_locks,
        **kwargs,
    )


register_protocol(
    ProtocolSpec(
        name="lock",
        factory=lock_cluster,
        condition="m-lin",
        summary="partitioned ordered-2PL (the OO-constraint route)",
        uses_abcast=False,
        options=("rw_locks",),
    )
)
