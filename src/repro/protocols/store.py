"""Replicated object store with per-object version vectors (S12).

The correctness arguments of Section 5 revolve around a timestamp
``ts`` — "a vector of integers with one entry for every object ...
Intuitively, it represents the version of an object" — that is
incremented whenever a write is applied (action A2: ``forall x in
wobjects(a): ts[x]++``).  :class:`VersionedStore` implements exactly
that, and additionally tracks *which m-operation* produced each
version, which is how protocol runs export an exact reads-from
relation (D 5.1/D 5.6: ``a`` reads ``x`` from ``b`` iff
``ts(finish(b))[x] = ts(start(a))[x]``).

m-operations are *programs*: callables executed against an
:class:`ObjectView`.  This honours Section 5's observation that "the
set of objects read and written by an m-operation may actually depend
on the values read during its execution" — e.g. DCAS writes only when
both comparisons succeed.
"""

from __future__ import annotations

from collections.abc import Mapping as MappingABC
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.core.operation import INIT_UID, Operation, read, write
from repro.errors import ProtocolError

#: The body of an m-operation program: runs reads/writes on a view and
#: returns the m-operation's result value.
ProgramBody = Callable[["ObjectView"], Any]

#: Hash-consed canonical object tuples: every replica of the same
#: object set shares one tuple (1000 replicas × 10k names would
#: otherwise each carry their own copy).
_INTERNED_OBJECTS: Dict[Tuple[str, ...], Tuple[str, ...]] = {}

#: Delta-chain length at which a :class:`TsSnapshot` flattens back to
#: a full dict.  Lookups walk at most this many override dicts.
_MAX_TS_DEPTH = 16

#: Shared ``wobjects`` value for executions that wrote nothing — one
#: frozenset for every query record instead of one per execution.
_EMPTY_WOBJECTS: FrozenSet[str] = frozenset()


def intern_objects(objects: Tuple[str, ...]) -> Tuple[str, ...]:
    """Return the canonical shared instance of an object-name tuple."""
    interned = _INTERNED_OBJECTS.get(objects)
    if interned is None:
        _INTERNED_OBJECTS[objects] = objects
        return objects
    return interned


class TsSnapshot(MappingABC):
    """An immutable version-vector snapshot (``ts``, Section 5).

    The store's ``ts`` used to be snapshotted by copying the whole
    per-object dict twice per :meth:`VersionedStore.execute` —
    O(objects) allocation per update, the broadcast hot spot ROADMAP
    item 4 calls out.  A snapshot is now a copy-on-write node: either
    a ``full`` dict (root, or a flattened chain) or a small
    ``overrides`` delta over a parent snapshot.  Version bumps
    allocate O(written objects); lookups walk at most
    :data:`_MAX_TS_DEPTH` deltas before hitting a full node.

    Snapshots are shared, never mutated: ``execute`` hands the *same*
    node out as one record's ``finish_ts`` and the next record's
    ``start_ts``.  Iteration follows the interned canonical object
    tuple, so rendering order is deterministic regardless of chain
    shape.
    """

    __slots__ = ("_objects", "_full", "_parent", "_overrides", "_depth")

    def __init__(
        self,
        objects: Tuple[str, ...],
        *,
        full: Optional[Dict[str, int]] = None,
        parent: Optional["TsSnapshot"] = None,
        overrides: Optional[Dict[str, int]] = None,
        depth: int = 0,
    ) -> None:
        self._objects = objects
        self._full = full
        self._parent = parent
        self._overrides = overrides
        self._depth = depth

    @classmethod
    def root(
        cls, objects: Tuple[str, ...], versions: Mapping[str, int]
    ) -> "TsSnapshot":
        return cls(intern_objects(objects), full=dict(versions))

    def child(self, changes: Dict[str, int]) -> "TsSnapshot":
        """The snapshot after applying ``changes`` (copy-on-write)."""
        if self._depth >= _MAX_TS_DEPTH:
            # Flatten by replaying deltas root -> leaf: one dict copy
            # plus depth dict.update calls, not a per-key chain walk.
            node = self
            deltas = []
            while node._full is None:
                deltas.append(node._overrides)
                node = node._parent
            full = dict(node._full)
            for overrides in reversed(deltas):
                full.update(overrides)
            full.update(changes)
            return TsSnapshot(self._objects, full=full)
        return TsSnapshot(
            self._objects,
            parent=self,
            overrides=changes,
            depth=self._depth + 1,
        )

    def __getitem__(self, obj: str) -> int:
        node = self
        while node._full is None:
            value = node._overrides.get(obj)
            if value is not None:
                return value
            node = node._parent
        return node._full[obj]

    def __iter__(self):
        return iter(self._objects)

    def __len__(self) -> int:
        return len(self._objects)

    def __repr__(self) -> str:
        return f"TsSnapshot({dict(self)!r})"


@dataclass(frozen=True)
class MProgram:
    """An m-operation as issued by a client (a deterministic procedure).

    Attributes:
        name: label used in histories and diagnostics.
        body: the procedure; receives an :class:`ObjectView`.
        may_write: conservative update classification.  Section 5:
            "We take a conservative approach and treat an m-operation
            as an update m-operation if it can potentially write to
            some object."  Programs with ``may_write=False`` must
            never call :meth:`ObjectView.write`; this is enforced.
        static_objects: optionally, the set of objects the program is
            known to touch.  Enables the Section 5.2 closing
            optimization (query replies carrying only the relevant
            objects); when set, access outside the set is an error.
    """

    name: str
    body: ProgramBody
    may_write: bool
    static_objects: Optional[FrozenSet[str]] = None

    def __post_init__(self) -> None:
        if self.static_objects is not None:
            object.__setattr__(
                self, "static_objects", frozenset(self.static_objects)
            )


class ObjectView:
    """The interface a program uses to access shared objects.

    Records every operation performed, so the protocol can reconstruct
    the m-operation's externally visible behaviour and reads-from
    entries afterwards.
    """

    __slots__ = (
        "_store",
        "_values",
        "_allow_writes",
        "_allowed",
        "_program_name",
        "ops",
        "read_versions",
        "_written",
    )

    def __init__(
        self,
        store: "VersionedStore",
        *,
        allow_writes: bool,
        allowed_objects: Optional[FrozenSet[str]] = None,
        program_name: str = "",
    ) -> None:
        self._store = store
        # Alias of the store's live value dict: views are allocated on
        # every update delivery at every replica, and going through
        # the store's accessor methods for each operation dominated
        # profiles of the 1000-process workload.
        self._values = store._values
        self._allow_writes = allow_writes
        self._allowed = allowed_objects
        self._program_name = program_name
        self.ops: List[Operation] = []
        #: obj -> (version, writer uid) for each *external* read.
        self.read_versions: Dict[str, Tuple[int, int]] = {}
        self._written: Set[str] = set()

    def read(self, obj: str) -> Any:
        """Read the current value of ``obj``."""
        values = self._values
        if obj not in values:
            raise ProtocolError(f"unknown shared object {obj!r}")
        allowed = self._allowed
        if allowed is not None and obj not in allowed:
            raise ProtocolError(
                f"program {self._program_name!r} accessed {obj!r} outside "
                f"its declared static_objects set"
            )
        value = values[obj]
        self.ops.append(read(obj, value))
        if obj not in self._written and obj not in self.read_versions:
            store = self._store
            self.read_versions[obj] = (
                store._versions[obj],
                store._writers[obj],
            )
        return value

    def write(self, obj: str, value: Any) -> None:
        """Write ``value`` to ``obj`` (updates the view's store)."""
        values = self._values
        if obj not in values:
            raise ProtocolError(f"unknown shared object {obj!r}")
        allowed = self._allowed
        if allowed is not None and obj not in allowed:
            raise ProtocolError(
                f"program {self._program_name!r} accessed {obj!r} outside "
                f"its declared static_objects set"
            )
        if not self._allow_writes:
            raise ProtocolError(
                f"program {self._program_name!r} declared may_write=False "
                f"but wrote to {obj!r}"
            )
        values[obj] = value
        self.ops.append(write(obj, value))
        self._written.add(obj)

    @property
    def written_objects(self) -> FrozenSet[str]:
        """Objects written so far (``wobjects``)."""
        return frozenset(self._written)


class ExecutionRecord:
    """Everything observable about one program execution.

    A plain ``__slots__`` record (one per update delivery per replica
    — allocated on the simulator's hottest path).

    Attributes:
        result: the program's return value.
        ops: the operation sequence performed.
        reads_from: obj -> writer uid, for external reads only.
        read_versions: obj -> version read, for external reads.
        wobjects: objects written.
        start_ts: snapshot of the store's version vector before
            execution (``ts(start)``, D 5.4) — an immutable
            :class:`TsSnapshot` shared with the store, not a copy.
        finish_ts: snapshot after execution (``ts(finish)``, D 5.5).
    """

    __slots__ = (
        "result",
        "ops",
        "reads_from",
        "read_versions",
        "wobjects",
        "start_ts",
        "finish_ts",
    )

    def __init__(
        self,
        result: Any,
        ops: Tuple[Operation, ...],
        reads_from: Dict[str, int],
        read_versions: Dict[str, int],
        wobjects: FrozenSet[str],
        start_ts: Mapping[str, int],
        finish_ts: Mapping[str, int],
    ) -> None:
        self.result = result
        self.ops = ops
        self.reads_from = reads_from
        self.read_versions = read_versions
        self.wobjects = wobjects
        self.start_ts = start_ts
        self.finish_ts = finish_ts


class VersionedStore:
    """One replica's copy of all shared objects plus the ``ts`` vector.

    Tracks, per object: current value, version number (number of
    writes applied), and the uid of the m-operation that produced the
    current version (``INIT_UID`` for the initial value).
    """

    def __init__(self, initial_values: Mapping[str, Any]) -> None:
        self._initial: Dict[str, Any] = dict(initial_values)
        self._values: Dict[str, Any] = dict(initial_values)
        self._versions: Dict[str, int] = {obj: 0 for obj in initial_values}
        self._writers: Dict[str, int] = {
            obj: INIT_UID for obj in initial_values
        }
        self._objects: Tuple[str, ...] = intern_objects(
            tuple(sorted(initial_values))
        )
        self._ts: TsSnapshot = TsSnapshot.root(
            self._objects, self._versions
        )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def objects(self) -> Tuple[str, ...]:
        """All object names, in the canonical (sorted) order."""
        return self._objects

    def has_object(self, obj: str) -> bool:
        return obj in self._values

    def value_of(self, obj: str) -> Any:
        return self._values[obj]

    def version_of(self, obj: str) -> int:
        return self._versions[obj]

    def writer_of(self, obj: str) -> int:
        return self._writers[obj]

    def set_value(self, obj: str, value: Any) -> None:
        """Raw value update (used by views during execution)."""
        self._values[obj] = value

    def ts_vector(self) -> Tuple[int, ...]:
        """The version vector in canonical object order.

        Timestamps are compared lexicographically over this order in
        the Fig-6 query phase (action A5).
        """
        return tuple(self._versions[obj] for obj in self._objects)

    def ts_map(self) -> Mapping[str, int]:
        """The version vector as an object-keyed mapping.

        Returns the store's current immutable :class:`TsSnapshot` —
        shared, not copied; callers must not mutate it.
        """
        return self._ts

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, program: MProgram, mop_uid: int) -> ExecutionRecord:
        """Run a program against this replica, applying its writes.

        Implements the body of actions A2 (updates) and A3/A6
        (queries): the program runs, and then — per P 5.17/P 5.28 —
        the version of every written object is incremented by one and
        its writer is recorded as ``mop_uid``.
        """
        start_ts = self._ts
        view = ObjectView(
            self,
            allow_writes=program.may_write,
            allowed_objects=program.static_objects,
            program_name=program.name,
        )
        result = program.body(view)
        if view._written:
            written = frozenset(view._written)
            versions = self._versions
            writers = self._writers
            changes: Dict[str, int] = {}
            for obj in written:
                bumped = versions[obj] + 1
                versions[obj] = bumped
                writers[obj] = mop_uid
                changes[obj] = bumped
            self._ts = start_ts.child(changes)
        else:
            written = _EMPTY_WOBJECTS
        reads_from: Dict[str, int] = {}
        read_versions: Dict[str, int] = {}
        for obj, (version, writer) in view.read_versions.items():
            reads_from[obj] = writer
            read_versions[obj] = version
        return ExecutionRecord(
            result=result,
            ops=tuple(view.ops),
            reads_from=reads_from,
            read_versions=read_versions,
            wobjects=written,
            start_ts=start_ts,
            finish_ts=self._ts,
        )

    def apply_writes(
        self, values: Mapping[str, Any], mop_uid: int
    ) -> None:
        """Apply a remote m-operation's *effects* (written values).

        Used by protocols without a total update order (e.g. causal
        replication), where re-executing the program on a diverged
        replica could compute different values: the issuer ships the
        values it wrote, and remotes install them verbatim — one
        version bump per object, writer attribution to ``mop_uid``.
        """
        changes: Dict[str, int] = {}
        for obj in sorted(values):
            if obj not in self._values:
                raise ProtocolError(f"unknown shared object {obj!r}")
            self._values[obj] = values[obj]
            self._versions[obj] += 1
            self._writers[obj] = mop_uid
            changes[obj] = self._versions[obj]
        if changes:
            self._ts = self._ts.child(changes)

    # ------------------------------------------------------------------
    # Crash / recovery
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Wipe the replica back to the initial values (a crash).

        Versions return to 0 and writers to ``INIT_UID``; the replica
        is then rebuilt either by replaying the totally-ordered update
        log from the start or by :meth:`install`-ing a peer snapshot.
        """
        self._values = dict(self._initial)
        self._versions = {obj: 0 for obj in self._initial}
        self._writers = {obj: INIT_UID for obj in self._initial}
        self._ts = TsSnapshot.root(self._objects, self._versions)

    def install(self, snapshot: Mapping[str, Tuple[Any, int, int]]) -> None:
        """Adopt a peer's exported state wholesale (snapshot recovery).

        The snapshot must cover every object (a full :meth:`export`);
        partial snapshots would leave stale versions behind.
        """
        missing = set(self._objects) - set(snapshot)
        if missing:
            raise ProtocolError(
                f"snapshot is missing objects {sorted(missing)}"
            )
        for obj, (value, version, writer) in snapshot.items():
            if obj not in self._values:
                raise ProtocolError(f"unknown shared object {obj!r}")
            self._values[obj] = value
            self._versions[obj] = version
            self._writers[obj] = writer
        self._ts = TsSnapshot.root(self._objects, self._versions)

    # ------------------------------------------------------------------
    # Replication helpers
    # ------------------------------------------------------------------

    def export(
        self, objects: Optional[FrozenSet[str]] = None
    ) -> Dict[str, Tuple[Any, int, int]]:
        """Snapshot ``obj -> (value, version, writer)`` for a query reply.

        ``objects=None`` exports the whole store (the literal protocol
        of Figure 6); a set exports only those objects (the Section
        5.2 optimization).
        """
        names = self._objects if objects is None else sorted(objects)
        return {
            obj: (self._values[obj], self._versions[obj], self._writers[obj])
            for obj in names
        }

    @classmethod
    def from_export(
        cls,
        snapshot: Mapping[str, Tuple[Any, int, int]],
    ) -> "VersionedStore":
        """Rebuild a store (restricted to the exported objects)."""
        store = cls({obj: value for obj, (value, _v, _w) in snapshot.items()})
        for obj, (_value, version, writer) in snapshot.items():
            store._versions[obj] = version
            store._writers[obj] = writer
        store._ts = TsSnapshot.root(store._objects, store._versions)
        return store

    def lex_ts(self, objects: Optional[FrozenSet[str]] = None) -> Tuple[int, ...]:
        """Version vector restricted to ``objects`` (canonical order)."""
        if objects is None:
            return self.ts_vector()
        return tuple(
            self._versions[obj] for obj in self._objects if obj in objects
        )
