"""The Figure-6 protocol: m-linearizability (Section 5.2).

Updates are handled exactly as in the Figure-4 protocol (actions A1
and A2).  Queries are where the two protocols differ — to avoid
reading a stale value, a query gathers the freshest replica state in
one round trip:

* **(A3)** On invocation of a query m-operation, reset ``othts`` and
  send a "query" message to all processes.
* **(A4)** On receiving a "query", reply with the local copy and its
  timestamp ``(myX, myts)``.
* **(A5)** On receiving a "query response" ``(X, ts)``, if
  ``othts < ts`` (lexicographic comparison of whole vectors), replace
  ``(othX, othts) := (X, ts)``.
* **(A6)** Once all responses have arrived, apply the m-operation to
  ``othX`` and respond.

Theorem 20 proves every execution m-linearizable; crucially the
protocol needs **no synchronized clocks and no message-delay bound**
(the paper's advantage over Attiya–Welch's linearizable
implementation).  Experiment T20 validates the theorem over
randomized runs; experiment A2 measures the price: queries now cost a
full round trip governed by the slowest replica.

The closing remark of Section 5.2 — replies may carry only the
objects the query touches rather than the whole store — is available
via ``reply_relevant_only=True`` on :func:`mlin_cluster` (the query's
``static_objects`` declaration scopes the reply); experiment A3
quantifies the message-size saving.

Implementation note: the issuing process incorporates its *own*
``(myX, myts)`` directly at invocation time instead of sending itself
a network "query"; this is the same event (``query(i, a)`` occurs
between ``inv(a)`` and ``resp(a)``, P 5.20) without a self-addressed
message in flight.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Optional

from repro.errors import ProtocolError
from repro.obs import get_tracer
from repro.protocols.base import BaseProcess, Cluster, PendingOp, make_cluster
from repro.protocols.store import MProgram, VersionedStore
from repro.runtime.registry import Capabilities, ProtocolSpec, register_protocol
from repro.sim.network import Message

QUERY = "query"
QUERY_RESP = "query-resp"


class MLinProcess(BaseProcess):
    """One participant in the Figure-6 protocol."""

    def on_invoke(self, pending: PendingOp) -> None:
        if pending.program.may_write:
            # (A1): identical to the Fig-4 protocol.
            abcast = self.cluster.abcast
            if abcast is None:
                raise ProtocolError(
                    "the Fig-6 protocol requires an atomic-broadcast layer"
                )
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "proto.abcast", uid=pending.uid, process=self.pid
                )
            abcast.broadcast(
                self.pid,
                {"uid": pending.uid, "program": pending.program},
            )
            return
        # (A3): gather the freshest replica state.
        self._start_gather(pending, attempt=0)

    def on_abcast_deliver(self, sender: int, payload: Dict[str, Any]) -> None:
        # (A2): apply the update everywhere; respond at the issuer.
        self._apply_update_delivery(sender, payload)

    def on_recover_pending(self, pending: PendingOp) -> None:
        """Restart an interrupted gather after a crash.

        Updates keep the base behaviour (the abcast layer re-drives
        them); a query's gather state died with the replica, so it is
        reissued under a fresh attempt number — late responses to the
        pre-crash gather carry the old attempt and are ignored.
        """
        if pending.program.may_write:
            return
        self._start_gather(pending, pending.extra.get("attempt", 0) + 1)

    def handle_message(self, src: int, message: Message) -> None:
        if message.kind == QUERY:
            # (A4): reply with (myX, myts), possibly restricted to the
            # relevant objects (Section 5.2 closing remark).
            names = message.payload["objects"]
            relevant = None if names is None else frozenset(names)
            reply = {
                "uid": message.payload["uid"],
                "attempt": message.payload.get("attempt", 0),
                "snapshot": self.store.export(relevant),
                "ts": self.store.lex_ts(relevant),
            }
            self.cluster.network.send(
                self.pid, src, Message(QUERY_RESP, reply)
            )
        elif message.kind == QUERY_RESP:
            self._on_query_response(message.payload)
        else:
            super().handle_message(src, message)

    # ------------------------------------------------------------------
    # Query internals
    # ------------------------------------------------------------------

    def _relevant_objects(
        self, program: MProgram
    ) -> Optional[FrozenSet[str]]:
        cluster: "MLinCluster" = self.cluster  # type: ignore[assignment]
        if getattr(cluster, "reply_relevant_only", False):
            if program.static_objects is None:
                raise ProtocolError(
                    f"reply_relevant_only requires query program "
                    f"{program.name!r} to declare static_objects"
                )
            return program.static_objects
        return None

    def _start_gather(self, pending: PendingOp, attempt: int) -> None:
        """(Re)issue the query round; ``attempt`` tags its responses.

        Fault tolerance makes gathers restartable — after a crash, or
        when replies stall past ``cluster.query_retry`` (a replica was
        down when queried) — so each round is numbered and responses
        carrying a stale attempt are discarded rather than mixed into
        the new round's count.
        """
        relevant = self._relevant_objects(pending.program)
        tracer = get_tracer()
        if tracer.enabled:
            # One span per gather round; a retried/restarted gather
            # closes the previous round's span first.
            previous = pending.extra.get("gather_span")
            if previous is not None:
                previous.end(superseded=True)
            pending.extra["gather_span"] = tracer.begin(
                "mlin.gather",
                uid=pending.uid,
                process=self.pid,
                attempt=attempt,
            )
        pending.extra["attempt"] = attempt
        pending.extra["awaiting"] = self.cluster.n - 1
        # Own copy counts as one of the n query responses (see module
        # docstring); start from it instead of othts := 0.
        pending.extra["best"] = self.store.export(relevant)
        pending.extra["best_ts"] = self.store.lex_ts(relevant)
        if self.cluster.n == 1:
            self._finish_query(pending)
            return
        query_body = {
            "uid": pending.uid,
            "attempt": attempt,
            "objects": sorted(relevant) if relevant is not None else None,
        }
        self.cluster.network.send_to_all(
            self.pid, Message(QUERY, query_body), include_self=False
        )
        if self.cluster.fault_tolerant:
            uid = pending.uid
            self.cluster.sim.schedule(
                self.cluster.query_retry,
                lambda: self._maybe_retry_query(uid, attempt),
            )

    def _maybe_retry_query(self, uid: int, attempt: int) -> None:
        """Retry timer: re-gather iff this exact attempt is still open."""
        pending = self._pending
        if (
            self.crashed
            or pending is None
            or pending.uid != uid
            or pending.extra.get("attempt") != attempt
        ):
            return
        self._start_gather(pending, attempt + 1)

    def _on_query_response(self, payload: Dict[str, Any]) -> None:
        pending = self._pending
        stale = (
            pending is None
            or pending.uid != payload["uid"]
            or payload.get("attempt", 0) != pending.extra.get("attempt", 0)
        )
        if stale:
            if self.cluster.fault_tolerant:
                # A superseded gather round (crash restart or retry
                # timeout) — its late responses are expected noise.
                return
            # A response for an already-completed query would be a
            # protocol bug: the process issues sequentially and uids
            # are unique.
            raise ProtocolError(
                f"P{self.pid}: stray query response for uid "
                f"{payload['uid']}"
            )
        # (A5): keep the lexicographically freshest snapshot, wholesale.
        ts = tuple(payload["ts"])
        if tuple(pending.extra["best_ts"]) < ts:
            pending.extra["best"] = payload["snapshot"]
            pending.extra["best_ts"] = ts
        pending.extra["awaiting"] -= 1
        if pending.extra["awaiting"] == 0:
            self._finish_query(pending)

    def _finish_query(self, pending: PendingOp) -> None:
        # (A6): run the query against the constructed copy othX.
        gather_span = pending.extra.pop("gather_span", None)
        if gather_span is not None:
            gather_span.end()
        oth_store = VersionedStore.from_export(pending.extra["best"])
        record = oth_store.execute(pending.program, pending.uid)
        self.respond(pending, record)


class MLinCluster(Cluster):
    """A Figure-6 cluster, optionally with relevant-objects replies."""

    def __init__(self, *args, reply_relevant_only: bool = False, **kwargs):
        kwargs.setdefault("process_class", MLinProcess)
        super().__init__(*args, **kwargs)
        self.reply_relevant_only = reply_relevant_only


def mlin_cluster(
    n: int,
    objects,
    *,
    reply_relevant_only: bool = False,
    **kwargs,
) -> MLinCluster:
    """Build a Figure-6 (m-linearizable) cluster.

    Args:
        n: number of processes.
        objects: shared object names.
        reply_relevant_only: enable the Section-5.2 optimization
            (query replies carry only the declared relevant objects).
        **kwargs: any :class:`~repro.protocols.base.Cluster` keyword.
    """
    return make_cluster(
        MLinProcess,
        n,
        objects,
        cluster_class=MLinCluster,
        reply_relevant_only=reply_relevant_only,
        **kwargs,
    )


register_protocol(
    ProtocolSpec(
        name="mlin",
        factory=mlin_cluster,
        condition="m-lin",
        summary="Figure-6 protocol: broadcast updates, gather queries",
        capabilities=Capabilities(
            crash_tolerant=True,
            partition_tolerant=True,
            certificate_eligible=True,
            query_optimizable=True,
        ),
        options=("reply_relevant_only",),
    )
)
