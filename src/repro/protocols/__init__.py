"""Replication protocols (Section 5) and baselines (S12-S16)."""

from repro.protocols.aggregate import AggregateProcess, aggregate_cluster
from repro.protocols.attiya_welch import AWCluster, AWProcess, aw_cluster
from repro.protocols.base import (
    BaseProcess,
    Cluster,
    PendingOp,
    RunResult,
    Workloads,
)
from repro.protocols.causal import CausalProcess, causal_cluster
from repro.protocols.local import LocalProcess, local_cluster
from repro.protocols.locking import LockProcess, home_of, lock_cluster
from repro.protocols.mlin import MLinCluster, MLinProcess, mlin_cluster
from repro.protocols.msc import MSCProcess, msc_cluster
from repro.protocols.recorder import HistoryRecorder, OpRecord
from repro.protocols.server import ServerProcess, server_cluster
from repro.protocols.store import (
    ExecutionRecord,
    MProgram,
    ObjectView,
    VersionedStore,
)
from repro.protocols.traditional import TraditionalProcess, traditional_cluster
from repro.protocols.writeall import WriteAllProcess, writeall_cluster

__all__ = [
    "AWCluster",
    "AWProcess",
    "AggregateProcess",
    "BaseProcess",
    "CausalProcess",
    "Cluster",
    "ExecutionRecord",
    "HistoryRecorder",
    "LocalProcess",
    "LockProcess",
    "MLinCluster",
    "MLinProcess",
    "MProgram",
    "MSCProcess",
    "ObjectView",
    "OpRecord",
    "PendingOp",
    "RunResult",
    "ServerProcess",
    "TraditionalProcess",
    "VersionedStore",
    "WriteAllProcess",
    "Workloads",
    "aggregate_cluster",
    "aw_cluster",
    "causal_cluster",
    "home_of",
    "local_cluster",
    "lock_cluster",
    "mlin_cluster",
    "msc_cluster",
    "server_cluster",
    "traditional_cluster",
    "writeall_cluster",
]
