"""Span-based tracing with a ring-buffer collector (substrate S31).

A :class:`Tracer` records *spans* — named intervals with attributes —
into a bounded ring buffer, and exports them as JSONL (one span per
line) for offline analysis.  Two span shapes cover every use in the
package:

* **scoped** spans (:meth:`Tracer.span`) are context managers; they
  nest on a per-tracer stack, so parentage and self-time (duration
  minus the durations of directly nested spans) fall out for free.
  They instrument call-shaped work: a checker phase, a legality scan.
* **unscoped** spans (:meth:`Tracer.begin`) are ended explicitly via
  :meth:`Span.end`; they instrument work that crosses simulator
  events, where no Python call frame spans the interval — an
  m-operation from invocation to response, a sequencer failover from
  crash to election.
* **events** (:meth:`Tracer.event`) are zero-duration spans — a
  message send, a broadcast delivery, an epoch change.

Clocks
------

The tracer reads timestamps from a pluggable ``clock``.  Outside a
simulation this is ``time.perf_counter`` (wall time); while a
:class:`~repro.sim.kernel.Simulator` is draining its queue it rebinds
the installed tracer's clock to *virtual* time, so every span emitted
from simulated code carries deterministic timestamps: the same seed
yields byte-identical trace timelines.  Each record is tagged with the
clock that produced it (``"sim"`` or ``"wall"``).

Overhead
--------

The module-level default tracer is :data:`NULL_TRACER`, whose
``enabled`` attribute is ``False`` and whose methods are no-ops
returning a shared inert span.  Hot paths guard instrumentation with
one attribute check (``if tracer.enabled:``), so with no collector
installed the cost per candidate span is a single attribute load —
verified by the performance-guard tests.
"""

from __future__ import annotations

import json
import time
from collections import deque
from functools import wraps
from typing import IO, Any, Callable, Deque, Dict, List, Optional, Union

__all__ = ["NULL_TRACER", "NullTracer", "Span", "Tracer"]

#: Default ring-buffer capacity (finished spans retained).
DEFAULT_CAPACITY = 65536


class Span:
    """One named interval; finished spans become ring-buffer records."""

    __slots__ = (
        "tracer",
        "name",
        "span_id",
        "parent_id",
        "t0",
        "t1",
        "attrs",
        "clock_name",
        "scoped",
        "child_time",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        span_id: int,
        parent_id: Optional[int],
        t0: float,
        attrs: Dict[str, Any],
        clock_name: str,
        scoped: bool,
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.t0 = t0
        self.t1: Optional[float] = None
        self.attrs = attrs
        self.clock_name = clock_name
        self.scoped = scoped
        #: total duration of directly nested scoped spans, for
        #: self-time computation.
        self.child_time = 0.0

    def end(self, **attrs: Any) -> None:
        """Finish the span (idempotent); extra attrs are merged in."""
        if self.t1 is not None:
            return
        if attrs:
            self.attrs.update(attrs)
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.t1 is None else f"dur={self.t1 - self.t0:.6f}"
        return f"<Span {self.name!r} {state}>"


class _NullSpan:
    """Inert span shared by every :class:`NullTracer` call."""

    __slots__ = ()

    def end(self, **_attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *_exc: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The do-nothing tracer installed by default.

    ``enabled`` is False so instrumented code can skip even the
    argument packing of a span call with one attribute check.
    """

    enabled = False
    clock_name = "wall"

    def span(self, _name: str, **_attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def begin(self, _name: str, **_attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, _name: str, **_attrs: Any) -> None:
        pass

    def wrap(self, _name: str) -> Callable:
        def decorate(fn: Callable) -> Callable:
            return fn

        return decorate

    def records(self) -> List[Dict[str, Any]]:
        return []


#: The shared no-op tracer (a singleton; identity-comparable).
NULL_TRACER = NullTracer()


class Tracer:
    """A recording tracer with a bounded ring buffer.

    Args:
        capacity: maximum finished spans retained; older records are
            evicted FIFO (the JSONL export is therefore a suffix of
            the run under sustained load).
        clock: timestamp source (default ``time.perf_counter``).  The
            simulation kernel rebinds this to virtual time while
            running — see :meth:`bind_clock`.
    """

    enabled = True

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.capacity = capacity
        self.clock: Callable[[], float] = clock or time.perf_counter
        self.clock_name = "wall"
        self._buffer: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._stack: List[Span] = []
        self._next_id = 0
        #: finished spans ever recorded (eviction-independent).
        self.finished = 0
        #: records dropped by ring-buffer eviction.
        self.evicted = 0

    # ------------------------------------------------------------------
    # Clock binding (used by the simulation kernel)
    # ------------------------------------------------------------------

    def bind_clock(
        self, clock: Callable[[], float], name: str
    ) -> "_ClockBinding":
        """Temporarily read timestamps from ``clock``.

        Returns a context manager restoring the previous clock; the
        kernel wraps its event loop in one so spans emitted from
        simulated code carry virtual, deterministic timestamps.
        """
        return _ClockBinding(self, clock, name)

    # ------------------------------------------------------------------
    # Span creation
    # ------------------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Span:
        """Begin a scoped span (use as a context manager)."""
        span = Span(
            self,
            name,
            self._alloc_id(),
            self._stack[-1].span_id if self._stack else None,
            self.clock(),
            attrs,
            self.clock_name,
            scoped=True,
        )
        self._stack.append(span)
        return span

    def begin(self, name: str, **attrs: Any) -> Span:
        """Begin an unscoped span; finish it later with ``.end()``.

        Unscoped spans do not join the nesting stack (they outlive the
        call frame that opened them); their parent is whatever scoped
        span was open at begin time.
        """
        return Span(
            self,
            name,
            self._alloc_id(),
            self._stack[-1].span_id if self._stack else None,
            self.clock(),
            attrs,
            self.clock_name,
            scoped=False,
        )

    def event(self, name: str, **attrs: Any) -> None:
        """Record a zero-duration span."""
        now = self.clock()
        self._record(
            name=name,
            span_id=self._alloc_id(),
            parent_id=self._stack[-1].span_id if self._stack else None,
            t0=now,
            t1=now,
            self_time=0.0,
            attrs=attrs,
            clock_name=self.clock_name,
        )

    def wrap(self, name: str) -> Callable:
        """Decorator: trace every call of the wrapped function."""

        def decorate(fn: Callable) -> Callable:
            @wraps(fn)
            def traced(*args: Any, **kwargs: Any) -> Any:
                with self.span(name):
                    return fn(*args, **kwargs)

            return traced

        return decorate

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _alloc_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _finish(self, span: Span) -> None:
        span.t1 = self.clock()
        duration = span.t1 - span.t0
        if span.scoped:
            # Unwind to the span (tolerates a child left open by an
            # exception: it is finished here with its parent's t1).
            while self._stack:
                top = self._stack.pop()
                if top is span:
                    break
                top.t1 = span.t1  # pragma: no cover - defensive
            if self._stack:
                self._stack[-1].child_time += duration
        self._record(
            name=span.name,
            span_id=span.span_id,
            parent_id=span.parent_id,
            t0=span.t0,
            t1=span.t1,
            self_time=max(0.0, duration - span.child_time),
            attrs=span.attrs,
            clock_name=span.clock_name,
        )

    def _record(
        self,
        *,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        t0: float,
        t1: float,
        self_time: float,
        attrs: Dict[str, Any],
        clock_name: str,
    ) -> None:
        if len(self._buffer) == self.capacity:
            self.evicted += 1
        self.finished += 1
        self._buffer.append(
            {
                "name": name,
                "id": span_id,
                "parent": parent_id,
                "t0": t0,
                "t1": t1,
                "dur": t1 - t0,
                "self": self_time,
                "clock": clock_name,
                "attrs": attrs,
            }
        )

    # ------------------------------------------------------------------
    # Inspection / export
    # ------------------------------------------------------------------

    def records(self) -> List[Dict[str, Any]]:
        """Finished span records, oldest first (a copy)."""
        return list(self._buffer)

    def clear(self) -> None:
        """Drop all recorded spans (open spans are unaffected)."""
        self._buffer.clear()

    def export_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON object per finished span; returns the count.

        ``destination`` is a path or an open text file.  Attribute
        values that are not JSON-serialisable are stringified rather
        than failing the export.
        """
        records = self.records()
        if hasattr(destination, "write"):
            self._write_jsonl(destination, records)
        else:
            with open(destination, "w", encoding="utf-8") as fh:
                self._write_jsonl(fh, records)
        return len(records)

    @staticmethod
    def _write_jsonl(fh: IO[str], records: List[Dict[str, Any]]) -> None:
        for record in records:
            fh.write(json.dumps(record, default=repr) + "\n")


class _ClockBinding:
    """Context manager swapping a tracer's clock in and out."""

    __slots__ = ("tracer", "clock", "name", "_saved")

    def __init__(
        self, tracer: Tracer, clock: Callable[[], float], name: str
    ) -> None:
        self.tracer = tracer
        self.clock = clock
        self.name = name
        self._saved: Optional[tuple] = None

    def __enter__(self) -> "_ClockBinding":
        self._saved = (self.tracer.clock, self.tracer.clock_name)
        self.tracer.clock = self.clock
        self.tracer.clock_name = self.name
        return self

    def __exit__(self, *_exc: Any) -> None:
        assert self._saved is not None
        self.tracer.clock, self.tracer.clock_name = self._saved
