"""Text flame summary: aggregate span records by name.

Not a flame *graph* — a terminal-friendly table of where time went,
ranked by self-time (duration minus directly nested spans), which is
the number that answers "which layer is hot" without double-counting
parents for their children's work.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping

__all__ = ["FlameRow", "aggregate_spans", "flame_summary"]


class FlameRow:
    """Aggregated statistics for one span name."""

    __slots__ = ("name", "count", "total", "self_time", "clock")

    def __init__(self, name: str, clock: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0
        self.clock = clock

    def add(self, record: Mapping[str, Any]) -> None:
        self.count += 1
        self.total += record["dur"]
        self.self_time += record["self"]


def aggregate_spans(
    records: Iterable[Mapping[str, Any]]
) -> List[FlameRow]:
    """Group records by span name, ranked by self-time descending.

    Records from different clocks (virtual simulation time vs. wall
    time) aggregate into separate rows — their durations are not
    commensurable, and the summary marks each row's clock.
    """
    rows: Dict[tuple, FlameRow] = {}
    for record in records:
        key = (record["name"], record.get("clock", "wall"))
        row = rows.get(key)
        if row is None:
            row = FlameRow(record["name"], key[1])
            rows[key] = row
        row.add(record)
    return sorted(
        rows.values(), key=lambda r: (-r.self_time, -r.total, r.name)
    )


def flame_summary(
    records: Iterable[Mapping[str, Any]], *, top: int = 10
) -> str:
    """The top-``top`` span names by self-time, as a text table."""
    rows = aggregate_spans(records)
    lines = [
        f"{'span':<28} {'clock':<5} {'count':>7} "
        f"{'total':>12} {'self':>12}"
    ]
    for row in rows[:top]:
        lines.append(
            f"{row.name:<28} {row.clock:<5} {row.count:>7} "
            f"{row.total:>12.6f} {row.self_time:>12.6f}"
        )
    if len(rows) > top:
        lines.append(f"... and {len(rows) - top} more span name(s)")
    return "\n".join(lines)
