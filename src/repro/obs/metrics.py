"""Metrics registry: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
created on first use and shared by name thereafter — the structured
replacement for the hand-rolled ``+= 1`` counter fields that used to
live in :class:`~repro.sim.network.NetworkStats`.  Instruments may
carry *labels* (``registry.counter("net.sent", kind="abc-seq")``);
each distinct label set is its own time series, exactly as in the
Prometheus data model this deliberately mirrors (dependency-free).

``registry.snapshot()`` renders everything as one plain dict, which is
what the CLI ``--metrics`` flags and :class:`~repro.sim.chaos.
ChaosResult` expose — consumers read recorded numbers instead of
poking private attributes of live objects.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds (virtual-time latencies and
#: wall-clock checker phases both land comfortably inside).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
)

#: A label set, normalised to a sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that goes up and down; tracks its high-water mark."""

    __slots__ = ("name", "value", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.maximum = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.maximum:
            self.maximum = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.set(self.value - amount)


class Histogram:
    """Fixed-boundary cumulative-bucket histogram.

    ``counts[i]`` counts observations ``<= buckets[i]``; one implicit
    overflow bucket counts the rest.  Bucket boundaries are fixed at
    construction so merging and snapshotting stay trivial.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "count", "total")

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        ordered = tuple(buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing: "
                f"{buckets!r}"
            )
        self.name = name
        self.buckets = ordered
        self.counts = [0] * len(ordered)
        self.overflow = 0
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsRegistry:
    """Named instruments, created on first use, snapshot on demand."""

    __slots__ = ("_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = Counter(_series_name(name, key[1]))
            self._counters[key] = counter
        return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = Gauge(_series_name(name, key[1]))
            self._gauges[key] = gauge
        return gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = Histogram(_series_name(name, key[1]), buckets)
            self._histograms[key] = histogram
        return histogram

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def by_label(self, name: str, label: str) -> Dict[str, int]:
        """``label``-value -> count over every series of counter ``name``.

        E.g. ``registry.by_label("net.sent_by_kind", "kind")`` returns
        per-kind send counts as a plain dict.
        """
        out: Dict[str, int] = {}
        for (base, labels), counter in self._counters.items():
            if base == name:
                values = dict(labels)
                if label in values:
                    out[values[label]] = counter.value
        return out

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as one plain nested dict (JSON-safe)."""
        counters = {
            c.name: c.value for c in self._counters.values()
        }
        gauges = {
            g.name: {"value": g.value, "max": g.maximum}
            for g in self._gauges.values()
        }
        histograms = {
            h.name: {
                "count": h.count,
                "total": h.total,
                "mean": h.mean,
                "buckets": {
                    str(bound): cumulative
                    for bound, cumulative in zip(
                        h.buckets, _cumulative(h.counts)
                    )
                },
                "overflow": h.overflow,
            }
            for h in self._histograms.values()
        }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def _cumulative(counts: Iterable[int]) -> List[int]:
    total = 0
    out: List[int] = []
    for count in counts:
        total += count
        out.append(total)
    return out
