"""Metrics registry: counters, gauges and fixed-bucket histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments,
created on first use and shared by name thereafter — the structured
replacement for the hand-rolled ``+= 1`` counter fields that used to
live in :class:`~repro.sim.network.NetworkStats`.  Instruments may
carry *labels* (``registry.counter("net.sent", kind="abc-seq")``);
each distinct label set is its own time series, exactly as in the
Prometheus data model this deliberately mirrors (dependency-free).

``registry.snapshot()`` renders everything as one plain dict, which is
what the CLI ``--metrics`` flags and :class:`~repro.sim.chaos.
ChaosResult` expose — consumers read recorded numbers instead of
poking private attributes of live objects.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: Default histogram bucket upper bounds (virtual-time latencies and
#: wall-clock checker phases both land comfortably inside).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
)

#: A label set, normalised to a sorted tuple of (key, value) pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _series_name(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count.

    Instruments are shared across the serve daemon's handler and
    worker threads, so every read-modify-write happens under the
    instrument's own lock; an unlocked ``+= 1`` drops increments under
    contention (the load/add/store interleaves).
    """

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount


class Gauge:
    """A value that goes up and down; tracks its high-water mark."""

    __slots__ = ("name", "_lock", "_value", "_maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0
        self._maximum = 0.0

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def maximum(self) -> float:
        with self._lock:
            return self._maximum

    def set(self, value: float) -> None:
        with self._lock:
            self._set_locked(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._set_locked(self._value + amount)

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._set_locked(self._value - amount)

    def _set_locked(self, value: float) -> None:
        self._value = value
        if value > self._maximum:
            self._maximum = value


class Histogram:
    """Fixed-boundary cumulative-bucket histogram.

    ``counts[i]`` counts observations ``<= buckets[i]``; one implicit
    overflow bucket counts the rest.  Bucket boundaries are fixed at
    construction so merging and snapshotting stay trivial.
    """

    __slots__ = (
        "name",
        "buckets",
        "_lock",
        "_counts",
        "_overflow",
        "_count",
        "_total",
    )

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        ordered = tuple(buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError(
                f"histogram {name} buckets must be strictly increasing: "
                f"{buckets!r}"
            )
        self.name = name
        self.buckets = ordered
        self._lock = threading.Lock()
        self._counts = [0] * len(ordered)
        self._overflow = 0
        self._count = 0
        self._total = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._total += value
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    return
            self._overflow += 1

    @property
    def counts(self) -> List[int]:
        with self._lock:
            return list(self._counts)

    @property
    def overflow(self) -> int:
        with self._lock:
            return self._overflow

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def state(self) -> Dict[str, Any]:
        """count/total/mean/counts/overflow as one coherent snapshot."""
        with self._lock:
            return {
                "count": self._count,
                "total": self._total,
                "mean": self._total / self._count if self._count else 0.0,
                "counts": list(self._counts),
                "overflow": self._overflow,
            }


class MetricsRegistry:
    """Named instruments, created on first use, snapshot on demand.

    The registry lock guards only the instrument *maps* (get-or-create
    races would otherwise mint two counters for one series and lose
    one of them); each instrument serializes its own state.  Lock
    ordering is registry -> instrument, never the reverse.
    """

    __slots__ = ("_lock", "_counters", "_gauges", "_histograms")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # ------------------------------------------------------------------
    # Instrument accessors (get-or-create)
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            counter = self._counters.get(key)
            if counter is None:
                counter = Counter(_series_name(name, key[1]))
                self._counters[key] = counter
            return counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            gauge = self._gauges.get(key)
            if gauge is None:
                gauge = Gauge(_series_name(name, key[1]))
                self._gauges[key] = gauge
            return gauge

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = Histogram(_series_name(name, key[1]), buckets)
                self._histograms[key] = histogram
            return histogram

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def by_label(self, name: str, label: str) -> Dict[str, int]:
        """``label``-value -> count over every series of counter ``name``.

        E.g. ``registry.by_label("net.sent_by_kind", "kind")`` returns
        per-kind send counts as a plain dict.
        """
        with self._lock:
            series = list(self._counters.items())
        out: Dict[str, int] = {}
        for (base, labels), counter in series:
            if base == name:
                values = dict(labels)
                if label in values:
                    out[values[label]] = counter.value
        return out

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Everything, as one plain nested dict (JSON-safe)."""
        with self._lock:
            counter_list = list(self._counters.values())
            gauge_list = list(self._gauges.values())
            histogram_list = list(self._histograms.values())
        counters = {c.name: c.value for c in counter_list}
        gauges = {
            g.name: {"value": g.value, "max": g.maximum}
            for g in gauge_list
        }
        histograms = {}
        for h in histogram_list:
            state = h.state()
            histograms[h.name] = {
                "count": state["count"],
                "total": state["total"],
                "mean": state["mean"],
                "buckets": {
                    str(bound): cumulative
                    for bound, cumulative in zip(
                        h.buckets, _cumulative(state["counts"])
                    )
                },
                "overflow": state["overflow"],
            }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def _cumulative(counts: Iterable[int]) -> List[int]:
    total = 0
    out: List[int] = []
    for count in counts:
        total += count
        out.append(total)
    return out
