"""repro.obs — observability: tracing, metrics and profiling hooks.

Dependency-free instrumentation for the checking and simulation
stack:

* :class:`Tracer` / :class:`Span` — span-based tracing with a
  ring-buffer collector and JSONL export (:mod:`repro.obs.trace`);
* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` (:mod:`repro.obs.metrics`);
* :func:`flame_summary` — a text table of where time went
  (:mod:`repro.obs.flame`).

Installation model
------------------

One module-level slot holds the active tracer (default: the no-op
:data:`NULL_TRACER`) and one holds an optional global metrics
registry.  Instrumented code fetches them via :func:`get_tracer` /
:func:`get_metrics` and guards every span with a single ``enabled``
attribute check, so an uninstrumented run pays one attribute load per
candidate span and nothing else::

    tracer = get_tracer()
    if tracer.enabled:
        tracer.event("net.send", kind=message.kind)

Install a collector around the code under observation (both functions
return the previously installed object, for restoring)::

    from repro.obs import Tracer, install_tracer, uninstall_tracer

    tracer = Tracer()
    install_tracer(tracer)
    try:
        run_workload()
    finally:
        uninstall_tracer()
    tracer.export_jsonl("run.trace.jsonl")

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs.flame import FlameRow, aggregate_spans, flame_summary
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FlameRow",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "aggregate_spans",
    "flame_summary",
    "get_metrics",
    "get_tracer",
    "install_metrics",
    "install_tracer",
    "uninstall_metrics",
    "uninstall_tracer",
]


class _ObsState:
    """The module-level observability slots (one instance, module-wide)."""

    __slots__ = ("tracer", "metrics")

    def __init__(self) -> None:
        self.tracer: Union[Tracer, NullTracer] = NULL_TRACER
        self.metrics: Optional[MetricsRegistry] = None


_STATE = _ObsState()


def get_tracer() -> Union[Tracer, NullTracer]:
    """The active tracer (the no-op :data:`NULL_TRACER` by default)."""
    return _STATE.tracer


def install_tracer(tracer: Tracer) -> Union[Tracer, NullTracer]:
    """Make ``tracer`` the active tracer; returns the previous one."""
    previous = _STATE.tracer
    _STATE.tracer = tracer
    return previous


def uninstall_tracer() -> Union[Tracer, NullTracer]:
    """Restore the no-op tracer; returns the tracer that was active."""
    previous = _STATE.tracer
    _STATE.tracer = NULL_TRACER
    return previous


def get_metrics() -> Optional[MetricsRegistry]:
    """The global metrics registry, or None when none is installed.

    Component-local registries (e.g. the network's
    :class:`~repro.sim.network.NetworkStats`) exist regardless; the
    global slot is for cross-component series such as the kernel's
    queue-depth gauge.
    """
    return _STATE.metrics


def install_metrics(
    registry: MetricsRegistry,
) -> Optional[MetricsRegistry]:
    """Install a global registry; returns the previous one (or None)."""
    previous = _STATE.metrics
    _STATE.metrics = registry
    return previous


def uninstall_metrics() -> Optional[MetricsRegistry]:
    """Remove the global registry; returns what was installed."""
    previous = _STATE.metrics
    _STATE.metrics = None
    return previous
