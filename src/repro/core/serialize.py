"""History (de)serialization: JSON round-trips for the CLI and tooling.

The interchange format is deliberately simple and human-writable::

    {
      "objects": {"x": 0, "y": 0},          // initial values
      "mops": [
        {"uid": 1, "process": 0, "name": "alpha",
         "inv": 0.0, "resp": 1.0,            // optional (both or neither)
         "ops": [["w", "x", 1], ["r", "y", 0]]},
        ...
      ],
      "reads_from": [[2, "x", 1], ...]       // optional [reader, obj, writer]
    }

Values must be JSON scalars.  When ``reads_from`` is omitted it is
derived by unique-value matching, as everywhere else in the library.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.core.history import History
from repro.core.operation import MOperation, Operation, read, write
from repro.errors import MalformedHistoryError


def history_to_dict(history: History) -> Dict[str, Any]:
    """Serialize a history to the interchange dictionary."""
    mops: List[Dict[str, Any]] = []
    for mop in history.mops:
        entry: Dict[str, Any] = {
            "uid": mop.uid,
            "process": mop.process,
            "name": mop.name,
            "ops": [
                [op.kind.value, op.obj, op.value] for op in mop.ops
            ],
        }
        if mop.inv is not None:
            entry["inv"] = mop.inv
            entry["resp"] = mop.resp
        mops.append(entry)
    return {
        "objects": dict(history.init.external_writes),
        "mops": mops,
        "reads_from": [
            [reader, obj, writer]
            for (reader, obj), writer in sorted(
                history.reads_from_map.items()
            )
        ],
    }


def history_from_dict(data: Dict[str, Any]) -> History:
    """Deserialize a history from the interchange dictionary."""
    if not isinstance(data, dict) or "mops" not in data:
        raise MalformedHistoryError(
            "history document must be an object with a 'mops' array"
        )
    mops: List[MOperation] = []
    for entry in data["mops"]:
        ops: List[Operation] = []
        for item in entry.get("ops", []):
            try:
                kind, obj, value = item
            except (TypeError, ValueError):
                raise MalformedHistoryError(
                    f"malformed operation entry {item!r}; expected "
                    "[kind, object, value]"
                ) from None
            if kind == "r":
                ops.append(read(obj, value))
            elif kind == "w":
                ops.append(write(obj, value))
            else:
                raise MalformedHistoryError(
                    f"operation kind must be 'r' or 'w', got {kind!r}"
                )
        mops.append(
            MOperation(
                uid=int(entry["uid"]),
                process=int(entry["process"]),
                ops=tuple(ops),
                inv=entry.get("inv"),
                resp=entry.get("resp"),
                name=str(entry.get("name", "")),
            )
        )
    reads_from: Optional[Dict[Tuple[int, str], int]] = None
    if "reads_from" in data:
        reads_from = {
            (int(reader), str(obj)): int(writer)
            for reader, obj, writer in data["reads_from"]
        }
    return History.from_mops(
        mops,
        initial_values=data.get("objects"),
        reads_from=reads_from,
    )


def history_to_json(history: History, *, indent: int = 2) -> str:
    """Serialize a history to a JSON string."""
    return json.dumps(history_to_dict(history), indent=indent)


def history_from_json(text: str) -> History:
    """Deserialize a history from a JSON string."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise MalformedHistoryError(f"invalid JSON: {exc}") from exc
    return history_from_dict(data)


def save_history(history: History, path: str) -> None:
    """Write a history to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(history_to_json(history))
        handle.write("\n")


def load_history(path: str) -> History:
    """Read a history from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return history_from_json(handle.read())
