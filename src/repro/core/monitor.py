"""Streaming verification of WW-constrained executions (S28).

The constrained checker (Theorem 7) already avoids the NP-complete
search, but it reruns an O(n²)-ish legality scan over the whole
history.  For *monitoring* — checking each m-operation as it
completes — the same theory supports an incremental formulation that
is the operational twin of the paper's Section-5 timestamp reasoning:

Under the WW-constraint the updates carry a total order (``~ww``
positions).  For a completed m-operation ``a``, the set of update
m-operations ordered before ``a`` by the closure of
``~p ∪ ~rf ∪ ~ww`` (plus ``~t`` for the m-linearizability variant) is
exactly ``{u : pos(u) <= M(a)}`` where the *mark* ``M(a)`` is the
maximum update position reachable through ``a``'s direct
predecessors:

* the writers of ``a``'s external reads,
* the issuing process's previous m-operation (cumulative per-process
  mark),
* for m-linearizability: every m-operation that responded before
  ``inv(a)`` (a cumulative global mark, queried by binary search on
  response times),
* for an update: its own position (every earlier update precedes it
  via ``~ww``).

Legality (D 4.6) then collapses to a per-read check: *the latest
writer of object ``x`` at or below the mark must be exactly the
writer the read reads from* — one ``bisect`` per read.  A read whose
writer sits *above* an update's own position is a reads-from-the-
future cycle and is likewise flagged.

The verdicts coincide with the batch constrained checker
(``check_*(extra_pairs=ww_pairs)``) — cross-validated over randomized
and corrupted streams in the test suite — at O((reads + writes)·log n)
per m-operation instead of a whole-history rescan per query.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.operation import INIT_UID
from repro.errors import ReproError

#: Position assigned to the imaginary initial m-operation.
INIT_POS = -1


class MonitorUsageError(ReproError):
    """The streaming verifier was fed an out-of-contract stream."""


@dataclass(frozen=True)
class StreamViolation:
    """One detected inconsistency.

    Attributes:
        uid: the m-operation whose completion exposed the violation.
        obj: the object whose read is illegal.
        expected_writer: the writer the read claims.
        actual_writer: the latest visible writer at the mark.
        detail: human-readable narrative.
    """

    uid: int
    obj: str
    expected_writer: int
    actual_writer: Optional[int]
    detail: str

    def __str__(self) -> str:
        return self.detail


@dataclass
class ObservedOp:
    """What the verifier needs to know about one completed m-operation.

    Attributes:
        uid: m-operation uid (> 0, unique).
        process: issuing process id.
        inv: invocation time.
        resp: response time (observations must arrive in resp order).
        reads_from: obj -> writer uid for every external read
            (``INIT_UID`` for initial values).
        writes: objects written.
        is_update: whether the m-operation occupies a ``~ww`` slot
            (it must have been announced via :meth:`StreamingVerifier.
            observe_ww` before being observed).
    """

    uid: int
    process: int
    inv: float
    resp: float
    reads_from: Dict[str, int]
    writes: Tuple[str, ...]
    is_update: bool


class StreamingVerifier:
    """Incremental m-SC / m-linearizability verification.

    Args:
        condition: ``"m-sc"`` (marks from process order and reads-from)
            or ``"m-lin"`` (additionally the global response-time
            mark).

    Contract: updates are announced in broadcast-delivery order via
    :meth:`observe_ww` (before or at their own observation);
    completed m-operations are fed to :meth:`observe` in response-time
    order.  Violations are returned as they are exposed and collected
    in :attr:`violations`; the stream may continue afterwards.
    """

    def __init__(self, condition: str = "m-sc") -> None:
        if condition not in ("m-sc", "m-lin"):
            raise MonitorUsageError(
                f"unknown condition {condition!r}; expected 'm-sc' or "
                "'m-lin'"
            )
        self.condition = condition
        self._ww_pos: Dict[int, int] = {INIT_UID: INIT_POS}
        self._next_pos = 0
        # Per object: parallel arrays of (position, writer uid),
        # positions strictly increasing.
        self._write_pos: Dict[str, List[int]] = {}
        self._write_uid: Dict[str, List[int]] = {}
        self._proc_mark: Dict[int, int] = {}
        # Global mark history: response times and the cumulative mark
        # after each observation (both non-decreasing).
        self._resp_times: List[float] = []
        self._marks_after: List[float] = []
        self._global_mark = INIT_POS
        self._last_resp = float("-inf")
        self.observed = 0
        self.violations: List[StreamViolation] = []

    # ------------------------------------------------------------------
    # Feeding the stream
    # ------------------------------------------------------------------

    def observe_ww(self, uid: int, writes: Tuple[str, ...] = ()) -> None:
        """Announce the next update in atomic-broadcast order.

        ``writes`` is the update's (deterministic) write set, known at
        delivery time in any replica — *before* any reader can depend
        on it.  Registering writes here rather than at the update's
        own response matters: responses of different issuers can
        arrive out of broadcast order, but deliveries cannot.
        """
        if uid in self._ww_pos:
            raise MonitorUsageError(f"uid {uid} already has a ww position")
        position = self._next_pos
        self._ww_pos[uid] = position
        self._next_pos += 1
        for obj in writes:
            self._write_pos.setdefault(obj, []).append(position)
            self._write_uid.setdefault(obj, []).append(uid)

    def observe(self, op: ObservedOp) -> Optional[StreamViolation]:
        """Feed one completed m-operation; return its violation if any."""
        if op.resp < self._last_resp:
            raise MonitorUsageError(
                "observations must arrive in response-time order"
            )
        self._last_resp = op.resp

        if op.is_update and op.uid not in self._ww_pos:
            raise MonitorUsageError(
                f"update {op.uid} observed before its ww position was "
                "announced"
            )
        own_pos = self._ww_pos.get(op.uid)

        # Assemble the mark.
        mark = self._proc_mark.get(op.process, INIT_POS)
        if self.condition == "m-lin":
            mark = max(mark, self._global_mark_at(op.inv))
        violation: Optional[StreamViolation] = None
        for obj, writer in op.reads_from.items():
            writer_pos = self._ww_pos.get(writer)
            if writer_pos is None:
                raise MonitorUsageError(
                    f"{op.uid} reads {obj!r} from {writer}, which has no "
                    "ww position (non-update writers are impossible)"
                )
            if op.is_update and writer_pos > own_pos:
                violation = violation or StreamViolation(
                    uid=op.uid,
                    obj=obj,
                    expected_writer=writer,
                    actual_writer=None,
                    detail=(
                        f"m#{op.uid} (update, ww position {own_pos}) "
                        f"reads {obj!r} from m#{writer} which is "
                        f"broadcast *later* (position {writer_pos}) — "
                        "a reads-from-the-future cycle"
                    ),
                )
            mark = max(mark, writer_pos)
        if op.is_update:
            mark = max(mark, own_pos)

        # Per-read legality at the mark.
        for obj, writer in op.reads_from.items():
            if violation is not None:
                break
            limit = mark
            if op.is_update and obj in op.writes:
                # The reader's own write is not a predecessor.
                limit = min(limit, own_pos - 1) if own_pos is not None else limit
            actual = self._latest_writer(obj, limit)
            if actual != writer:
                violation = StreamViolation(
                    uid=op.uid,
                    obj=obj,
                    expected_writer=writer,
                    actual_writer=actual,
                    detail=(
                        f"m#{op.uid} reads {obj!r} from m#{writer}, but "
                        f"the latest write of {obj!r} it is ordered "
                        f"after comes from "
                        f"m#{actual if actual is not None else '?'} "
                        "(D 4.6 violated under the recorded ~ww order)"
                    ),
                )

        # Advance the marks.
        self._proc_mark[op.process] = max(
            self._proc_mark.get(op.process, INIT_POS), mark
        )
        self._global_mark = max(self._global_mark, mark)
        self._resp_times.append(op.resp)
        self._marks_after.append(self._global_mark)

        self.observed += 1
        if violation is not None:
            self.violations.append(violation)
        return violation

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------

    @property
    def consistent(self) -> bool:
        """True iff no violation has been detected so far."""
        return not self.violations

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _global_mark_at(self, time: float) -> int:
        """The cumulative mark of operations that responded before ``time``."""
        index = bisect.bisect_left(self._resp_times, time)
        if index == 0:
            return INIT_POS
        return int(self._marks_after[index - 1])

    def _latest_writer(self, obj: str, limit: int) -> Optional[int]:
        """uid of the latest write of ``obj`` at position <= ``limit``.

        ``None`` means no broadcast write is visible; the object still
        holds the initial value (writer ``INIT_UID``).
        """
        positions = self._write_pos.get(obj)
        if not positions:
            return INIT_UID
        index = bisect.bisect_right(positions, limit)
        if index == 0:
            return INIT_UID
        return self._write_uid[obj][index - 1]


class LiveMonitor:
    """Order-tolerant front end for live (in-run) verification.

    In a running cluster the two event streams are only *locally*
    ordered: a reader can complete before the monitor's ``~ww`` tap
    (pid 0's delivery) has announced the update it read from.  This
    wrapper buffers completed operations until every uid they depend
    on has a broadcast position — then releases them to the underlying
    :class:`StreamingVerifier` in their original response order.

    Attach via ``Cluster(..., monitor=LiveMonitor("m-sc"))``; the
    cluster feeds deliveries and completions automatically and the
    verdict is available as :attr:`consistent` during and after the
    run (also surfaced on the :class:`RunResult`).

    Release discipline: completions are queued in response order, and
    the head is released only once (a) its dependencies are announced
    and (b) the clock has passed ``head.resp + slack`` — with a
    response-clamping protocol (see ``BaseProcess.respond``) a later
    completion can carry an *earlier* response time by up to the local
    delay, so the slack window guarantees no earlier-response
    straggler is still coming.

    At a quiescent point (epoch boundary, fault boundary, end of run)
    :meth:`barrier` releases every dependency-satisfied completion
    deterministically, without waiting out the slack window.
    ``flush()`` (called by the cluster at finalize) is the terminal
    barrier: it releases the remainder and converts any completion
    still blocked on a never-announced broadcast position into a
    :class:`StreamViolation` — an executed read whose writer was never
    delivered anywhere is itself a consistency violation, not a usage
    error, so the tap-ordering race can no longer mask a verdict.
    """

    def __init__(
        self,
        condition: str = "m-sc",
        *,
        slack: float = 1e-3,
        index=None,
    ) -> None:
        self.verifier = StreamingVerifier(condition)
        self._queue: List[ObservedOp] = []
        self._now = float("-inf")
        self.slack = slack
        #: optional :class:`repro.core.index.LiveIndex` co-fed with
        #: the verifier, so one event stream maintains both the mark
        #: verdicts and the incrementally closed order for audits.
        self.index = index

    # -- feed ----------------------------------------------------------

    def announce(self, uid: int, writes: Tuple[str, ...]) -> None:
        """An update was delivered (in total order) with this write set."""
        self.verifier.observe_ww(uid, writes)
        if self.index is not None:
            self.index.announce(uid, writes)
        self._drain()

    def complete(self, op: ObservedOp, *, now: Optional[float] = None) -> None:
        """An m-operation completed at (simulated) wall time ``now``."""
        if now is not None:
            self._now = max(self._now, now)
        bisect.insort(self._queue, op, key=lambda o: o.resp)
        if self.index is not None:
            self.index.observe(
                op.uid, op.process, op.reads_from, op.is_update
            )
        self._drain()

    def barrier(self, now: Optional[float] = None) -> int:
        """Deterministic epoch barrier: drain without the slack wait.

        Releases queued completions, in response order, as long as the
        head's broadcast dependencies are announced — the slack window
        is ignored, so the outcome depends only on the event streams,
        not on how far the clock has advanced.  Call at a point where
        no earlier-response straggler can still arrive (epoch or fault
        boundary, quiescence).  Returns the number released; anything
        left is blocked on a delivery that has not landed yet.
        """
        if now is not None:
            self._now = max(self._now, now)
        released = 0
        while self._queue and self._ready(self._queue[0]):
            self.verifier.observe(self._queue.pop(0))
            released += 1
        return released

    def flush(self) -> None:
        """Terminal barrier: release everything (end of run).

        A completion still blocked here depends on a broadcast
        position that will never be announced — its writer (or the
        update itself) was never delivered.  That is a verdict, not a
        bookkeeping state: each such completion is recorded as a
        :class:`StreamViolation`.
        """
        self._now = float("inf")
        self._drain()
        blocked, self._queue = self._queue, []
        positions = self.verifier._ww_pos
        for op in blocked:  # response order, per the insort discipline
            missing = sorted(
                {w for w in op.reads_from.values() if w not in positions}
                | (
                    {op.uid}
                    if op.is_update and op.uid not in positions
                    else set()
                )
            )
            obj, expected = next(
                (
                    (o, w)
                    for o, w in sorted(op.reads_from.items())
                    if w not in positions
                ),
                (op.writes[0] if op.writes else "", op.uid),
            )
            self.verifier.violations.append(
                StreamViolation(
                    uid=op.uid,
                    obj=obj,
                    expected_writer=expected,
                    actual_writer=None,
                    detail=(
                        f"m#{op.uid} completed but "
                        f"{', '.join(f'm#{m}' for m in missing)} never "
                        "received a broadcast position: the update it "
                        "depends on was never delivered (~ww tap never "
                        "landed)"
                    ),
                )
            )

    # -- verdict -------------------------------------------------------

    @property
    def consistent(self) -> bool:
        """No violation among the operations released so far."""
        return self.verifier.consistent

    @property
    def violations(self) -> List[StreamViolation]:
        return self.verifier.violations

    @property
    def pending(self) -> int:
        """Completed operations still awaiting a dependency's position."""
        return len(self._queue)

    # -- internals -----------------------------------------------------

    def _ready(self, op: ObservedOp) -> bool:
        positions = self.verifier._ww_pos
        if op.is_update and op.uid not in positions:
            return False
        return all(
            writer in positions for writer in op.reads_from.values()
        )

    def _drain(self) -> None:
        while (
            self._queue
            and self._queue[0].resp + self.slack <= self._now
            and self._ready(self._queue[0])
        ):
            self.verifier.observe(self._queue.pop(0))


def verify_stream(
    result,  # RunResult; untyped to avoid a protocols dependency
    *,
    condition: str = "m-sc",
) -> StreamingVerifier:
    """Replay a protocol run's records through a streaming verifier.

    Updates' ww positions come from ``result.ww_sequence``; records
    are fed in response order.  The returned verifier's
    :attr:`~StreamingVerifier.violations` should be empty for every
    run of the Section-5 protocols (and is, see the test suite), and
    its verdict coincides with the batch constrained checker.
    """
    verifier = StreamingVerifier(condition)
    records = sorted(result.recorder.records, key=lambda r: r.resp)
    writes_of = {
        record.uid: tuple(
            op.obj for op in record.ops if op.is_write
        )
        for record in records
    }
    # Announce every broadcast slot with its write set (delivery-time
    # knowledge; see observe_ww's docstring).
    for uid in result.ww_sequence:
        verifier.observe_ww(uid, writes_of.get(uid, ()))
    for record in records:
        verifier.observe(
            ObservedOp(
                uid=record.uid,
                process=record.process,
                inv=record.inv,
                resp=record.resp,
                reads_from=dict(record.reads_from),
                writes=tuple(
                    op.obj for op in record.ops if op.is_write
                ),
                is_update=record.is_update,
            )
        )
    return verifier
