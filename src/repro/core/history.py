"""Histories: executions of a concurrent system (Section 2.2).

A history is modelled as a set of m-operations together with a
reads-from map.  The various partial orders the paper layers on top of
a history (process order, reads-from order, real-time order, object
order) are derived by :mod:`repro.core.orders`.

The paper assumes an imaginary initial m-operation that writes every
object before any process runs (Section 2.1); :class:`History` always
materialises it (uid :data:`~repro.core.operation.INIT_UID`), so the
reads-from map is total on external reads.

Reads-from derivation
---------------------

When every write in a history carries a globally unique value —
which all workload generators in this package guarantee — the
reads-from relation is derivable by value matching.  When values are
ambiguous the caller must pass an explicit ``reads_from`` map;
otherwise :class:`~repro.errors.ReadsFromError` is raised.  Histories
recorded from protocol runs (:mod:`repro.protocols.recorder`) always
supply the exact map obtained from version vectors (D 5.1 / D 5.6).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.operation import INIT_UID, MOperation, initial_mop
from repro.errors import MalformedHistoryError, ReadsFromError

#: A reads-from map: ``(reader_uid, object) -> writer_uid``.
ReadsFromMap = Mapping[Tuple[int, str], int]


class History:
    """An execution history ``(op(H), ~H)`` (Section 2.2).

    The relation ``~H`` itself is *not* stored here: the paper
    parameterises each consistency condition by a different ``~H``
    (process order and reads-from for m-sequential consistency; plus
    real-time order for m-linearizability; plus object order for
    m-normality).  :mod:`repro.core.orders` builds each of these from
    the data held in this class.

    Use :meth:`History.from_mops` rather than the raw constructor; it
    derives the reads-from map and validates well-formedness.
    """

    __slots__ = (
        "_mops",
        "_by_uid",
        "_init",
        "_reads_from",
        "_objects",
        "_index_cache",
    )

    def __init__(
        self,
        mops: Sequence[MOperation],
        init: MOperation,
        reads_from: ReadsFromMap,
    ) -> None:
        self._mops: Tuple[MOperation, ...] = tuple(mops)
        self._init = init
        self._reads_from: Dict[Tuple[int, str], int] = dict(reads_from)
        self._by_uid: Dict[int, MOperation] = {init.uid: init}
        for mop in self._mops:
            if mop.uid in self._by_uid:
                raise MalformedHistoryError(
                    f"duplicate m-operation uid {mop.uid}"
                )
            self._by_uid[mop.uid] = mop
        self._objects: FrozenSet[str] = frozenset(init.wobjects).union(
            *(mop.objects for mop in self._mops)
        ) if self._mops else frozenset(init.wobjects)
        #: Lazily attached :class:`repro.core.index.HistoryIndex`; a
        #: history is immutable once constructed, so derived data never
        #: goes stale.  Typed as ``object`` to avoid a core import cycle.
        self._index_cache: Optional[object] = None
        self._validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_mops(
        cls,
        mops: Sequence[MOperation],
        *,
        initial_values: Optional[Mapping[str, Any]] = None,
        default_initial: Any = 0,
        reads_from: Optional[ReadsFromMap] = None,
    ) -> "History":
        """Build a history from m-operations.

        Args:
            mops: the m-operations of the execution (uid > 0 each).
            initial_values: value written by the imaginary initial
                m-operation, per object.  Objects not mentioned get
                ``default_initial`` (the paper's convention is 0).
            default_initial: see above.
            reads_from: explicit ``(reader_uid, obj) -> writer_uid``
                map.  If omitted, derived by unique-value matching.

        Raises:
            MalformedHistoryError: ill-formed structure.
            ReadsFromError: the reads-from map cannot be derived.
        """
        objects = sorted(set().union(*(m.objects for m in mops)) if mops else set())
        init_values = {obj: default_initial for obj in objects}
        if initial_values:
            for obj, value in initial_values.items():
                init_values[obj] = value
        init = initial_mop(init_values)
        if reads_from is None:
            reads_from = _derive_reads_from(mops, init)
        else:
            reads_from = _complete_reads_from(mops, init, reads_from)
        return cls(mops, init, reads_from)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def mops(self) -> Tuple[MOperation, ...]:
        """The m-operations of the history, excluding the initial one."""
        return self._mops

    @property
    def init(self) -> MOperation:
        """The imaginary initial m-operation (writes all objects)."""
        return self._init

    @property
    def all_mops(self) -> Tuple[MOperation, ...]:
        """Initial m-operation followed by the real ones."""
        return (self._init,) + self._mops

    @property
    def uids(self) -> Tuple[int, ...]:
        """uids of all m-operations including the initial one."""
        return tuple(m.uid for m in self.all_mops)

    @property
    def objects(self) -> FrozenSet[str]:
        """Every shared object touched in the history."""
        return self._objects

    @property
    def processes(self) -> Tuple[int, ...]:
        """Sorted process ids appearing in the history."""
        return tuple(
            sorted({m.process for m in self._mops if m.process is not None})
        )

    @property
    def is_timed(self) -> bool:
        """True iff every m-operation carries inv/resp timestamps."""
        return all(m.inv is not None for m in self._mops)

    def __len__(self) -> int:
        return len(self._mops)

    def __getitem__(self, uid: int) -> MOperation:
        try:
            return self._by_uid[uid]
        except KeyError:
            raise MalformedHistoryError(f"no m-operation with uid {uid}") from None

    def __contains__(self, uid: int) -> bool:
        return uid in self._by_uid

    def subhistory(self, process: int) -> Tuple[MOperation, ...]:
        """``H|P``: this process's m-operations in issue order.

        Issue order is timestamp order when the history is timed, and
        listing order otherwise.
        """
        own = [m for m in self._mops if m.process == process]
        if all(m.inv is not None for m in own):
            own.sort(key=lambda m: m.inv)  # type: ignore[arg-type, return-value]
        return tuple(own)

    # ------------------------------------------------------------------
    # Reads-from queries (D 4.3)
    # ------------------------------------------------------------------

    @property
    def reads_from_map(self) -> Mapping[Tuple[int, str], int]:
        """``(reader_uid, obj) -> writer_uid`` for every external read."""
        return dict(self._reads_from)

    def writer_of(self, reader_uid: int, obj: str) -> int:
        """The uid of the m-operation ``reader`` reads ``obj`` from."""
        try:
            return self._reads_from[(reader_uid, obj)]
        except KeyError:
            raise ReadsFromError(
                f"m-operation {reader_uid} performs no external read of "
                f"{obj!r}"
            ) from None

    def rfobjects(self, reader_uid: int, writer_uid: int) -> FrozenSet[str]:
        """``rfobjects(H, a, b)``: objects that ``a`` reads from ``b``."""
        return frozenset(
            obj
            for (r, obj), w in self._reads_from.items()
            if r == reader_uid and w == writer_uid
        )

    def reads_from_pairs(self) -> FrozenSet[Tuple[int, int]]:
        """``(writer_uid, reader_uid)`` pairs of the ``~rf`` relation."""
        return frozenset(
            (w, r) for (r, _obj), w in self._reads_from.items() if w != r
        )

    # ------------------------------------------------------------------
    # Equivalence (Section 2.2)
    # ------------------------------------------------------------------

    def equivalent_to(self, other: "History") -> bool:
        """Section 2.2 equivalence: same process subhistories + same ~rf.

        Two histories are equivalent iff for every process the process
        subhistories coincide (same m-operations, same per-process
        order) and the reads-from relations are identical.
        """
        if set(self.uids) != set(other.uids):
            return False
        procs = set(self.processes) | set(other.processes)
        for proc in procs:
            mine = tuple(m.uid for m in self.subhistory(proc))
            theirs = tuple(m.uid for m in other.subhistory(proc))
            if mine != theirs:
                return False
        for uid in self.uids:
            if tuple(self[uid].ops) != tuple(other[uid].ops):
                return False
        return dict(self._reads_from) == dict(other._reads_from)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def _validate(self) -> None:
        self._validate_uids()
        self._validate_well_formedness()
        self._validate_reads_from()

    def _validate_uids(self) -> None:
        if self._init.uid != INIT_UID:
            raise MalformedHistoryError(
                f"initial m-operation must have uid {INIT_UID}"
            )
        for mop in self._mops:
            if mop.uid == INIT_UID:
                raise MalformedHistoryError(
                    f"uid {INIT_UID} is reserved for the initial m-operation"
                )
            if mop.process is None:
                raise MalformedHistoryError(
                    f"m-operation {mop.label} has no issuing process"
                )

    def _validate_well_formedness(self) -> None:
        """Each process subhistory must be sequential (Section 2.2).

        For timed histories this means the intervals of one process's
        m-operations are pairwise disjoint.
        """
        if not self.is_timed:
            return
        for proc in self.processes:
            seq = self.subhistory(proc)
            for earlier, later in zip(seq, seq[1:]):
                assert earlier.resp is not None and later.inv is not None
                if not earlier.resp < later.inv:
                    raise MalformedHistoryError(
                        f"process P{proc} is not sequential: "
                        f"{earlier.label} (resp={earlier.resp}) overlaps "
                        f"{later.label} (inv={later.inv})"
                    )

    def _validate_reads_from(self) -> None:
        for (reader_uid, obj), writer_uid in self._reads_from.items():
            reader = self._by_uid.get(reader_uid)
            writer = self._by_uid.get(writer_uid)
            if reader is None or writer is None:
                raise MalformedHistoryError(
                    f"reads-from entry ({reader_uid}, {obj!r}) -> "
                    f"{writer_uid} references unknown m-operations"
                )
            if obj not in reader.external_reads:
                raise MalformedHistoryError(
                    f"{reader.label} has no external read of {obj!r} but "
                    "the reads-from map says it does"
                )
            if obj not in writer.external_writes:
                raise MalformedHistoryError(
                    f"{writer.label} has no external write of {obj!r} but "
                    f"{reader.label} claims to read {obj!r} from it"
                )
            expected = writer.external_writes[obj]
            actual = reader.external_reads[obj]
            if expected != actual:
                raise MalformedHistoryError(
                    f"{reader.label} reads {obj!r}={actual!r} but its "
                    f"reads-from writer {writer.label} wrote {expected!r}"
                )
        # Every external read must be covered.
        for mop in self._mops:
            for obj in mop.external_reads:
                if (mop.uid, obj) not in self._reads_from:
                    raise MalformedHistoryError(
                        f"{mop.label}: external read of {obj!r} has no "
                        "reads-from entry"
                    )

    def __repr__(self) -> str:
        return (
            f"History({len(self._mops)} m-operations, "
            f"{len(self._objects)} objects, "
            f"{len(self.processes)} processes)"
        )

    def pretty(self) -> str:
        """A multi-line human-readable rendering, grouped by process."""
        lines: List[str] = [repr(self)]
        for proc in self.processes:
            parts = []
            for mop in self.subhistory(proc):
                if mop.inv is not None:
                    parts.append(f"{mop} @[{mop.inv:g},{mop.resp:g}]")
                else:
                    parts.append(str(mop))
            lines.append(f"  P{proc}: " + "; ".join(parts))
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Reads-from derivation helpers
# ----------------------------------------------------------------------


def _derive_reads_from(
    mops: Sequence[MOperation], init: MOperation
) -> Dict[Tuple[int, str], int]:
    """Derive the reads-from map by unique-value matching."""
    writers: Dict[Tuple[str, Any], List[int]] = {}
    for mop in (init,) + tuple(mops):
        for obj, value in mop.external_writes.items():
            writers.setdefault((obj, value), []).append(mop.uid)
    result: Dict[Tuple[int, str], int] = {}
    for mop in mops:
        for obj, value in mop.external_reads.items():
            candidates = writers.get((obj, value), [])
            candidates = [uid for uid in candidates if uid != mop.uid]
            if not candidates:
                raise ReadsFromError(
                    f"{mop.label} reads {obj!r}={value!r} but no "
                    "m-operation writes that value"
                )
            if len(candidates) > 1:
                raise ReadsFromError(
                    f"{mop.label} reads {obj!r}={value!r} which is written "
                    f"by {len(candidates)} m-operations; pass an explicit "
                    "reads_from map to disambiguate"
                )
            result[(mop.uid, obj)] = candidates[0]
    return result


def _complete_reads_from(
    mops: Sequence[MOperation],
    init: MOperation,
    explicit: ReadsFromMap,
) -> Dict[Tuple[int, str], int]:
    """Fill gaps in an explicit reads-from map by value matching.

    Entries supplied by the caller win; missing entries are derived
    when unambiguous.
    """
    result: Dict[Tuple[int, str], int] = dict(explicit)
    writers: Dict[Tuple[str, Any], List[int]] = {}
    for mop in (init,) + tuple(mops):
        for obj, value in mop.external_writes.items():
            writers.setdefault((obj, value), []).append(mop.uid)
    for mop in mops:
        for obj, value in mop.external_reads.items():
            key = (mop.uid, obj)
            if key in result:
                continue
            candidates = [
                uid for uid in writers.get((obj, value), []) if uid != mop.uid
            ]
            if not candidates:
                raise ReadsFromError(
                    f"{mop.label} reads {obj!r}={value!r} but no "
                    "m-operation writes that value"
                )
            if len(candidates) > 1:
                raise ReadsFromError(
                    f"{mop.label} reads {obj!r}={value!r} which is written "
                    f"by {len(candidates)} m-operations; supply a complete "
                    "reads_from map to disambiguate"
                )
            result[key] = candidates[0]
    return result
