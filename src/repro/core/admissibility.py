"""Exact admissibility checking (D 4.7) — the NP-complete core.

A history ``H`` is *admissible* with respect to an order ``~H`` iff it
is equivalent to some **legal sequential** history that respects
``~H`` (Section 2.2).  Theorems 1 and 2 show that deciding this is
NP-complete for the orders that define m-sequential consistency and
m-linearizability, so this module implements an exact branch-and-bound
search over linear extensions, with the prunings that make it usable
as a ground-truth oracle on histories of realistic size:

1. **Necessary-condition pre-checks** — the base order must be acyclic
   and the history must be legal w.r.t. its closure (Lemma 6: an
   admissible history is legal).
2. **Constraint propagation** — the iterated ``~rw`` extension
   (D 4.11/D 4.12) adds forced precedences before the search starts;
   if the extension is cyclic the history is inadmissible outright.
3. **Safe moves** — a schedulable *query* m-operation can always be
   scheduled immediately (it changes no object version, so deferring
   it never helps); such moves are taken without branching.
4. **Dead-end detection** — once the write an unscheduled reader must
   read from has been overwritten, no completion exists; the branch is
   abandoned at the moment of overwrite rather than at exhaustion.
5. **Memoization** — failed search states, keyed by the scheduled set
   and the current last-writer map, are never re-explored.

The search state is ``(scheduled mask, last-writer per object)``; an
m-operation is schedulable when all its predecessors under the
(extended) base order are scheduled and, for every object it reads,
the current last writer is exactly the writer its reads-from entry
demands.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.constraints import extended_relation
from repro.core.history import History
from repro.core.legality import is_legal, is_legal_sequence
from repro.core.relations import Relation


@dataclass
class SearchStats:
    """Instrumentation of one admissibility search.

    Attributes:
        nodes: branch-and-bound nodes expanded.
        memo_hits: number of already-failed states re-encountered.
        dead_ends: branches cut by the overwritten-writer test.
        pruned_illegal: histories rejected by the legality pre-check.
        pruned_cyclic: histories rejected by a cyclic (extended) order.
    """

    nodes: int = 0
    memo_hits: int = 0
    dead_ends: int = 0
    pruned_illegal: bool = False
    pruned_cyclic: bool = False


@dataclass
class AdmissibilityResult:
    """Outcome of an admissibility check.

    Attributes:
        admissible: the verdict.
        witness: a legal linear extension (uids, initial m-operation
            first) when admissible; None otherwise.
        stats: search instrumentation.
    """

    admissible: bool
    witness: Optional[List[int]]
    stats: SearchStats = field(default_factory=SearchStats)

    def __bool__(self) -> bool:
        return self.admissible


def check_admissible(
    history: History,
    base: Relation,
    *,
    propagate_rw: bool = True,
    node_limit: Optional[int] = None,
    use_memo: bool = True,
    use_dead_end: bool = True,
    use_safe_moves: bool = True,
    use_legality_precheck: bool = True,
) -> AdmissibilityResult:
    """Decide admissibility of ``history`` w.r.t. the order ``base``.

    Args:
        history: the history under test.
        base: the generating order ``~H`` (process order, reads-from,
            real-time order ... as appropriate for the consistency
            condition; see :mod:`repro.core.orders`).
        propagate_rw: apply the iterated D 4.11 extension before the
            search.  Sound for any history (see
            :func:`repro.core.constraints.extended_relation`); disable
            only to measure its effect.
        node_limit: abort the search (raising :class:`SearchBudget
            Exceeded`) after this many expanded nodes.
        use_memo: memoize failed (scheduled-set, last-writer) states.
        use_dead_end: cut branches whose pending readers can no longer
            be satisfied (their required writer was overwritten).
        use_safe_moves: schedule schedulable queries immediately
            without branching (sound by an exchange argument).
        use_legality_precheck: reject illegal histories outright
            (Lemma 6) before searching.

        The four ``use_*`` switches and ``propagate_rw`` exist for the
        pruning-ablation experiment; production callers leave them on.

    Returns:
        An :class:`AdmissibilityResult`; its ``witness`` is verified
        legal by construction and cross-checked with
        :func:`~repro.core.legality.is_legal_sequence` before return.
    """
    stats = SearchStats()

    # The initial m-operation precedes everything (Section 2.1); make
    # that explicit even if the caller's base order omitted it, so the
    # search always schedules it first.  The copy shares the caller's
    # cached transitive closure (see Relation.copy), so when the base
    # comes from the history index — which already carries the initial
    # fan-out — the pre-check closure below costs nothing extra.
    if set(history.uids) - set(base.nodes):
        rebuilt = Relation(history.uids)
        rebuilt.add_all(base.pairs())
        base = rebuilt
    else:
        base = base.copy()
    for mop in history.mops:
        if (history.init.uid, mop.uid) not in base:
            base.add(history.init.uid, mop.uid)

    closure = base.transitive_closure()
    if not closure.is_acyclic():
        stats.pruned_cyclic = True
        return AdmissibilityResult(False, None, stats)
    if use_legality_precheck and not is_legal(history, closure):
        # Lemma 6: admissibility implies legality.
        stats.pruned_illegal = True
        return AdmissibilityResult(False, None, stats)

    if propagate_rw:
        closure = extended_relation(history, base, iterate=True)
        if not closure.is_acyclic():
            stats.pruned_cyclic = True
            return AdmissibilityResult(False, None, stats)

    witness = _search(
        history,
        closure,
        stats,
        node_limit,
        use_memo=use_memo,
        use_dead_end=use_dead_end,
        use_safe_moves=use_safe_moves,
    )
    if witness is not None:
        assert is_legal_sequence(history, witness), (
            "internal error: search produced a non-legal witness"
        )
    return AdmissibilityResult(witness is not None, witness, stats)


class SearchBudgetExceeded(RuntimeError):
    """The exact admissibility search exceeded its node budget."""


def _search(
    history: History,
    closure: Relation,
    stats: SearchStats,
    node_limit: Optional[int],
    *,
    use_memo: bool = True,
    use_dead_end: bool = True,
    use_safe_moves: bool = True,
) -> Optional[List[int]]:
    """Branch-and-bound over legal linear extensions of ``closure``."""
    uids: Tuple[int, ...] = history.uids
    n = len(uids)
    index = {uid: i for i, uid in enumerate(uids)}
    objects = sorted(history.objects)
    obj_index = {obj: i for i, obj in enumerate(objects)}

    # Predecessor masks from the (extended) order.
    pred_mask = [0] * n
    for a_uid, b_uid in closure.pairs():
        ia, ib = index.get(a_uid), index.get(b_uid)
        if ia is not None and ib is not None and ia != ib:
            pred_mask[ib] |= 1 << ia

    # Per-m-operation external read requirements and writes.
    reads: List[List[Tuple[int, int]]] = [[] for _ in range(n)]  # (obj, writer)
    writes: List[List[int]] = [[] for _ in range(n)]
    readers_of: Dict[int, List[int]] = {}  # obj index -> reader mop indices
    for i, uid in enumerate(uids):
        mop = history[uid]
        for obj in mop.external_reads:
            writer = history.writer_of(uid, obj)
            oi = obj_index[obj]
            reads[i].append((oi, index[writer]))
            readers_of.setdefault(oi, []).append(i)
        for obj in mop.external_writes:
            writes[i].append(obj_index[obj])

    init_idx = index[history.init.uid]
    full_mask = (1 << n) - 1
    failed: Set[Tuple[int, Tuple[int, ...]]] = set()

    # last_writer: tuple over objects of the writing mop index (or -1).
    NO_WRITER = -1

    def schedulable(i: int, done: int, last_writer: Tuple[int, ...]) -> bool:
        if done >> i & 1:
            return False
        if pred_mask[i] & ~done:
            return False
        return all(last_writer[oi] == w for oi, w in reads[i])

    def dead(done: int, last_writer: Tuple[int, ...]) -> bool:
        """Some unscheduled reader's required writer is overwritten."""
        for oi, readers in readers_of.items():
            current = last_writer[oi]
            for i in readers:
                if done >> i & 1:
                    continue
                for roi, w in reads[i]:
                    if roi != oi:
                        continue
                    # Dead when the required writer already ran but is
                    # no longer (and hence never again) the last writer.
                    if done >> w & 1 and current != w:
                        return True
        return False

    def apply(i: int, last_writer: Tuple[int, ...]) -> Tuple[int, ...]:
        if not writes[i]:
            return last_writer
        lst = list(last_writer)
        for oi in writes[i]:
            lst[oi] = i
        return tuple(lst)

    def solve(done: int, last_writer: Tuple[int, ...], prefix: List[int]) -> bool:
        stats.nodes += 1
        if node_limit is not None and stats.nodes > node_limit:
            raise SearchBudgetExceeded(
                f"admissibility search exceeded {node_limit} nodes"
            )
        if done == full_mask:
            return True
        key = (done, last_writer)
        if use_memo and key in failed:
            stats.memo_hits += 1
            return False
        if use_dead_end and dead(done, last_writer):
            stats.dead_ends += 1
            failed.add(key)
            return False

        candidates = [
            i for i in range(n) if schedulable(i, done, last_writer)
        ]
        # Safe move: a query changes no object version; scheduling it
        # now can never hurt, so commit without branching.
        if use_safe_moves:
            for i in candidates:
                if not writes[i]:
                    prefix.append(i)
                    if solve(done | (1 << i), last_writer, prefix):
                        return True
                    prefix.pop()
                    failed.add(key)
                    return False

        for i in candidates:
            prefix.append(i)
            if solve(done | (1 << i), apply(i, last_writer), prefix):
                return True
            prefix.pop()
        failed.add(key)
        return False

    start_writer = tuple([NO_WRITER] * len(objects))
    prefix: List[int] = []
    # The initial m-operation is always first (it has no predecessors
    # and everything depends on its writes); let the generic machinery
    # handle it — it is schedulable at the start because it reads
    # nothing.
    if not solve(0, start_writer, prefix):
        return None
    assert prefix[0] == init_idx
    return [uids[i] for i in prefix]


def count_legal_linearizations(
    history: History, base: Relation, *, limit: int = 100000
) -> int:
    """Count legal linear extensions of ``base`` (up to ``limit``).

    Exhaustive — exponential; used by tests on tiny histories to
    cross-validate the branch-and-bound search against brute force.
    """
    closure = base.transitive_closure()
    if not closure.is_acyclic():
        return 0
    count = 0
    for order in closure.linear_extensions(limit=limit):
        if is_legal_sequence(history, order):
            count += 1
    return count
