"""Binary relations over m-operation identifiers.

Histories in the paper are pairs ``(op(H), ~H)`` where ``~H`` is an
irreflexive transitive relation on the m-operations.  This module
provides a small relation algebra used by every definition in Sections
2-5: union, transitive closure, acyclicity, topological extension, and
linear-extension enumeration.

The implementation represents successor sets as integer bitmasks over a
fixed, ordered universe of node identifiers.  The transitive closure is
computed lazily and cached on the relation (mutation invalidates it):
acyclic relations — the common case, since every generating order of an
admissible history is a partial order — use a single reverse-topological
sparse propagation pass, ``O(E * n/64)`` word operations over the
*generating* edges, so relations built from cover edges (per-process
chains, reads-from) close in near-linear time.  Cyclic relations fall
back to the bit-parallel Warshall fixpoint.  :class:`IncrementalClosure`
maintains reachability under online edge insertion for the streaming
consumers (recorder / chaos audits).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import RelationError

Pair = Tuple[int, int]


class Relation:
    """An irreflexive binary relation over a fixed universe of node ids.

    The universe is fixed at construction; adding a pair with an
    unknown endpoint raises :class:`RelationError`.  Self-loops are
    rejected at :meth:`add` time (the paper's relations are
    irreflexive), but a *cycle* created by several pairs is permitted
    and detectable via :meth:`is_acyclic` — e.g. Theorem 2 notes that
    ``~H`` may be acyclic while ``H`` is not m-linearizable, so cycle
    detection is a first-class query rather than an invariant.
    """

    __slots__ = ("_nodes", "_index", "_succ", "_closure_succ", "_acyclic")

    def __init__(self, nodes: Iterable[int], pairs: Iterable[Pair] = ()) -> None:
        self._nodes: Tuple[int, ...] = tuple(dict.fromkeys(nodes))
        self._index: Dict[int, int] = {n: i for i, n in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):  # pragma: no cover
            raise RelationError("duplicate node ids in relation universe")
        self._succ: List[int] = [0] * len(self._nodes)
        #: Cached closure successor masks (None until computed); the
        #: cached list is never mutated in place, so copies may share it.
        self._closure_succ: Optional[List[int]] = None
        self._acyclic: Optional[bool] = None
        for a, b in pairs:
            self.add(a, b)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        """The universe of node ids, in construction order."""
        return self._nodes

    def __len__(self) -> int:
        """Number of pairs in the relation."""
        return sum(mask.bit_count() for mask in self._succ)

    def __contains__(self, pair: Pair) -> bool:
        a, b = pair
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return False
        return bool(self._succ[ia] >> ib & 1)

    def pairs(self) -> Iterator[Pair]:
        """Iterate over all ``(a, b)`` pairs in the relation."""
        for ia, mask in enumerate(self._succ):
            a = self._nodes[ia]
            while mask:
                low = mask & -mask
                ib = low.bit_length() - 1
                yield (a, self._nodes[ib])
                mask ^= low

    def successors(self, a: int) -> Set[int]:
        """The set ``{b : a ~ b}``."""
        ia = self._require(a)
        return self._unpack(self._succ[ia])

    def predecessors(self, b: int) -> Set[int]:
        """The set ``{a : a ~ b}``."""
        ib = self._require(b)
        return {
            self._nodes[ia]
            for ia in range(len(self._nodes))
            if self._succ[ia] >> ib & 1
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, a: int, b: int) -> None:
        """Add the pair ``a ~ b``; self-loops are rejected."""
        if a == b:
            raise RelationError(f"relation is irreflexive; cannot add ({a}, {b})")
        ia = self._require(a)
        ib = self._require(b)
        bit = 1 << ib
        if not self._succ[ia] & bit:
            self._closure_succ = None
            self._acyclic = None
            self._succ[ia] |= bit

    def add_all(self, pairs: Iterable[Pair]) -> None:
        """Add every pair in ``pairs``."""
        for a, b in pairs:
            self.add(a, b)

    def discard(self, a: int, b: int) -> None:
        """Remove the pair ``a ~ b`` if present."""
        ia = self._require(a)
        ib = self._require(b)
        bit = 1 << ib
        if self._succ[ia] & bit:
            self._closure_succ = None
            self._acyclic = None
            self._succ[ia] &= ~bit

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def copy(self) -> "Relation":
        """An independent copy sharing the same universe.

        The cached closure (if any) is carried over by reference: the
        cache list is immutable once computed, and any mutation of the
        copy invalidates its own reference without touching the
        original's.
        """
        clone = Relation(self._nodes)
        clone._succ = list(self._succ)
        clone._closure_succ = self._closure_succ
        clone._acyclic = self._acyclic
        return clone

    def union(self, other: "Relation") -> "Relation":
        """The union of two relations over the same universe."""
        self._check_same_universe(other)
        result = Relation(self._nodes)
        result._succ = [
            mine | theirs for mine, theirs in zip(self._succ, other._succ)
        ]
        return result

    def __or__(self, other: "Relation") -> "Relation":
        return self.union(other)

    def issubset(self, other: "Relation") -> bool:
        """True iff every pair of ``self`` is also in ``other``."""
        self._check_same_universe(other)
        return all(
            mine & ~theirs == 0 for mine, theirs in zip(self._succ, other._succ)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._nodes == other._nodes and self._succ == other._succ

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is unhashable")

    def transitive_closure(self) -> "Relation":
        """The transitive closure, as a new relation.

        Computed lazily and cached: repeated calls (and calls on
        :meth:`copy`-derived relations that have not been mutated)
        reuse the same successor masks.  The returned relation is its
        own closure, so chaining ``.transitive_closure()`` or asking it
        :meth:`is_acyclic` costs nothing further.
        """
        if self._closure_succ is None:
            self._compute_closure()
        assert self._closure_succ is not None
        result = Relation(self._nodes)
        result._succ = list(self._closure_succ)
        result._closure_succ = self._closure_succ
        result._acyclic = self._acyclic
        return result

    def _compute_closure(self) -> None:
        """Populate the closure cache (and the acyclicity flag).

        Acyclic path: process nodes in reverse topological order; each
        node's reachability is its direct successors plus their (already
        final) reachability — one big-int OR per generating edge.
        Cyclic path: bit-parallel Warshall iterated to fixpoint; nodes
        on cycles end up with their own bit set (self-reachability),
        which :meth:`is_acyclic` inspects.
        """
        order = self._topo_indices()
        if order is not None:
            succ = [0] * len(self._nodes)
            for i in reversed(order):
                mask = self._succ[i]
                acc = mask
                while mask:
                    low = mask & -mask
                    acc |= succ[low.bit_length() - 1]
                    mask ^= low
                succ[i] = acc
            self._closure_succ = succ
            self._acyclic = True
            return
        n = len(self._nodes)
        succ = list(self._succ)
        changed = True
        while changed:
            changed = False
            for k in range(n):
                bit = 1 << k
                mask_k = succ[k]
                if not mask_k:
                    continue
                for i in range(n):
                    if succ[i] & bit and succ[i] | mask_k != succ[i]:
                        succ[i] |= mask_k
                        changed = True
        self._closure_succ = succ
        self._acyclic = not any(mask >> i & 1 for i, mask in enumerate(succ))

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a digraph, has no cycle."""
        if self._acyclic is None:
            # A complete topological order certifies acyclicity without
            # materialising the closure.
            if self._topo_indices() is not None:
                self._acyclic = True
            else:
                self._acyclic = False
        return self._acyclic

    def is_irreflexive_transitive(self) -> bool:
        """True iff the relation is already transitively closed and acyclic."""
        return self.is_acyclic() and self == self.transitive_closure()

    def is_total_order(self) -> bool:
        """True iff the relation is a strict total order on its universe."""
        closure = self.transitive_closure()
        if not closure.is_acyclic():
            return False
        n = len(self._nodes)
        # Acyclic, so each pair is ordered in at most one direction;
        # totality is then just a pair count.
        ordered = sum(mask.bit_count() for mask in closure._succ)
        return ordered == n * (n - 1) // 2

    def ordered_pair_count(self, nodes: Iterable[int]) -> int:
        """Number of directed pairs ``(a, b)`` with both ends in ``nodes``.

        For an *acyclic* transitively closed relation each related pair
        is counted exactly once, so the result equals the number of
        unordered pairs from ``nodes`` that the order relates — the
        quantity the WW-/OO-constraint checks compare against
        ``C(|nodes|, 2)``.  On cyclic relations mutually reachable
        pairs count twice; callers must check :meth:`is_acyclic` first.
        """
        group = 0
        idxs = []
        for node in nodes:
            i = self._require(node)
            idxs.append(i)
            group |= 1 << i
        total = 0
        for i in idxs:
            total += (self._succ[i] & group & ~(1 << i)).bit_count()
        return total

    def masked_pair_count(self, masks: Sequence[int]) -> int:
        """``sum_i popcount(succ[i] & masks[i])`` over the universe.

        ``masks`` is indexed by universe position.  With symmetric
        masks (e.g. the conflict masks of
        :class:`~repro.core.index.HistoryIndex`) and an acyclic
        transitively closed relation, this counts each related
        masked pair exactly once — the OO-constraint comparison.
        """
        return sum(
            (mask & own).bit_count()
            for own, mask in zip(self._succ, masks)
        )

    def restricted_to(self, nodes: Iterable[int]) -> "Relation":
        """The restriction of the relation to a subset of its universe.

        Self-pairs are dropped: the transitive closure of a *cyclic*
        relation carries self-reachability internally, and a
        restriction of it should remain a (possibly cyclic) relation
        rather than fail.
        """
        keep = [n for n in self._nodes if n in set(nodes)]
        result = Relation(keep)
        keep_set = set(keep)
        for a, b in self.pairs():
            if a in keep_set and b in keep_set and a != b:
                result.add(a, b)
        return result

    # ------------------------------------------------------------------
    # Linear extensions
    # ------------------------------------------------------------------

    def _topo_indices(self) -> Optional[List[int]]:
        """Kahn's algorithm over node *indices*; None when cyclic.

        Ties broken by universe order, so the result is deterministic.
        """
        n = len(self._nodes)
        indegree = [0] * n
        for mask in self._succ:
            m = mask
            while m:
                low = m & -m
                indegree[low.bit_length() - 1] += 1
                m ^= low
        ready = [i for i in range(n) if indegree[i] == 0]
        order: List[int] = []
        while ready:
            i = ready.pop(0)
            order.append(i)
            mask = self._succ[i]
            while mask:
                low = mask & -mask
                j = low.bit_length() - 1
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
                mask ^= low
        if len(order) != n:
            return None
        return order

    def topological_order(self) -> Optional[List[int]]:
        """One linear extension of the relation, or None if cyclic.

        Kahn's algorithm; ties broken by universe order, so the result
        is deterministic.
        """
        order = self._topo_indices()
        if order is None:
            return None
        return [self._nodes[i] for i in order]

    def linear_extensions(self, limit: Optional[int] = None) -> Iterator[List[int]]:
        """Enumerate linear extensions (topological sorts) of the relation.

        Exponentially many in general; ``limit`` caps the number
        yielded.  Used only by brute-force cross-validation tests.
        """
        n = len(self._nodes)
        preds = [0] * n
        for ia, mask in enumerate(self._succ):
            m = mask
            while m:
                low = m & -m
                preds[low.bit_length() - 1] |= 1 << ia
                m ^= low

        count = 0

        def extend(done_mask: int, prefix: List[int]) -> Iterator[List[int]]:
            nonlocal count
            if limit is not None and count >= limit:
                return
            if len(prefix) == n:
                count += 1
                yield list(prefix)
                return
            for i in range(n):
                if done_mask >> i & 1:
                    continue
                if preds[i] & ~done_mask:
                    continue
                prefix.append(self._nodes[i])
                yield from extend(done_mask | (1 << i), prefix)
                prefix.pop()
                if limit is not None and count >= limit:
                    return

        yield from extend(0, [])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, node: int) -> int:
        idx = self._index.get(node)
        if idx is None:
            raise RelationError(f"node {node} is not in the relation universe")
        return idx

    def _check_same_universe(self, other: "Relation") -> None:
        if self._nodes != other._nodes:
            raise RelationError(
                "relations are defined over different universes"
            )

    def _unpack(self, mask: int) -> Set[int]:
        result: Set[int] = set()
        while mask:
            low = mask & -mask
            result.add(self._nodes[low.bit_length() - 1])
            mask ^= low
        return result

    def __repr__(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in self.pairs())
        return f"Relation({len(self._nodes)} nodes: {pairs})"


class IncrementalClosure:
    """Transitive reachability maintained under online node/edge insertion.

    The streaming consumers (history recorder, chaos audits) observe an
    execution one m-operation at a time and need reachability queries
    against the growing order without re-closing from scratch.  This
    keeps both successor and predecessor closure masks; inserting an
    edge ``a -> b`` adds every pair in ``pred*(a) × succ*(b)`` —
    correct for arbitrary insertion orders, including edges that close
    a cycle (cycle members end up self-reachable, mirroring the
    Warshall convention in :class:`Relation`).

    Amortised cost per edge is ``O(|pred*(a)| * n/64)`` word
    operations; for the near-chain orders the protocols generate this
    is far below one full re-closure per audit.
    """

    __slots__ = ("_nodes", "_index", "_succ", "_pred", "_cyclic")

    def __init__(self) -> None:
        self._nodes: List[int] = []
        self._index: Dict[int, int] = {}
        self._succ: List[int] = []
        self._pred: List[int] = []
        self._cyclic = False

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def nodes(self) -> Tuple[int, ...]:
        return tuple(self._nodes)

    @property
    def cyclic(self) -> bool:
        """True once any inserted edge closed a cycle."""
        return self._cyclic

    def __contains__(self, node: int) -> bool:
        return node in self._index

    def add_node(self, node: int) -> None:
        """Register a node; idempotent."""
        if node in self._index:
            return
        self._index[node] = len(self._nodes)
        self._nodes.append(node)
        self._succ.append(0)
        self._pred.append(0)

    def add_edge(self, a: int, b: int) -> None:
        """Insert ``a -> b`` (registering endpoints as needed)."""
        if a == b:
            raise RelationError(
                f"relation is irreflexive; cannot add ({a}, {b})"
            )
        self.add_node(a)
        self.add_node(b)
        ia, ib = self._index[a], self._index[b]
        if self._succ[ia] >> ib & 1:
            return
        if ia == ib or self._succ[ib] >> ia & 1:
            self._cyclic = True
        succ = self._succ
        pred = self._pred
        reach = succ[ib] | 1 << ib
        sources = pred[ia] | 1 << ia
        while sources:
            low = sources & -sources
            i = low.bit_length() - 1
            sources ^= low
            new = reach & ~succ[i]
            if new:
                succ[i] |= new
                bit_i = 1 << i
                m = new
                while m:
                    l2 = m & -m
                    pred[l2.bit_length() - 1] |= bit_i
                    m ^= l2

    def has(self, a: int, b: int) -> bool:
        """Reachability query ``a ->* b`` (strictly via inserted edges)."""
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return False
        return bool(self._succ[ia] >> ib & 1)

    def to_relation(self) -> Relation:
        """Snapshot the current closure as a :class:`Relation`.

        Self-reachability bits (cycle members) are dropped to respect
        the Relation irreflexivity invariant; the cyclic flag is the
        authoritative cycle signal.
        """
        rel = Relation(self._nodes)
        rel._succ = [
            mask & ~(1 << i) for i, mask in enumerate(self._succ)
        ]
        if not self._cyclic:
            rel._closure_succ = rel._succ
            rel._acyclic = True
        return rel


def relation_from_sequence(sequence: Sequence[int]) -> Relation:
    """A strict total order relation agreeing with ``sequence``.

    Built from the ``n - 1`` cover edges of the chain and closed once,
    rather than materialising all ``n(n-1)/2`` pairs by hand; the
    result carries its own closure cache, so downstream
    ``transitive_closure()`` / ``is_acyclic()`` calls are free.
    """
    if len(set(sequence)) != len(sequence):
        raise RelationError("sequence contains duplicate node ids")
    rel = Relation(sequence)
    for a, b in zip(sequence, sequence[1:]):
        rel.add(a, b)
    return rel.transitive_closure()
