"""Binary relations over m-operation identifiers.

Histories in the paper are pairs ``(op(H), ~H)`` where ``~H`` is an
irreflexive transitive relation on the m-operations.  This module
provides a small relation algebra used by every definition in Sections
2-5: union, transitive closure, acyclicity, topological extension, and
linear-extension enumeration.

The implementation represents successor sets as integer bitmasks over a
fixed, ordered universe of node identifiers, which keeps the transitive
closure (`O(n^2 * n/64)` via bit-parallel Warshall) and reachability
queries fast enough for histories of several hundred m-operations.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import RelationError

Pair = Tuple[int, int]


class Relation:
    """An irreflexive binary relation over a fixed universe of node ids.

    The universe is fixed at construction; adding a pair with an
    unknown endpoint raises :class:`RelationError`.  Self-loops are
    rejected at :meth:`add` time (the paper's relations are
    irreflexive), but a *cycle* created by several pairs is permitted
    and detectable via :meth:`is_acyclic` — e.g. Theorem 2 notes that
    ``~H`` may be acyclic while ``H`` is not m-linearizable, so cycle
    detection is a first-class query rather than an invariant.
    """

    __slots__ = ("_nodes", "_index", "_succ")

    def __init__(self, nodes: Iterable[int], pairs: Iterable[Pair] = ()) -> None:
        self._nodes: Tuple[int, ...] = tuple(dict.fromkeys(nodes))
        self._index: Dict[int, int] = {n: i for i, n in enumerate(self._nodes)}
        if len(self._index) != len(self._nodes):  # pragma: no cover
            raise RelationError("duplicate node ids in relation universe")
        self._succ: List[int] = [0] * len(self._nodes)
        for a, b in pairs:
            self.add(a, b)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[int, ...]:
        """The universe of node ids, in construction order."""
        return self._nodes

    def __len__(self) -> int:
        """Number of pairs in the relation."""
        return sum(mask.bit_count() for mask in self._succ)

    def __contains__(self, pair: Pair) -> bool:
        a, b = pair
        ia = self._index.get(a)
        ib = self._index.get(b)
        if ia is None or ib is None:
            return False
        return bool(self._succ[ia] >> ib & 1)

    def pairs(self) -> Iterator[Pair]:
        """Iterate over all ``(a, b)`` pairs in the relation."""
        for ia, mask in enumerate(self._succ):
            a = self._nodes[ia]
            while mask:
                low = mask & -mask
                ib = low.bit_length() - 1
                yield (a, self._nodes[ib])
                mask ^= low

    def successors(self, a: int) -> Set[int]:
        """The set ``{b : a ~ b}``."""
        ia = self._require(a)
        return self._unpack(self._succ[ia])

    def predecessors(self, b: int) -> Set[int]:
        """The set ``{a : a ~ b}``."""
        ib = self._require(b)
        return {
            self._nodes[ia]
            for ia in range(len(self._nodes))
            if self._succ[ia] >> ib & 1
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def add(self, a: int, b: int) -> None:
        """Add the pair ``a ~ b``; self-loops are rejected."""
        if a == b:
            raise RelationError(f"relation is irreflexive; cannot add ({a}, {b})")
        ia = self._require(a)
        ib = self._require(b)
        self._succ[ia] |= 1 << ib

    def add_all(self, pairs: Iterable[Pair]) -> None:
        """Add every pair in ``pairs``."""
        for a, b in pairs:
            self.add(a, b)

    def discard(self, a: int, b: int) -> None:
        """Remove the pair ``a ~ b`` if present."""
        ia = self._require(a)
        ib = self._require(b)
        self._succ[ia] &= ~(1 << ib)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------

    def copy(self) -> "Relation":
        """An independent copy sharing the same universe."""
        clone = Relation(self._nodes)
        clone._succ = list(self._succ)
        return clone

    def union(self, other: "Relation") -> "Relation":
        """The union of two relations over the same universe."""
        self._check_same_universe(other)
        result = self.copy()
        for i, mask in enumerate(other._succ):
            result._succ[i] |= mask
        return result

    def __or__(self, other: "Relation") -> "Relation":
        return self.union(other)

    def issubset(self, other: "Relation") -> bool:
        """True iff every pair of ``self`` is also in ``other``."""
        self._check_same_universe(other)
        return all(
            mine & ~theirs == 0 for mine, theirs in zip(self._succ, other._succ)
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._nodes == other._nodes and self._succ == other._succ

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable
        raise TypeError("Relation is unhashable")

    def transitive_closure(self) -> "Relation":
        """The transitive closure, as a new relation.

        Bit-parallel Warshall: for every intermediate node ``k``, every
        node that reaches ``k`` inherits ``k``'s successor mask.
        """
        n = len(self._nodes)
        succ = list(self._succ)
        for k in range(n):
            bit = 1 << k
            mask_k = succ[k]
            if not mask_k:
                continue
            for i in range(n):
                if succ[i] & bit:
                    succ[i] |= mask_k
        # Iterate until fixpoint: one pass of the loop above is not
        # sufficient for all orderings, so repeat while anything grows.
        changed = True
        while changed:
            changed = False
            for k in range(n):
                bit = 1 << k
                mask_k = succ[k]
                if not mask_k:
                    continue
                for i in range(n):
                    if succ[i] & bit and succ[i] | mask_k != succ[i]:
                        succ[i] |= mask_k
                        changed = True
        result = Relation(self._nodes)
        result._succ = succ
        return result

    def is_acyclic(self) -> bool:
        """True iff the relation, viewed as a digraph, has no cycle."""
        closure = self.transitive_closure()
        return not any(mask >> i & 1 for i, mask in enumerate(closure._succ))

    def is_irreflexive_transitive(self) -> bool:
        """True iff the relation is already transitively closed and acyclic."""
        return self.is_acyclic() and self == self.transitive_closure()

    def is_total_order(self) -> bool:
        """True iff the relation is a strict total order on its universe."""
        closure = self.transitive_closure()
        if not closure.is_acyclic():
            return False
        n = len(self._nodes)
        for i in range(n):
            for j in range(i + 1, n):
                if not (closure._succ[i] >> j & 1 or closure._succ[j] >> i & 1):
                    return False
        return True

    def restricted_to(self, nodes: Iterable[int]) -> "Relation":
        """The restriction of the relation to a subset of its universe.

        Self-pairs are dropped: the transitive closure of a *cyclic*
        relation carries self-reachability internally, and a
        restriction of it should remain a (possibly cyclic) relation
        rather than fail.
        """
        keep = [n for n in self._nodes if n in set(nodes)]
        result = Relation(keep)
        keep_set = set(keep)
        for a, b in self.pairs():
            if a in keep_set and b in keep_set and a != b:
                result.add(a, b)
        return result

    # ------------------------------------------------------------------
    # Linear extensions
    # ------------------------------------------------------------------

    def topological_order(self) -> Optional[List[int]]:
        """One linear extension of the relation, or None if cyclic.

        Kahn's algorithm; ties broken by universe order, so the result
        is deterministic.
        """
        n = len(self._nodes)
        indegree = [0] * n
        for mask in self._succ:
            m = mask
            while m:
                low = m & -m
                indegree[low.bit_length() - 1] += 1
                m ^= low
        ready = [i for i in range(n) if indegree[i] == 0]
        order: List[int] = []
        while ready:
            i = ready.pop(0)
            order.append(self._nodes[i])
            mask = self._succ[i]
            while mask:
                low = mask & -mask
                j = low.bit_length() - 1
                indegree[j] -= 1
                if indegree[j] == 0:
                    ready.append(j)
                mask ^= low
        if len(order) != n:
            return None
        return order

    def linear_extensions(self, limit: Optional[int] = None) -> Iterator[List[int]]:
        """Enumerate linear extensions (topological sorts) of the relation.

        Exponentially many in general; ``limit`` caps the number
        yielded.  Used only by brute-force cross-validation tests.
        """
        n = len(self._nodes)
        preds = [0] * n
        for ia, mask in enumerate(self._succ):
            m = mask
            while m:
                low = m & -m
                preds[low.bit_length() - 1] |= 1 << ia
                m ^= low

        count = 0

        def extend(done_mask: int, prefix: List[int]) -> Iterator[List[int]]:
            nonlocal count
            if limit is not None and count >= limit:
                return
            if len(prefix) == n:
                count += 1
                yield list(prefix)
                return
            for i in range(n):
                if done_mask >> i & 1:
                    continue
                if preds[i] & ~done_mask:
                    continue
                prefix.append(self._nodes[i])
                yield from extend(done_mask | (1 << i), prefix)
                prefix.pop()
                if limit is not None and count >= limit:
                    return

        yield from extend(0, [])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, node: int) -> int:
        idx = self._index.get(node)
        if idx is None:
            raise RelationError(f"node {node} is not in the relation universe")
        return idx

    def _check_same_universe(self, other: "Relation") -> None:
        if self._nodes != other._nodes:
            raise RelationError(
                "relations are defined over different universes"
            )

    def _unpack(self, mask: int) -> Set[int]:
        result: Set[int] = set()
        while mask:
            low = mask & -mask
            result.add(self._nodes[low.bit_length() - 1])
            mask ^= low
        return result

    def __repr__(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in self.pairs())
        return f"Relation({len(self._nodes)} nodes: {pairs})"


def relation_from_sequence(sequence: Sequence[int]) -> Relation:
    """A strict total order relation agreeing with ``sequence``."""
    rel = Relation(sequence)
    for i in range(len(sequence)):
        for j in range(i + 1, len(sequence)):
            rel.add(sequence[i], sequence[j])
    return rel
