"""Conflict, interference and legality (Section 2.2, D 4.1-D 4.7).

The paper's central predicates:

* ``conflict(a, b)``   (D 4.1): the m-operations act on a common
  object and at least one writes it.
* ``interfere(H, a, b, c)`` (D 4.2): ``c`` writes some object that
  ``a`` reads from ``b``.
* ``legal(H)``         (D 4.6): for every interfering triple, ``c`` is
  not ordered strictly between ``b`` and ``a`` under ``~H``.
* ``legal`` for *sequential* histories has the direct reading: every
  external read returns the value of the most recent preceding
  external write.

D 4.6 is phrased against a transitive relation; all functions here
accept the *closure* of the order under consideration and document it.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.history import History
from repro.core.index import HistoryIndex
from repro.core.operation import MOperation
from repro.core.relations import Relation

InterferingTriple = Tuple[int, int, int]


def conflict(a: MOperation, b: MOperation) -> bool:
    """D 4.1: distinct, sharing an object at least one of them writes."""
    if a.uid == b.uid:
        return False
    return bool(a.wobjects & b.objects) or bool(b.wobjects & a.objects)


def interfere(history: History, a_uid: int, b_uid: int, c_uid: int) -> bool:
    """D 4.2: ``c`` writes some object that ``a`` reads from ``b``.

    Requires the three m-operations to be pairwise distinct.
    """
    if len({a_uid, b_uid, c_uid}) != 3:
        return False
    c = history[c_uid]
    return bool(history.rfobjects(a_uid, b_uid) & c.wobjects)


def interfering_triples(history: History) -> Iterator[InterferingTriple]:
    """Enumerate all interfering triples ``(a, b, c)`` of the history.

    Iterates the reads-from map rather than all ``n^3`` triples: for
    every reads-from edge ``b --x--> a`` and every other m-operation
    ``c`` writing ``x``, the triple interferes.  The enumeration is
    cached on the history's :class:`~repro.core.index.HistoryIndex`,
    so legality, diagnostics and the ``~rw`` derivation all walk the
    same tuple instead of regenerating it per call.
    """
    yield from HistoryIndex.of(history).interfering_triples()


def is_legal(history: History, closure: Relation) -> bool:
    """D 4.6 legality of a history against a transitively closed order.

    ``legal(H) ≡ ∀ a,b,c interfering: ¬(b ~H c) ∨ ¬(c ~H a)`` — no
    overwriting m-operation may sit strictly between a writer and its
    reader.

    Args:
        history: the history under test.
        closure: the transitive closure of the order ``~H`` under
            consideration.  Passing a non-closed relation gives a
            weaker (unsound) test, so callers must close first.
    """
    index = HistoryIndex.of(history)
    if closure.nodes == history.uids:
        return index.legal_under(closure)
    # Closure over a different universe (e.g. a restricted history's
    # order): fall back to membership tests on the shared triples.
    for a_uid, b_uid, c_uid in index.interfering_triples():
        if (b_uid, c_uid) in closure and (c_uid, a_uid) in closure:
            return False
    return True


def illegal_triples(
    history: History, closure: Relation
) -> List[InterferingTriple]:
    """All interfering triples that violate D 4.6 — for diagnostics.

    Shares :func:`is_legal`'s cached enumeration via the history
    index, so diagnostics never re-enumerate triples.
    """
    index = HistoryIndex.of(history)
    if closure.nodes == history.uids:
        return index.illegal_triples_under(closure)
    return [
        (a, b, c)
        for a, b, c in index.interfering_triples()
        if (b, c) in closure and (c, a) in closure
    ]


def is_legal_sequence(history: History, order: Sequence[int]) -> bool:
    """Directly check legality of a total order of the history's uids.

    Replays ``order`` left to right, tracking the last external writer
    of every object, and checks each m-operation's external reads
    against the current last writer.  This is the operational reading
    of a "legal sequential history" (Section 2.2) and is used both by
    the exact admissibility search and as an independent oracle in
    tests.

    Args:
        history: the history whose m-operations are being sequenced.
        order: a permutation of ``history.uids``; the initial
            m-operation may be omitted, in which case it is implicitly
            first.

    Returns:
        True iff every external read in the sequence reads from the
        most recent preceding external write on its object.
    """
    order = list(order)
    if history.init.uid not in order:
        order = [history.init.uid] + order
    if set(order) != set(history.uids) or len(order) != len(history.uids):
        return False
    if order[0] != history.init.uid:
        return False
    last_writer: Dict[str, int] = {}
    for uid in order:
        mop = history[uid]
        for obj in mop.external_reads:
            expected = history.writer_of(uid, obj)
            if last_writer.get(obj) != expected:
                return False
        for obj in mop.external_writes:
            last_writer[obj] = uid
    return True


def first_illegal_read(
    history: History, order: Sequence[int]
) -> Optional[Tuple[int, str, int, Optional[int]]]:
    """Diagnostic twin of :func:`is_legal_sequence`.

    Returns ``(reader_uid, obj, expected_writer, actual_last_writer)``
    for the first violated read, or None if the sequence is legal.
    """
    order = list(order)
    if history.init.uid not in order:
        order = [history.init.uid] + order
    last_writer: Dict[str, int] = {}
    for uid in order:
        mop = history[uid]
        for obj in mop.external_reads:
            expected = history.writer_of(uid, obj)
            actual = last_writer.get(obj)
            if actual != expected:
                return (uid, obj, expected, actual)
        for obj in mop.external_writes:
            last_writer[obj] = uid
    return None
