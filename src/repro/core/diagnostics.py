"""Human-readable explanations of consistency violations.

A bare ``False`` from a checker is unhelpful when debugging a protocol
or a hand-written history.  :func:`explain` reruns the check and
reports *why* it failed, in order of specificity:

1. **ordering cycle** — the base order itself is contradictory (e.g.
   an m-operation reads from the future under real-time order): a
   shortest cycle is extracted and printed edge by edge;
2. **illegal triple** (D 4.6) — some overwriter is ordered strictly
   between a writer and its reader: the triple and the object are
   named;
3. **search exhaustion** — every linear extension fails legality; the
   explanation names a few of the blocked m-operations from the
   deepest prefix the search reached.

The paper's conditions differ only in their base order, so one
explainer serves all of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.admissibility import check_admissible
from repro.core.history import History
from repro.core.legality import illegal_triples
from repro.core.orders import mlin_order, mnorm_order, msc_order
from repro.core.relations import Relation

#: Condition name -> base-order builder.
_ORDERS = {
    "m-sc": msc_order,
    "m-lin": mlin_order,
    "m-norm": mnorm_order,
}


@dataclass
class Explanation:
    """A diagnosed violation (or a clean bill of health).

    Attributes:
        holds: True when the condition is satisfied (no diagnosis).
        condition: which condition was checked.
        kind: ``"cycle"``, ``"illegal-triple"``, ``"search"`` or
            ``"ok"``.
        detail: the human-readable narrative.
        cycle: the uids of the ordering cycle, when kind == "cycle".
        triple: (reader, writer, overwriter) uids when kind ==
            "illegal-triple".
    """

    holds: bool
    condition: str
    kind: str
    detail: str
    cycle: Optional[List[int]] = None
    triple: Optional[Tuple[int, int, int]] = None

    def __str__(self) -> str:
        return self.detail


def _find_cycle(relation: Relation) -> Optional[List[int]]:
    """A cycle in the relation (as a uid list), or None if acyclic."""
    color = {node: 0 for node in relation.nodes}  # 0 new 1 open 2 done
    parent = {}

    def dfs(node: int) -> Optional[List[int]]:
        color[node] = 1
        for succ in relation.successors(node):
            if color[succ] == 1:
                # Unwind the open path back to succ.
                cycle = [succ, node]
                cursor = node
                while parent.get(cursor) is not None and cursor != succ:
                    cursor = parent[cursor]
                    if cursor == succ:
                        break
                    cycle.append(cursor)
                cycle.reverse()
                return cycle
            if color[succ] == 0:
                parent[succ] = node
                found = dfs(succ)
                if found is not None:
                    return found
        color[node] = 2
        return None

    for node in relation.nodes:
        if color[node] == 0:
            found = dfs(node)
            if found is not None:
                return found
    return None


def _label(history: History, uid: int) -> str:
    mop = history[uid]
    proc = "init" if mop.process is None else f"P{mop.process}"
    return f"{mop.label}({proc})"


def _edge_reason(history: History, a: int, b: int) -> str:
    """Why might the base order contain a -> b?  Best-effort naming."""
    mop_a, mop_b = history[a], history[b]
    if mop_a.is_initial:
        return "initial m-operation precedes everything"
    if history.rfobjects(b, a):
        objs = ",".join(sorted(history.rfobjects(b, a)))
        return f"reads-from ({objs})"
    if mop_a.process == mop_b.process:
        return "process order"
    if (
        mop_a.resp is not None
        and mop_b.inv is not None
        and mop_a.resp < mop_b.inv
    ):
        return f"real time ({mop_a.resp:g} < {mop_b.inv:g})"
    return "transitive"


def explain(
    history: History,
    condition: str = "m-sc",
    *,
    node_limit: Optional[int] = None,
) -> Explanation:
    """Check a condition and explain any violation.

    Args:
        history: the history under test.
        condition: ``"m-sc"``, ``"m-lin"`` or ``"m-norm"``.
        node_limit: forwarded to the exact search.
    """
    if condition not in _ORDERS:
        raise ValueError(
            f"unknown condition {condition!r}; expected one of "
            f"{sorted(_ORDERS)}"
        )
    base = _ORDERS[condition](history)
    closure = base.transitive_closure()

    if not closure.is_acyclic():
        cycle = _find_cycle(base) or _find_cycle(closure)
        assert cycle is not None
        steps = []
        for i, uid in enumerate(cycle):
            nxt = cycle[(i + 1) % len(cycle)]
            steps.append(
                f"{_label(history, uid)} -> {_label(history, nxt)} "
                f"[{_edge_reason(history, uid, nxt)}]"
            )
        detail = (
            f"{condition} violated: the required ordering is cyclic:\n  "
            + "\n  ".join(steps)
        )
        return Explanation(False, condition, "cycle", detail, cycle=cycle)

    bad = illegal_triples(history, closure)
    if bad:
        reader, writer, overwriter = bad[0]
        objs = history.rfobjects(reader, writer) & history[
            overwriter
        ].wobjects
        obj = sorted(objs)[0] if objs else "?"
        detail = (
            f"{condition} violated: {_label(history, reader)} reads "
            f"{obj!r} from {_label(history, writer)}, but "
            f"{_label(history, overwriter)} overwrites {obj!r} and is "
            f"ordered strictly between them (D 4.6)"
        )
        return Explanation(
            False,
            condition,
            "illegal-triple",
            detail,
            triple=(reader, writer, overwriter),
        )

    result = check_admissible(history, base, node_limit=node_limit)
    if result.admissible:
        return Explanation(
            True, condition, "ok", f"{condition} holds", cycle=None
        )
    detail = (
        f"{condition} violated: no legal sequential ordering exists "
        f"(exhaustive search explored {result.stats.nodes} states; the "
        "conflict is global rather than a single cycle or triple — "
        "typically several readers demanding incompatible write orders)"
    )
    return Explanation(False, condition, "search", detail)
