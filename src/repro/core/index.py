"""Shared derived-data layer over a history (the "history index").

Every checking layer in this package — the Section 2.3 checkers, the
Theorem 7 constraint tests, legality (D 4.6), diagnostics, the
admissibility search, the live monitor and the chaos audits — needs
the same derived data: per-process chains, per-object writer
timelines, the reads-from edges, the interfering triples (D 4.2), and
the generating orders ``~p ∪ ~rf [∪ ~t | ∪ ~x]`` with their transitive
closures.  Before this layer each consumer rebuilt all of that from
scratch; :class:`HistoryIndex` computes each piece once per history
and caches it, and :class:`LiveIndex` maintains the same state
incrementally for streaming consumers (protocol recorder, chaos
harness) so an audit never rebuilds a :class:`~repro.core.history.History`.

Cover edges
-----------

The cached generating orders are built from *cover* edges whose
transitive closure equals the full paper order:

* ``~p`` — each process's chain, ``n - 1`` edges (Section 2.1 orders
  are total per process, so the chain's closure is the full order).
* ``~t`` — an interval order (``resp(a) < inv(b)``); sweep m-operations
  by invocation and link each to only the *maximal* already-responded
  predecessors.  An already-responded ``a`` is non-maximal iff some
  responded ``c`` has ``inv(c) > resp(a)``, i.e. iff
  ``resp(a) < max-inv-so-far``; everything it precedes is then reached
  through ``c`` transitively.  Closure equals the full ``~t``.
* ``~x`` — the same sweep per object (``~x`` restricted to one
  object's m-operations is again an interval order, and ``~x`` is the
  union over objects).

This turns the ``O(n²)``-pair order construction that dominated the
constrained checker into near-linear cover generation plus one cached
sparse closure.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.core.history import History
from repro.core.operation import INIT_UID
from repro.core.relations import IncrementalClosure, Relation
from repro.errors import MissingTimestampsError, WindowExceeded

#: ``(a, b, c)``: ``a`` reads from ``b`` some object that ``c`` writes.
InterferingTriple = Tuple[int, int, int]

Pair = Tuple[int, int]

#: condition name -> (include ``~t``, include ``~x``).
CONDITION_ORDERS: Mapping[str, Tuple[bool, bool]] = {
    "m-sc": (False, False),
    "m-lin": (True, False),
    "m-norm": (False, True),
}


@dataclass(frozen=True)
class IndexStats:
    """Size/structure summary of an indexed history."""

    mops: int
    updates: int
    queries: int
    objects: int
    processes: int
    reads_from_edges: int
    interfering_triples: int

    def row(self) -> str:
        return (
            f"{self.mops} mops ({self.updates} upd / {self.queries} qry), "
            f"{self.objects} objects, {self.processes} processes, "
            f"{self.reads_from_edges} rf edges, "
            f"{self.interfering_triples} interfering triples"
        )


def _interval_cover(items: List[Tuple[float, float, int]]) -> List[Pair]:
    """Cover edges of the interval order ``resp(a) < inv(b)``.

    ``items`` are ``(inv, resp, uid)`` triples.  Returns edges whose
    transitive closure equals the full interval order: sweeping by
    invocation, each m-operation is linked to exactly the maximal
    elements of its predecessor set (the responded m-operations whose
    response is at least the running maximum invocation among responded
    ones — anything earlier is dominated transitively).
    """
    items = sorted(items)
    heap: List[Tuple[float, int, float]] = []  # (resp, uid, inv), pending
    resp_sorted: List[float] = []  # responded, ascending resp
    uid_by_resp: List[int] = []
    max_inv = float("-inf")  # max inv among responded
    edges: List[Pair] = []
    for inv, resp, uid in items:
        while heap and heap[0][0] < inv:
            r, u, iv = heapq.heappop(heap)
            resp_sorted.append(r)
            uid_by_resp.append(u)
            if iv > max_inv:
                max_inv = iv
        if resp_sorted:
            # a responded m-op `a` is maximal iff resp(a) >= max_inv:
            # otherwise some responded c has inv(c) > resp(a), so
            # a ~t c ~t current and the edge is redundant.
            start = bisect_left(resp_sorted, max_inv)
            for j in range(start, len(resp_sorted)):
                edges.append((uid_by_resp[j], uid))
        heapq.heappush(heap, (resp, uid, inv))
    return edges


class HistoryIndex:
    """Cached derived data for one :class:`History`.

    Obtain via :meth:`HistoryIndex.of` — the instance is cached on the
    history, so every layer touching the same history (the three
    checkers, legality, diagnostics, metrics, the CLI) shares one
    index and therefore one copy of each derived structure.

    The relations returned by :meth:`base_relation` are shared cached
    objects: treat them as immutable and :meth:`~Relation.copy` before
    mutating (the copy still shares the cached closure until its first
    mutation).
    """

    __slots__ = (
        "history",
        "_chains",
        "_writer_timelines",
        "_rf_pairs",
        "_update_uids",
        "_client_updates",
        "_resp_sorted_uids",
        "_triples",
        "_triples_idx",
        "_positions",
        "_conflict_masks",
        "_writer_masks",
        "_write_conflict_masks",
        "_rf_positional",
        "_bases",
    )

    def __init__(self, history: History) -> None:
        self.history = history
        self._chains: Optional[Dict[int, Tuple[int, ...]]] = None
        self._writer_timelines: Optional[Dict[str, Tuple[int, ...]]] = None
        self._rf_pairs: Optional[Tuple[Pair, ...]] = None
        self._update_uids: Optional[Tuple[int, ...]] = None
        self._client_updates: Optional[Tuple[Tuple[int, int], ...]] = None
        self._resp_sorted_uids: Optional[Tuple[int, ...]] = None
        self._triples: Optional[Tuple[InterferingTriple, ...]] = None
        self._triples_idx: Optional[List[Tuple[int, int, int]]] = None
        self._positions: Dict[int, int] = {
            uid: i for i, uid in enumerate(history.uids)
        }
        self._conflict_masks: Optional[List[int]] = None
        self._writer_masks: Optional[Dict[str, int]] = None
        self._write_conflict_masks: Optional[List[int]] = None
        self._rf_positional: Optional[
            List[Tuple[int, int, int, str]]
        ] = None
        self._bases: Dict[Tuple[str, Tuple[Pair, ...]], Relation] = {}

    @classmethod
    def of(cls, history: History) -> "HistoryIndex":
        """The history's index, created on first use and cached on it."""
        cached = history._index_cache
        if cached is None:
            cached = cls(history)
            history._index_cache = cached
        return cached

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------

    @property
    def process_chains(self) -> Dict[int, Tuple[int, ...]]:
        """Per-process uid chains in issue order (``H|P``, Section 2.2)."""
        if self._chains is None:
            self._chains = {
                proc: tuple(m.uid for m in self.history.subhistory(proc))
                for proc in self.history.processes
            }
        return self._chains

    @property
    def writer_timelines(self) -> Dict[str, Tuple[int, ...]]:
        """Per-object writer uids, initial m-operation first.

        Ordered by response time when the history is timed, listing
        order otherwise — a deterministic timeline either way.
        """
        if self._writer_timelines is None:
            timelines: Dict[str, List[int]] = {
                obj: [INIT_UID] for obj in self.history.init.wobjects
            }
            mops = self.history.mops
            if self.history.is_timed:
                mops = tuple(sorted(mops, key=lambda m: (m.resp, m.uid)))
            for mop in mops:
                for obj in mop.wobjects:
                    timelines.setdefault(obj, [INIT_UID]).append(mop.uid)
            self._writer_timelines = {
                obj: tuple(uids) for obj, uids in timelines.items()
            }
        return self._writer_timelines

    @property
    def reads_from_pairs(self) -> Tuple[Pair, ...]:
        """Sorted ``(writer, reader)`` pairs of ``~rf`` (D 4.3)."""
        if self._rf_pairs is None:
            self._rf_pairs = tuple(sorted(self.history.reads_from_pairs()))
        return self._rf_pairs

    @property
    def update_uids(self) -> Tuple[int, ...]:
        """uids of update m-operations, initial one included (D 4.5)."""
        if self._update_uids is None:
            self._update_uids = tuple(
                m.uid for m in self.history.all_mops if m.is_update
            )
        return self._update_uids

    @property
    def client_updates(self) -> Tuple[Tuple[int, int], ...]:
        """``(uid, process)`` of non-initial update m-operations.

        The structural facts certificate audits consume
        (:meth:`repro.analysis.static.ConstraintCertificate.audit`):
        cached here so repeated certified checks on one history pay
        the O(n) scan once.
        """
        if self._client_updates is None:
            init_uid = self.history.init.uid
            self._client_updates = tuple(
                (m.uid, m.process)
                for m in self.history.all_mops
                if m.is_update and m.uid != init_uid
            )
        return self._client_updates

    @property
    def resp_sorted_uids(self) -> Tuple[int, ...]:
        """Real m-operation uids sorted by response time (timed only)."""
        if self._resp_sorted_uids is None:
            if not self.history.is_timed:
                raise MissingTimestampsError(
                    "response-time ordering requires a timed history"
                )
            self._resp_sorted_uids = tuple(
                m.uid
                for m in sorted(
                    self.history.mops, key=lambda m: (m.resp, m.uid)
                )
            )
        return self._resp_sorted_uids

    def interfering_triples(self) -> Tuple[InterferingTriple, ...]:
        """All interfering triples ``(a, b, c)`` (D 4.2), cached.

        For every reads-from edge ``b --x--> a`` and every other writer
        ``c`` of ``x``, the triple interferes.  Enumerated once per
        history; legality, diagnostics and ``~rw`` derivation all share
        this tuple.
        """
        if self._triples is None:
            triples: List[InterferingTriple] = []
            seen = set()
            timelines = self.writer_timelines
            for (a_uid, obj), b_uid in self.history.reads_from_map.items():
                if a_uid == b_uid:
                    continue
                for c_uid in timelines.get(obj, ()):
                    if c_uid == a_uid or c_uid == b_uid:
                        continue
                    triple = (a_uid, b_uid, c_uid)
                    if triple not in seen:
                        seen.add(triple)
                        triples.append(triple)
            self._triples = tuple(triples)
        return self._triples

    def _positional_triples(self) -> List[Tuple[int, int, int]]:
        """Interfering triples as universe positions, for mask tests."""
        if self._triples_idx is None:
            pos = self._positions
            self._triples_idx = [
                (pos[a], pos[b], pos[c])
                for a, b, c in self.interfering_triples()
            ]
        return self._triples_idx

    # ------------------------------------------------------------------
    # Legality against a closure (D 4.6)
    # ------------------------------------------------------------------

    def _aligned(self, closure: Relation) -> bool:
        return closure.nodes == self.history.uids

    def legal_under(self, closure: Relation) -> bool:
        """D 4.6 scan of the cached triples against a closed order.

        ``closure`` must be the transitive closure of the order under
        test, over the history's full uid universe (as every relation
        built via :meth:`base_relation` is).  One pair of bit tests per
        cached triple.
        """
        succ = closure._succ
        for ia, ib, ic in self._positional_triples():
            if succ[ib] >> ic & 1 and succ[ic] >> ia & 1:
                return False
        return True

    def illegal_triples_under(
        self, closure: Relation
    ) -> List[InterferingTriple]:
        """The D 4.6-violating triples — diagnostic twin of
        :meth:`legal_under`, sharing the same cached enumeration."""
        succ = closure._succ
        bad: List[InterferingTriple] = []
        for triple, (ia, ib, ic) in zip(
            self.interfering_triples(), self._positional_triples()
        ):
            if succ[ib] >> ic & 1 and succ[ic] >> ia & 1:
                bad.append(triple)
        return bad

    def _rf_positional_edges(self) -> List[Tuple[int, int, int, str]]:
        """Reads-from edges as ``(a_uid, pos(a), pos(b), obj)``.

        One entry per proper reads-from edge (reads of an m-op's own
        write are skipped, matching :meth:`interfering_triples`); the
        cached form the mask-based ``~rw`` scan consumes.
        """
        if self._rf_positional is None:
            pos = self._positions
            self._rf_positional = [
                (a_uid, pos[a_uid], pos[b_uid], obj)
                for (a_uid, obj), b_uid in sorted(
                    self.history.reads_from_map.items()
                )
                if a_uid != b_uid
            ]
        return self._rf_positional

    def rw_pairs_under(self, closure: Relation) -> List[Pair]:
        """D 4.11 ``~rw`` pairs against a closed order over the full
        universe — the fast twin of
        :func:`repro.core.constraints.rw_pairs`.

        Mask form of the triple scan: for each reads-from edge
        ``b --x--> a``, every writer ``c`` of ``x`` with ``b ~H c``
        forces ``a ~rw c`` — one AND of the closure row against the
        object's writer mask per edge, instead of one bit test per
        interfering triple.
        """
        succ = closure._succ
        nodes = closure.nodes
        writer_masks = self.writer_masks
        pairs = set()
        for a_uid, ia, ib, obj in self._rf_positional_edges():
            cands = (
                succ[ib]
                & writer_masks.get(obj, 0)
                & ~(1 << ia)
                & ~(1 << ib)
            )
            while cands:
                low = cands & -cands
                pairs.add((a_uid, nodes[low.bit_length() - 1]))
                cands ^= low
        return sorted(pairs)

    # ------------------------------------------------------------------
    # Conflict structure (D 4.1 / D 4.8)
    # ------------------------------------------------------------------

    @property
    def conflict_masks(self) -> List[int]:
        """Per-position bitmask of conflicting m-operations (D 4.1).

        ``conflict_masks[i]`` has bit ``j`` set iff m-operations at
        universe positions ``i`` and ``j`` conflict — they share an
        object at least one of them writes.  Built per object:
        a writer conflicts with every toucher, a toucher with every
        writer.
        """
        if self._conflict_masks is None:
            n = len(self.history.uids)
            touch_mask: Dict[str, int] = {}
            write_mask: Dict[str, int] = {}
            pos = self._positions
            for mop in self.history.all_mops:
                bit = 1 << pos[mop.uid]
                for obj in mop.objects:
                    touch_mask[obj] = touch_mask.get(obj, 0) | bit
                for obj in mop.wobjects:
                    write_mask[obj] = write_mask.get(obj, 0) | bit
            masks = [0] * n
            for mop in self.history.all_mops:
                i = pos[mop.uid]
                acc = 0
                for obj in mop.objects:
                    if obj in mop.wobjects:
                        acc |= touch_mask[obj]
                    else:
                        acc |= write_mask.get(obj, 0)
                masks[i] = acc & ~(1 << i)
            self._conflict_masks = masks
        return self._conflict_masks

    @property
    def conflict_pair_count(self) -> int:
        """Number of unordered conflicting pairs (the OO denominator)."""
        return sum(mask.bit_count() for mask in self.conflict_masks) // 2

    @property
    def writer_masks(self) -> Dict[str, int]:
        """Per-object bitmask of writer universe positions.

        ``writer_masks[x]`` has bit ``i`` set iff the m-operation at
        universe position ``i`` writes ``x`` (the initial m-operation
        included) — the row the mask-based ``~rw`` scan and the WO
        masks AND against.
        """
        if self._writer_masks is None:
            pos = self._positions
            masks: Dict[str, int] = {}
            for obj, timeline in self.writer_timelines.items():
                acc = 0
                for uid in timeline:
                    acc |= 1 << pos[uid]
                masks[obj] = acc
            self._writer_masks = masks
        return self._writer_masks

    @property
    def write_conflict_masks(self) -> List[int]:
        """Per-position bitmask of co-writers (the WO analogue of
        :attr:`conflict_masks`).

        ``write_conflict_masks[i]`` has bit ``j`` set iff the
        m-operations at universe positions ``i`` and ``j`` both write
        some common object — exactly the pairs the WO-constraint
        (D 4.10) requires ordered.
        """
        if self._write_conflict_masks is None:
            n = len(self.history.uids)
            masks = [0] * n
            pos = self._positions
            writer_masks = self.writer_masks
            for mop in self.history.all_mops:
                wobjects = mop.wobjects
                if not wobjects:
                    continue
                i = pos[mop.uid]
                acc = 0
                for obj in wobjects:
                    acc |= writer_masks[obj]
                masks[i] = acc & ~(1 << i)
            self._write_conflict_masks = masks
        return self._write_conflict_masks

    @property
    def write_conflict_pair_count(self) -> int:
        """Number of unordered co-writing pairs (the WO denominator)."""
        return (
            sum(mask.bit_count() for mask in self.write_conflict_masks) // 2
        )

    # ------------------------------------------------------------------
    # Generating orders (Section 2.3) from cover edges
    # ------------------------------------------------------------------

    def base_relation(
        self, condition: str, extra_pairs: Tuple[Pair, ...] = ()
    ) -> Relation:
        """The cached generating order ``~H`` for a condition.

        Built from cover edges (initial-m-op fan-out, per-process
        chains, ``~rf``, and the ``~t``/``~x`` interval covers — see
        the module docstring); the transitive closure equals the full
        paper order and is itself cached on the returned relation.

        The result is shared: do not mutate it — ``.copy()`` first.
        ``extra_pairs`` must be a normalised (sorted, deduplicated,
        irreflexive) tuple so equal requests hit the same cache entry.
        """
        if condition not in CONDITION_ORDERS:
            raise ValueError(
                f"unknown condition {condition!r}; expected one of "
                f"{tuple(CONDITION_ORDERS)}"
            )
        key = (condition, extra_pairs)
        rel = self._bases.get(key)
        if rel is None:
            if extra_pairs:
                rel = self.base_relation(condition).copy()
                for a, b in extra_pairs:
                    rel.add(a, b)
            else:
                real_time, objects = CONDITION_ORDERS[condition]
                history = self.history
                rel = Relation(history.uids)
                init_uid = history.init.uid
                for mop in history.mops:
                    rel.add(init_uid, mop.uid)
                for chain in self.process_chains.values():
                    for a, b in zip(chain, chain[1:]):
                        rel.add(a, b)
                for writer, reader in self.reads_from_pairs:
                    rel.add(writer, reader)
                if real_time:
                    rel.add_all(self.real_time_cover())
                if objects:
                    rel.add_all(self.object_cover())
            self._bases[key] = rel
        return rel

    def closure(
        self, condition: str, extra_pairs: Tuple[Pair, ...] = ()
    ) -> Relation:
        """Transitive closure of :meth:`base_relation` (cached)."""
        return self.base_relation(condition, extra_pairs).transitive_closure()

    def real_time_cover(self) -> List[Pair]:
        """Cover edges of ``~t`` (without the initial fan-out)."""
        history = self.history
        if not history.is_timed:
            raise MissingTimestampsError(
                "real-time order requires inv/resp timestamps on every "
                "m-operation"
            )
        return _interval_cover(
            [(m.inv, m.resp, m.uid) for m in history.mops]
        )

    def object_cover(self) -> List[Pair]:
        """Cover edges of ``~x`` (without the initial fan-out)."""
        history = self.history
        if not history.is_timed:
            raise MissingTimestampsError(
                "object order requires inv/resp timestamps on every "
                "m-operation"
            )
        groups: Dict[str, List[Tuple[float, float, int]]] = {}
        for mop in history.mops:
            for obj in mop.objects:
                groups.setdefault(obj, []).append((mop.inv, mop.resp, mop.uid))
        edges = set()
        for items in groups.values():
            edges.update(_interval_cover(items))
        return sorted(edges)

    # ------------------------------------------------------------------
    # Summary
    # ------------------------------------------------------------------

    def stats(self) -> IndexStats:
        history = self.history
        updates = len(self.update_uids) - 1  # exclude the initial m-op
        return IndexStats(
            mops=len(history.mops),
            updates=updates,
            queries=len(history.mops) - updates,
            objects=len(history.objects),
            processes=len(history.processes),
            reads_from_edges=len(self.reads_from_pairs),
            interfering_triples=len(self.interfering_triples()),
        )


class LiveIndex:
    """Incrementally maintained order + legality state for a live run.

    Streaming twin of :class:`HistoryIndex` for the protocol recorder
    and the chaos harness: instead of rebuilding a ``History`` and
    re-deriving everything per audit, the cluster feeds completions
    (:meth:`observe`) and broadcast deliveries (:meth:`announce`) as
    they happen, and :meth:`audit` answers in ``O(triples)`` bit tests
    against an :class:`~repro.core.relations.IncrementalClosure`.

    The maintained order is ``~p ∪ ~rf ∪ ~ww`` plus the initial
    fan-out — exactly the base the batch m-sc check uses with a run's
    ``ww_pairs()`` as ``extra_pairs`` — and the interfering triples
    accumulate as reads-from edges and writers appear.  Both the edge
    set and the triple set only grow, so a violation reported mid-run
    is permanent (and will also be flagged by the end-of-run batch
    check); a clean mid-run audit is provisional.

    Like :class:`~repro.core.monitor.LiveMonitor`, completions may
    arrive before the writers they read from are announced; such
    completions are buffered and applied once their dependencies are
    known.
    """

    __slots__ = (
        "_closure",
        "_last_update",
        "_last_by_process",
        "_writers",
        "_rf_by_obj",
        "_triples",
        "_announced",
        "_pending",
        "applied",
        "announced",
        "audits",
    )

    def __init__(self) -> None:
        self._closure = IncrementalClosure()
        self._closure.add_node(INIT_UID)
        self._last_update: Optional[int] = None
        self._last_by_process: Dict[int, int] = {}
        self._writers: Dict[str, List[int]] = {}
        self._rf_by_obj: Dict[str, List[Tuple[int, int]]] = {}
        self._triples: List[InterferingTriple] = []
        self._announced = {INIT_UID}
        self._pending: List[
            Tuple[int, int, Dict[str, int], bool]
        ] = []
        #: completions applied to the order so far.
        self.applied = 0
        #: broadcast deliveries registered so far.
        self.announced = 0
        #: audits run so far.
        self.audits = 0

    # ------------------------------------------------------------------
    # Feeding
    # ------------------------------------------------------------------

    def announce(self, uid: int, writes: Iterable[str]) -> None:
        """Register a broadcast delivery: ``uid`` wrote ``writes``.

        Consecutive announcements form the ``~ww`` chain (D 5.3).
        Idempotent per uid (only the first delivery counts, matching
        the recorder's ``ww_sequence``).
        """
        if uid in self._announced:
            return
        self._announced.add(uid)
        self.announced += 1
        closure = self._closure
        closure.add_node(uid)
        closure.add_edge(INIT_UID, uid)
        if self._last_update is not None:
            closure.add_edge(self._last_update, uid)
        self._last_update = uid
        for obj in writes:
            for a_uid, b_uid in self._rf_by_obj.get(obj, ()):
                if uid != a_uid and uid != b_uid:
                    self._triples.append((a_uid, b_uid, uid))
            self._writers.setdefault(obj, [INIT_UID]).append(uid)
        self._drain()

    def observe(
        self,
        uid: int,
        process: int,
        reads_from: Mapping[str, int],
        is_update: bool,
    ) -> None:
        """Register a completed m-operation at its issuing process."""
        self._pending.append((uid, process, dict(reads_from), is_update))
        self._drain()

    def _ready(self, entry: Tuple[int, int, Dict[str, int], bool]) -> bool:
        uid, _process, reads_from, is_update = entry
        if is_update and uid not in self._announced:
            return False
        return all(w in self._announced for w in reads_from.values())

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for i, entry in enumerate(self._pending):
                if self._ready(entry):
                    del self._pending[i]
                    self._apply(entry)
                    progressed = True
                    break

    def _apply(self, entry: Tuple[int, int, Dict[str, int], bool]) -> None:
        uid, process, reads_from, _is_update = entry
        closure = self._closure
        closure.add_node(uid)
        closure.add_edge(INIT_UID, uid)
        prev = self._last_by_process.get(process)
        if prev is not None and prev != uid:
            closure.add_edge(prev, uid)
        self._last_by_process[process] = uid
        for obj, writer in reads_from.items():
            if writer != uid:
                closure.add_edge(writer, uid)
                for c_uid in self._writers.setdefault(obj, [INIT_UID]):
                    if c_uid != uid and c_uid != writer:
                        self._triples.append((uid, writer, c_uid))
                self._rf_by_obj.setdefault(obj, []).append((uid, writer))
        self.applied += 1

    # ------------------------------------------------------------------
    # Auditing
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Completions buffered awaiting their writers' announcements."""
        return len(self._pending)

    def audit(self) -> Optional[str]:
        """Check the accumulated order; None if clean so far.

        Theorem 7 under the WW-constraint (discharged by the ``~ww``
        chain): the run is m-sequentially consistent w.r.t. the
        accumulated order iff it is acyclic and legal (D 4.6).
        Monotone — a reported violation can never be retracted by
        later m-operations.
        """
        self.audits += 1
        closure = self._closure
        if closure.cyclic:
            return "order cycle among applied m-operations"
        for a_uid, b_uid, c_uid in self._triples:
            if closure.has(b_uid, c_uid) and closure.has(c_uid, a_uid):
                return (
                    f"illegal triple (D 4.6): m-op {a_uid} reads from "
                    f"{b_uid} but writer {c_uid} is ordered between them"
                )
        return None

    @property
    def consistent(self) -> bool:
        """Boolean form of :meth:`audit`."""
        return self.audit() is None

    def snapshot(self) -> Relation:
        """The current closed order as a :class:`Relation`."""
        return self._closure.to_relation()


class WindowedIndex:
    """Bounded-memory streaming auditor — the windowed twin of
    :class:`LiveIndex`.

    :class:`LiveIndex` maintains an incremental transitive closure,
    whose bitmask rows grow quadratically with the run; an unbounded
    stream eventually exhausts memory.  ``WindowedIndex`` keeps the
    same feeding interface (:meth:`announce` / :meth:`observe` /
    :meth:`audit`) but replaces the closure with the ``~ww``
    chain-position scan of :mod:`repro.core.plan`: every broadcast
    delivery gets a chain position, each process carries a *mark* (the
    highest chain position visible to it), and a completed read is
    legal iff no other writer of the object sits between its writer
    and the reader's mark — one :func:`bisect <bisect.bisect_right>`
    per read against the object's retained writer positions.

    **Epoch checkpoints.**  Every ``window`` announcements the index
    seals the closed prefix: writer positions more than ``window``
    behind the delivery frontier are discarded, keeping only the
    *sealed head* (the newest discarded writer — reads from it remain
    decidable).  Retained state is O(objects × window) plus one
    integer per announced uid; the quadratic closure state is gone.
    A read reaching behind a sealed prefix is a *refusal*, never a
    wrong verdict: it is counted in :attr:`window_refusals` (and
    raised as :class:`~repro.errors.WindowExceeded` when
    ``strict=True``) — re-run with a larger window or a full
    :class:`LiveIndex` to decide it.

    **Fidelity.**  Violations reported here are real (the scan is the
    plan engine's, cross-validated against the closure checker), but
    the streaming mark is a lower bound on the batch mark: it folds
    the process predecessor's mark and the read-from writers'
    *positions*, not their full marks, so a violation visible only
    through a longer chain of happened-before hops may surface later
    than :class:`LiveIndex` would report it — the same contract as
    :class:`~repro.core.monitor.StreamingVerifier`, and the end-of-run
    batch check remains the authority.
    """

    __slots__ = (
        "window",
        "strict",
        "_pos",
        "_next_pos",
        "_writer_pos",
        "_writer_uid",
        "_pruned",
        "_mark_by_process",
        "_announced",
        "_pending",
        "_violation",
        "applied",
        "announced",
        "audits",
        "epochs",
        "sealed",
        "window_refusals",
    )

    def __init__(self, window: int, *, strict: bool = False) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        #: retained ``~ww`` depth, in broadcast positions.
        self.window = window
        #: raise :class:`WindowExceeded` on refusal instead of counting.
        self.strict = strict
        self._pos: Dict[int, int] = {INIT_UID: 0}
        self._next_pos = 1
        self._writer_pos: Dict[str, List[int]] = {}
        self._writer_uid: Dict[str, List[int]] = {}
        self._pruned: Dict[str, bool] = {}
        self._mark_by_process: Dict[int, int] = {}
        self._announced = {INIT_UID}
        self._pending: List[Tuple[int, int, Dict[str, int], bool]] = []
        self._violation: Optional[str] = None
        #: completions applied to the scan so far.
        self.applied = 0
        #: broadcast deliveries registered so far.
        self.announced = 0
        #: audits run so far.
        self.audits = 0
        #: prefix seals performed (one per ``window`` announcements).
        self.epochs = 0
        #: writer-timeline slots discarded by sealing.
        self.sealed = 0
        #: reads refused for reaching behind a sealed prefix.
        self.window_refusals = 0

    # ------------------------------------------------------------------
    # Feeding (LiveIndex-compatible)
    # ------------------------------------------------------------------

    def announce(self, uid: int, writes: Iterable[str]) -> None:
        """Register a broadcast delivery: ``uid`` wrote ``writes``.

        Consecutive announcements form the ``~ww`` chain (D 5.3);
        idempotent per uid, like :meth:`LiveIndex.announce`.
        """
        if uid in self._announced:
            return
        self._announced.add(uid)
        self.announced += 1
        p = self._next_pos
        self._next_pos += 1
        self._pos[uid] = p
        for obj in writes:
            self._writer_pos.setdefault(obj, [0]).append(p)
            self._writer_uid.setdefault(obj, [INIT_UID]).append(uid)
        if p % self.window == 0:
            self._seal()
        self._drain()

    def observe(
        self,
        uid: int,
        process: int,
        reads_from: Mapping[str, int],
        is_update: bool,
    ) -> None:
        """Register a completed m-operation at its issuing process."""
        self._pending.append((uid, process, dict(reads_from), is_update))
        self._drain()

    def _seal(self) -> None:
        """Epoch checkpoint: discard writer positions behind the window.

        Keeps the sealed head — the newest discarded writer — so a
        read from it is still decidable; anything older refuses.
        """
        floor = self._next_pos - 1 - self.window
        if floor <= 0:
            return
        self.epochs += 1
        for obj, positions in self._writer_pos.items():
            cut = bisect_left(positions, floor) - 1
            if cut <= 0:
                continue
            del positions[:cut]
            del self._writer_uid[obj][:cut]
            self._pruned[obj] = True
            self.sealed += cut

    def _ready(self, entry: Tuple[int, int, Dict[str, int], bool]) -> bool:
        uid, _process, reads_from, is_update = entry
        if is_update and uid not in self._announced:
            return False
        return all(w in self._announced for w in reads_from.values())

    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for i, entry in enumerate(self._pending):
                if self._ready(entry):
                    del self._pending[i]
                    self._apply(entry)
                    progressed = True
                    break

    def _apply(self, entry: Tuple[int, int, Dict[str, int], bool]) -> None:
        uid, process, reads_from, is_update = entry
        pos = self._pos
        mark = self._mark_by_process.get(process, 0)
        for writer in reads_from.values():
            wp = pos[writer]
            if wp > mark:
                mark = wp
        own = pos.get(uid) if is_update else None
        if own is not None and mark > own and self._violation is None:
            # A predecessor (process order or reads-from) carries a
            # chain position after this update's own delivery: the
            # visible order contradicts ~ww.
            self._violation = (
                f"order cycle among applied m-operations: update {uid} at "
                f"broadcast position {own} observes position {mark}"
            )
        for obj, writer in sorted(reads_from.items()):
            if writer == uid:
                continue
            b_pos = pos[writer]
            if b_pos >= mark:
                # The writer is the newest delivery the reader can see:
                # nothing can sit between them (decidable even sealed).
                continue
            positions = self._writer_pos.get(obj, [0])
            if self._pruned.get(obj) and b_pos < positions[0]:
                self.window_refusals += 1
                if self.strict:
                    raise WindowExceeded(
                        f"m-op {uid} reads {obj} from {writer} at broadcast "
                        f"position {b_pos}, behind the sealed prefix "
                        f"(oldest retained: {positions[0]}, window "
                        f"{self.window})"
                    )
                continue
            uids = self._writer_uid.get(obj, [INIT_UID])
            j = bisect_right(positions, mark) - 1
            while j >= 0 and uids[j] == uid:
                j -= 1
            if (
                j >= 0
                and positions[j] > b_pos
                and self._violation is None
            ):
                self._violation = (
                    f"illegal triple (D 4.6): m-op {uid} reads from "
                    f"{writer} but writer {uids[j]} is ordered between "
                    "them"
                )
        if own is not None and own > mark:
            mark = own
        self._mark_by_process[process] = mark
        self.applied += 1

    # ------------------------------------------------------------------
    # Auditing (LiveIndex-compatible)
    # ------------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Completions buffered awaiting their writers' announcements."""
        return len(self._pending)

    @property
    def frontier(self) -> int:
        """The newest broadcast position announced so far."""
        return self._next_pos - 1

    @property
    def retained(self) -> int:
        """Writer-timeline slots currently held (memory gauge)."""
        return sum(len(p) for p in self._writer_pos.values())

    def audit(self) -> Optional[str]:
        """Check the stream so far; None if clean.

        Monotone, like :meth:`LiveIndex.audit` — a reported violation
        is permanent.  Refused reads are *not* violations; see
        :attr:`window_refusals`.
        """
        self.audits += 1
        return self._violation

    @property
    def consistent(self) -> bool:
        """Boolean form of :meth:`audit`."""
        return self.audit() is None
