"""Plan/execute verification engine (certificate-driven checking).

The monolithic ``_check`` pipeline computed one global transitive
closure per history — ``O(n²)`` bits of state — which BENCH_checkers
showed dominating end-to-end checking well before 10k m-operations.
This module splits checking into two stages:

* **plan** — :func:`plan_check` inspects the history together with the
  static :class:`~repro.analysis.static.prover.ConstraintCertificate`
  and picks an execution *strategy*:

  - ``"scan"``    — the certificate binds a total update chain
    (``total-update-order``, ``single-updater`` or ``read-only``), so
    legality (D 4.6) lowers to a single forward scan: under
    acyclicity, update-to-update reachability collapses to chain
    position comparison, and "is some writer ordered strictly between
    ``b`` and its reader" becomes one binary search per external read
    against a visibility *mark* computed by dynamic programming over
    the cover DAG.  No closure is ever materialised — ``O((V + E)
    log V)`` total.
  - ``"shard"``   — the certificate is ``object-partitioned`` (the
    D 4.10 family: every object is accessed by a single process), so
    the base order ``~p ∪ ~rf [∪ ~x]`` decomposes *exactly* into
    independent per-process components (every non-initial edge is
    intra-process).  Each shard is checked independently — optionally
    in parallel via :mod:`multiprocessing`, with sub-histories
    serialized through :mod:`repro.core.serialize` — and merged with a
    cheap conjunction plus one global witness pass.
  - ``"closure"`` — the monolithic Theorem-7/dynamic path, kept for
    uncertified histories and certificates without a usable shape.

* **execute** — :func:`run_scan` / :func:`run_sharded` run the plan
  and report acyclicity, legality, the D 4.11 ``~rw`` pairs and (on
  request) a witness linearization.

Verdict fidelity
----------------

Every strategy reproduces the monolithic checker *byte for byte*: the
same ``holds``, and the same witness.  The witness guarantee follows
from replicating the bitmask Kahn order of
:meth:`repro.core.relations.Relation._topo_indices` exactly — same
universe order (``history.uids``), FIFO ready queue, successors
visited in ascending universe position, per-edge deduplication — over
the identical edge set (base cover edges plus the identical ``~rw``
set).  Cross-validated over the 240-history corpus in
``tests/core/test_plan_crossval.py``.

Windowed checking
-----------------

``mode="windowed"`` runs the scan with a bounded lookback: a read
whose visibility mark reaches more than ``window`` chain positions
behind its claimed writer raises
:class:`~repro.errors.WindowExceeded` — a refusal, never a wrong
verdict.  With ``window=None`` the windowed scan is identical to the
full scan.  The *streaming* counterpart (bounded-memory epoch
checkpoints over a live feed) is
:class:`repro.core.index.WindowedIndex`.
"""

from __future__ import annotations

import json
import multiprocessing
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.history import History
from repro.core.index import CONDITION_ORDERS, HistoryIndex
from repro.core.serialize import history_from_dict, history_to_dict
from repro.errors import PlanRefused, RelationError, WindowExceeded

Pair = Tuple[int, int]

#: Verification modes accepted by the planner (and ``VerifyPolicy``).
MODES = ("full", "sharded", "windowed")

#: Certificate rules that bind (or imply) a total update chain.
CHAIN_RULES = ("total-update-order", "single-updater", "read-only")

#: Mark value below every chain position (INIT sits at -1).
_NO_MARK = -2


@dataclass(frozen=True)
class Shard:
    """One independent object group of an object-partitioned history.

    Attributes:
        key: the owning process id (shards are ordered by key, so the
            executor is deterministic regardless of worker count).
        uids: the shard's m-operation uids, in history listing order.
        objects: the objects the shard's m-operations touch.
    """

    key: int
    uids: Tuple[int, ...]
    objects: Tuple[str, ...]


@dataclass(frozen=True)
class CheckPlan:
    """What the executor will run — the planner's output.

    Attributes:
        condition: the consistency condition under check.
        mode: ``"full"``, ``"sharded"`` or ``"windowed"``.
        strategy: ``"scan"``, ``"shard"`` or ``"closure"``.
        chain: the total update chain (scan strategies), excluding the
            initial m-operation.
        shards: the object-group shards (shard strategy).
        workers: worker processes for the shard executor.
        window: lookback bound for windowed scans (None = unbounded).
        certificate_rule: rule of the certificate the plan relies on.
        notes: human-readable planning decisions.
    """

    condition: str
    mode: str
    strategy: str
    chain: Tuple[int, ...] = ()
    shards: Tuple[Shard, ...] = ()
    workers: int = 1
    window: Optional[int] = None
    certificate_rule: Optional[str] = None
    notes: Tuple[str, ...] = ()


@dataclass
class ScanResult:
    """Outcome of one forward legality scan."""

    acyclic: bool
    legal: bool
    rw: Tuple[Pair, ...] = ()
    witness: Optional[List[int]] = None

    @property
    def holds(self) -> bool:
        return self.acyclic and self.legal


# ----------------------------------------------------------------------
# Planner
# ----------------------------------------------------------------------


def plan_check(
    history: History,
    condition: str,
    *,
    mode: str = "full",
    workers: int = 1,
    window: Optional[int] = None,
    extra_pairs: Tuple[Pair, ...] = (),
    certificate=None,
) -> CheckPlan:
    """Choose an execution strategy for one consistency check.

    ``certificate`` must already have passed its structural audit
    (the caller — ``repro.core.consistency._check`` — audits before
    planning); only certificates with ``unlocks_theorem7`` influence
    the plan.

    Raises:
        PlanRefused: ``mode="sharded"`` without an object-partitioned
            certificate (or for m-linearizability, whose real-time
            order crosses shards, or with ``extra_pairs``, which cross
            shards by construction); ``mode="windowed"`` without a
            chain-shaped certificate.
        ValueError: unknown mode or condition.
    """
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")
    if condition not in CONDITION_ORDERS:
        raise ValueError(
            f"unknown condition {condition!r}; expected one of "
            f"{tuple(CONDITION_ORDERS)}"
        )
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    rule = (
        certificate.rule
        if certificate is not None
        and getattr(certificate, "unlocks_theorem7", False)
        else None
    )

    if mode == "full":
        if rule in CHAIN_RULES:
            return CheckPlan(
                condition=condition,
                mode=mode,
                strategy="scan",
                chain=_update_chain(history, certificate),
                certificate_rule=rule,
                notes=(f"{rule} certificate lowers legality to a scan",),
            )
        note = (
            f"{rule} certificate has no update chain; closure strategy"
            if rule is not None
            else "no usable certificate; dynamic closure strategy"
        )
        return CheckPlan(
            condition=condition,
            mode=mode,
            strategy="closure",
            certificate_rule=rule,
            notes=(note,),
        )

    if mode == "windowed":
        if rule not in CHAIN_RULES:
            raise PlanRefused(
                "windowed verification needs a certificate binding a "
                "total update chain (one of "
                f"{CHAIN_RULES}); got "
                f"{rule if rule is not None else 'no certificate'}"
            )
        return CheckPlan(
            condition=condition,
            mode=mode,
            strategy="scan",
            chain=_update_chain(history, certificate),
            window=window,
            certificate_rule=rule,
            notes=(f"windowed {rule} scan, window={window}",),
        )

    # mode == "sharded"
    if rule != "object-partitioned":
        raise PlanRefused(
            "sharded verification needs an object-partitioned "
            "certificate (D 4.10 family); got "
            f"{rule if rule is not None else 'no certificate'}"
        )
    if condition == "m-lin":
        raise PlanRefused(
            "m-linearizability does not shard: the real-time order "
            "~t relates m-operations across object partitions"
        )
    if extra_pairs:
        raise PlanRefused(
            "extra_pairs (e.g. a recorded ~ww chain) order updates "
            "across shards; sharded mode requires an empty extra_pairs"
        )
    return CheckPlan(
        condition=condition,
        mode=mode,
        strategy="shard",
        shards=object_shards(history),
        workers=workers,
        certificate_rule=rule,
        notes=("object-partitioned certificate: one shard per process",),
    )


def _update_chain(history: History, certificate) -> Tuple[int, ...]:
    """The total update chain a chain-shaped certificate stands for."""
    rule = certificate.rule
    if rule == "read-only":
        return ()
    if rule == "total-update-order":
        chain = certificate.chain
        if chain is None:
            raise PlanRefused(
                "total-update-order certificate has no bound chain; "
                "call .with_chain(run.ww_sequence) first"
            )
        return tuple(chain)
    # single-updater: every client update is issued by one process, so
    # its process order totally orders the updates.
    index = HistoryIndex.of(history)
    owners = {process for _uid, process in index.client_updates}
    if not owners:
        return ()
    if len(owners) != 1:  # pragma: no cover - audit rejects this first
        raise PlanRefused(
            f"single-updater certificate but updates come from "
            f"processes {sorted(owners)}"
        )
    (owner,) = owners
    return tuple(
        uid
        for uid in index.process_chains[owner]
        if history[uid].is_update
    )


def object_shards(history: History) -> Tuple[Shard, ...]:
    """Per-process shards of an object-partitioned history.

    Under the object-partitioned rule every object is accessed by one
    process, so conflict components coincide with processes; the shard
    key is the process id and shards are returned in key order.
    """
    by_proc: Dict[int, List[int]] = {}
    for mop in history.mops:
        by_proc.setdefault(mop.process, []).append(mop.uid)
    shards = []
    for proc in sorted(by_proc):
        uids = tuple(by_proc[proc])
        objects = sorted(
            {obj for uid in uids for obj in history[uid].objects}
        )
        shards.append(Shard(key=proc, uids=uids, objects=tuple(objects)))
    return tuple(shards)


def shard_history(history: History, shard: Shard) -> History:
    """The shard's sub-history, ready for an independent check.

    Initial values are restricted to the shard's objects and the
    reads-from map to the shard's readers; under the
    object-partitioned certificate every referenced writer is either
    in-shard or the initial m-operation.
    """
    members = set(shard.uids)
    init_uid = history.init.uid
    init_writes = history.init.external_writes
    reads_from: Dict[Tuple[int, str], int] = {}
    for (reader, obj), writer in history.reads_from_map.items():
        if reader not in members:
            continue
        if writer != init_uid and writer not in members:
            raise PlanRefused(
                f"m#{reader} reads {obj!r} from m#{writer} outside its "
                "shard; the object-partitioned certificate is violated"
            )
        reads_from[(reader, obj)] = writer
    return History.from_mops(
        [history[uid] for uid in shard.uids],
        initial_values={
            obj: init_writes[obj]
            for obj in shard.objects
            if obj in init_writes
        },
        reads_from=reads_from,
    )


# ----------------------------------------------------------------------
# Scan executor
# ----------------------------------------------------------------------


def _cover_successors(
    history: History,
    condition: str,
    extra_pairs: Tuple[Pair, ...],
) -> Tuple[Dict[int, int], List[Set[int]]]:
    """Adjacency sets (universe positions) of the base cover edges.

    The edge set equals the one :meth:`HistoryIndex.base_relation`
    materialises as bitmasks: initial fan-out, per-process chains,
    ``~rf``, the condition's interval cover, and ``extra_pairs`` —
    deduplicated, irreflexive, over ``history.uids``.
    """
    index = HistoryIndex.of(history)
    uids = history.uids
    pos = {uid: i for i, uid in enumerate(uids)}
    succ: List[Set[int]] = [set() for _ in uids]

    def add(a: int, b: int) -> None:
        try:
            ia = pos[a]
            ib = pos[b]
        except KeyError as exc:
            raise RelationError(
                f"node {exc.args[0]} is not in the history's "
                "m-operation universe"
            ) from None
        if ia != ib:
            succ[ia].add(ib)

    init_uid = history.init.uid
    for mop in history.mops:
        add(init_uid, mop.uid)
    for chain in index.process_chains.values():
        for a, b in zip(chain, chain[1:]):
            add(a, b)
    for a, b in index.reads_from_pairs:
        add(a, b)
    real_time, objects = CONDITION_ORDERS[condition]
    if real_time:
        for a, b in index.real_time_cover():
            add(a, b)
    if objects:
        for a, b in index.object_cover():
            add(a, b)
    for a, b in extra_pairs:
        add(a, b)
    return pos, succ


def _fifo_topo(
    uids: Tuple[int, ...], succ: List[Set[int]]
) -> Optional[List[int]]:
    """Kahn topological order replicating ``Relation._topo_indices``.

    FIFO ready queue seeded in ascending universe position, successors
    visited in ascending position — the exact tie-breaking of the
    bitmask implementation, so witnesses are byte-identical to the
    monolithic checker's.  None if cyclic.
    """
    n = len(uids)
    adj = [sorted(s) for s in succ]
    indegree = [0] * n
    for targets in adj:
        for j in targets:
            indegree[j] += 1
    ready = deque(i for i in range(n) if indegree[i] == 0)
    order: List[int] = []
    while ready:
        i = ready.popleft()
        order.append(uids[i])
        for j in adj[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)
    if len(order) != n:
        return None
    return order


def run_scan(
    history: History,
    condition: str,
    chain: Tuple[int, ...],
    *,
    extra_pairs: Tuple[Pair, ...] = (),
    window: Optional[int] = None,
    want_rw: bool = False,
    want_witness: bool = False,
) -> ScanResult:
    """The forward legality scan (Theorem 7 without a closure).

    Preconditions (discharged by the certificate audit): ``chain``
    totally orders every non-initial update and every consecutive
    chain pair is contained in the base order (via ``extra_pairs`` for
    ``total-update-order``, via ``~p`` for ``single-updater``).  Under
    these, for writers ``b, c`` of an acyclic base: ``b ~H+ c`` iff
    ``chainpos(b) < chainpos(c)``, and ``c ~H+ a`` iff ``chainpos(c)
    <= mark(a)`` where ``mark(a)`` is the maximum chain position
    reachable through ``a``'s predecessors (a forward DP over the
    cover DAG).  D 4.6 then reads: some writer of ``x`` other than the
    reader sits at a chain position in ``(pos(b), mark(a)]`` — one
    binary search per external read.

    With ``window`` set, a read whose mark reaches more than
    ``window`` positions behind its claimed writer raises
    :class:`WindowExceeded` (refusal, not a verdict).
    """
    uids = history.uids
    pos, succ = _cover_successors(history, condition, extra_pairs)
    n = len(uids)

    chain_pos: Dict[int, int] = {history.init.uid: -1}
    for i, uid in enumerate(chain):
        chain_pos[uid] = i

    # Kahn pass: acyclicity + the mark DP in one sweep (a node's mark
    # is final when it is popped, since all predecessors popped first).
    adj = [sorted(s) for s in succ]
    indegree = [0] * n
    for targets in adj:
        for j in targets:
            indegree[j] += 1
    marks = [_NO_MARK] * n
    for uid, cp in chain_pos.items():
        i = pos.get(uid)
        if i is not None:
            marks[i] = cp
    ready = deque(i for i in range(n) if indegree[i] == 0)
    seen = 0
    while ready:
        i = ready.popleft()
        seen += 1
        mark = marks[i]
        for j in adj[i]:
            if marks[j] < mark:
                marks[j] = mark
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)
    if seen != n:
        return ScanResult(acyclic=False, legal=False)

    # Per-object writer positions, ascending by chain construction.
    writer_pos: Dict[str, List[int]] = {}
    writer_uid: Dict[str, List[int]] = {}
    for cp, uid in enumerate(chain):
        if uid not in pos:
            continue  # chain slot for an m-op outside this history
        for obj in history[uid].wobjects:
            writer_pos.setdefault(obj, []).append(cp)
            writer_uid.setdefault(obj, []).append(uid)

    reads = sorted(history.reads_from_map.items())
    for (a_uid, obj), b_uid in reads:
        if a_uid == b_uid:
            continue
        b_pos = chain_pos.get(b_uid)
        if b_pos is None:
            raise PlanRefused(
                f"writer m#{b_uid} of {obj!r} is not on the update "
                "chain; the scan strategy cannot order it"
            )
        limit = marks[pos[a_uid]]
        if window is not None and limit - b_pos > window:
            raise WindowExceeded(
                f"m#{a_uid} reads {obj!r} from m#{b_uid} at chain "
                f"position {b_pos}, {limit - b_pos} positions behind "
                f"its visibility mark {limit} (> window {window})"
            )
        positions = writer_pos.get(obj)
        if not positions:
            continue
        k = bisect_right(positions, limit) - 1
        names = writer_uid[obj]
        while k >= 0 and names[k] == a_uid:
            k -= 1
        if k >= 0 and positions[k] > b_pos:
            return ScanResult(acyclic=True, legal=False)

    rw: Tuple[Pair, ...] = ()
    if want_rw or want_witness:
        pairs = set()
        for (a_uid, obj), b_uid in reads:
            if a_uid == b_uid:
                continue
            positions = writer_pos.get(obj)
            if not positions:
                continue
            b_pos = chain_pos[b_uid]
            names = writer_uid[obj]
            for k in range(bisect_right(positions, b_pos), len(positions)):
                if names[k] != a_uid:
                    pairs.add((a_uid, names[k]))
        rw = tuple(sorted(pairs))

    witness: Optional[List[int]] = None
    if want_witness:
        for a_uid, c_uid in rw:
            succ[pos[a_uid]].add(pos[c_uid])
        witness = _fifo_topo(uids, succ)
        assert witness is not None, (
            "Lemma 3/4 violated: extended relation of a legal "
            "constrained history is cyclic"
        )
    return ScanResult(acyclic=True, legal=True, rw=rw, witness=witness)


# ----------------------------------------------------------------------
# Shard executor
# ----------------------------------------------------------------------


@dataclass
class ShardReport:
    """What one shard contributes to the merged verdict."""

    key: int
    acyclic: bool
    legal: bool
    rw: Tuple[Pair, ...]


def _shard_chain(history: History) -> Tuple[int, ...]:
    """A shard holds one process, so ``~p`` totally orders its updates."""
    index = HistoryIndex.of(history)
    chain: List[int] = []
    for proc in sorted(index.process_chains):
        for uid in index.process_chains[proc]:
            if history[uid].is_update:
                chain.append(uid)
    return tuple(chain)


def _check_shard(
    history: History, condition: str, *, want_rw: bool = False
) -> ScanResult:
    # ``~rw`` pairs are only needed to assemble the merged global
    # witness; skipping them keeps the per-shard pass linear (the rw
    # set itself can be quadratic in the shard size).
    return run_scan(
        history, condition, _shard_chain(history), want_rw=want_rw
    )


def _shard_worker(payload: str) -> str:
    """Subprocess entry point: JSON history in, JSON report out."""
    data = json.loads(payload)
    result = _check_shard(
        history_from_dict(data["history"]),
        data["condition"],
        want_rw=data["want_rw"],
    )
    return json.dumps(
        {
            "key": data["key"],
            "acyclic": result.acyclic,
            "legal": result.legal,
            "rw": [list(pair) for pair in result.rw],
        }
    )


# Read-only state inherited by fork()ed pool workers.  Set immediately
# before the pool is created and cleared after; copy-on-write makes the
# full history visible in every worker without any serialization.
_FORK_STATE: Dict[str, object] = {}


def _fork_shard_worker(task):
    key, condition, want_rw = task
    history = _FORK_STATE["history"]
    shard = _FORK_STATE["shards"][key]
    sub = shard_history(history, shard)
    result = _check_shard(sub, condition, want_rw=want_rw)
    return (key, result.acyclic, result.legal, result.rw)


def _map_shards_forked(
    history: History,
    shards: Tuple[Shard, ...],
    condition: str,
    workers: int,
    want_witness: bool,
) -> Optional[List[ShardReport]]:
    """Fan out over a fork pool; ``None`` if fork is unavailable.

    Workers inherit the full history copy-on-write and slice their own
    shard, so nothing but the (key, verdict, rw) tuples crosses the
    process boundary.
    """
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return None
    _FORK_STATE["history"] = history
    _FORK_STATE["shards"] = {shard.key: shard for shard in shards}
    tasks = [(shard.key, condition, want_witness) for shard in shards]
    try:
        with ctx.Pool(min(workers, len(shards))) as pool:
            raw = pool.map(_fork_shard_worker, tasks)
    except PlanRefused:
        raise
    except Exception:
        return None  # pool unavailable (sandbox etc.)
    finally:
        _FORK_STATE.clear()
    return [
        ShardReport(key=key, acyclic=acyclic, legal=legal, rw=tuple(rw))
        for key, acyclic, legal, rw in raw
    ]


def _map_shards_json(
    history: History,
    shards: Tuple[Shard, ...],
    condition: str,
    workers: int,
    want_witness: bool,
) -> Optional[List[ShardReport]]:
    """Spawn-safe fallback: ship each sub-history as a JSON payload."""
    payloads = [
        json.dumps(
            {
                "key": shard.key,
                "condition": condition,
                "want_rw": want_witness,
                "history": history_to_dict(shard_history(history, shard)),
            }
        )
        for shard in shards
    ]
    try:
        with multiprocessing.Pool(min(workers, len(shards))) as pool:
            raw = pool.map(_shard_worker, payloads)
    except Exception:
        return None  # pool unavailable: serial fallback
    reports = []
    for text in raw:
        data = json.loads(text)
        reports.append(
            ShardReport(
                key=data["key"],
                acyclic=data["acyclic"],
                legal=data["legal"],
                rw=tuple((int(a), int(c)) for a, c in data["rw"]),
            )
        )
    return reports


@dataclass
class ShardOutcome:
    """Merged result of the shard executor."""

    acyclic: bool
    legal: bool
    reports: Tuple[ShardReport, ...]
    witness: Optional[List[int]] = None
    parallel: bool = False

    @property
    def holds(self) -> bool:
        return self.acyclic and self.legal


def run_sharded(
    history: History,
    condition: str,
    shards: Tuple[Shard, ...],
    *,
    workers: int = 1,
    want_witness: bool = False,
) -> ShardOutcome:
    """Check each shard independently and merge.

    Soundness and exactness: under the object-partitioned certificate
    every non-initial base edge is intra-process, so the global order
    is cyclic iff some shard is, every interfering triple (D 4.2) is
    intra-shard, and the global ``~rw`` set is the union of the shard
    ``~rw`` sets.  The witness is one global FIFO-Kahn pass over the
    full cover-edge set plus the merged ``~rw`` pairs — identical to
    the monolithic extended-relation witness.

    ``workers > 1`` fans shards out over a :class:`multiprocessing`
    pool; on platforms with ``fork`` the workers inherit the history
    copy-on-write and slice their own shard (no serialization), while
    spawn-only platforms fall back to shipping sub-histories as JSON
    via ``repro.core.serialize``.  Shard order is deterministic
    (ascending shard key) and any pool failure falls back to
    in-process serial execution.
    """
    parallel = False
    pooled: Optional[List[ShardReport]] = None
    if workers > 1 and len(shards) > 1:
        pooled = _map_shards_forked(
            history, shards, condition, workers, want_witness
        )
        if pooled is None:
            pooled = _map_shards_json(
                history, shards, condition, workers, want_witness
            )
    reports: List[ShardReport]
    if pooled is not None:
        reports = pooled
        parallel = True
    else:
        reports = []
        for shard in shards:
            sub = shard_history(history, shard)
            result = _check_shard(sub, condition, want_rw=want_witness)
            reports.append(
                ShardReport(
                    key=shard.key,
                    acyclic=result.acyclic,
                    legal=result.legal,
                    rw=result.rw,
                )
            )

    acyclic = all(report.acyclic for report in reports)
    legal = acyclic and all(report.legal for report in reports)
    witness: Optional[List[int]] = None
    if want_witness and acyclic and legal:
        pos, succ = _cover_successors(history, condition, ())
        for report in reports:
            for a_uid, c_uid in report.rw:
                ia = pos[a_uid]
                ic = pos[c_uid]
                if ia != ic:
                    succ[ia].add(ic)
        witness = _fifo_topo(history.uids, succ)
        assert witness is not None, (
            "Lemma 3/4 violated: merged extended relation of a legal "
            "object-partitioned history is cyclic"
        )
    return ShardOutcome(
        acyclic=acyclic,
        legal=legal,
        reports=tuple(reports),
        witness=witness,
        parallel=parallel,
    )
