"""Operations and m-operations: the paper's Section 2.1 model.

A *concurrent system* consists of sequential processes that manipulate
shared objects through *m-operations*.  An m-operation is a sequence of
read and write operations, possibly spanning several objects, that is
meant to take effect atomically.  This module provides:

* :class:`Operation` — a single read ``r(x)v`` or write ``w(x)v``.
* :class:`MOperation` — an m-operation: a process identifier, a
  sequence of operations, and optional invocation/response timestamps.

Externally visible behaviour
----------------------------

Section 2.2 of the paper notes that some operations inside an
m-operation are invisible to the rest of the system:

* A read of ``x`` that is preceded by a write to ``x`` *within the same
  m-operation* must return the value of the last such write; it never
  reads from another m-operation.  We validate this and then ignore
  such reads ("internal reads").
* Only the *last* write to ``x`` within an m-operation is visible to
  other m-operations ("the external write"); earlier writes are
  overwritten before the m-operation completes.

:attr:`MOperation.external_reads` and :attr:`MOperation.external_writes`
expose exactly the visible behaviour, and all legality machinery in
:mod:`repro.core.legality` is phrased in terms of them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import MalformedOperationError

#: Identifier reserved for the imaginary initial m-operation that the
#: paper assumes "writes to all objects ... before the first operation
#: by any process is executed" (Section 2.1).
INIT_UID = 0


class OpKind(str, Enum):
    """The two primitive operation kinds of the model."""

    READ = "r"
    WRITE = "w"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Operation:
    """A single read or write operation on one object.

    Attributes:
        kind: whether this is a read or a write.
        obj: the name of the shared object acted upon.
        value: for a write, the value written; for a read, the value
            returned by the read.
    """

    kind: OpKind
    obj: str
    value: Any

    @property
    def is_read(self) -> bool:
        """True iff this operation is a read."""
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        """True iff this operation is a write."""
        return self.kind is OpKind.WRITE

    def __str__(self) -> str:
        return f"{self.kind.value}({self.obj}){self.value}"


def read(obj: str, value: Any) -> Operation:
    """Build a read operation ``r(obj)value``."""
    return Operation(OpKind.READ, obj, value)


def write(obj: str, value: Any) -> Operation:
    """Build a write operation ``w(obj)value``."""
    return Operation(OpKind.WRITE, obj, value)


@dataclass(frozen=True)
class MOperation:
    """An m-operation: an atomic multi-object procedure (Section 2.1).

    Attributes:
        uid: identifier, unique within a history.  ``INIT_UID`` (0) is
            reserved for the imaginary initial m-operation.
        process: index of the issuing process, or ``None`` for the
            initial m-operation.
        ops: the sequence of read/write operations performed.
        inv: invocation timestamp (real time), or ``None`` if untimed.
        resp: response timestamp (real time), or ``None`` if untimed.
        name: optional human-readable label (e.g. ``"alpha"``).
    """

    uid: int
    process: Optional[int]
    ops: Tuple[Operation, ...]
    inv: Optional[float] = None
    resp: Optional[float] = None
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "ops", tuple(self.ops))
        if self.uid < 0:
            raise MalformedOperationError(
                f"m-operation uid must be non-negative, got {self.uid}"
            )
        if (self.inv is None) != (self.resp is None):
            raise MalformedOperationError(
                f"m-operation {self.label}: inv and resp must both be "
                "set or both be None"
            )
        if self.inv is not None and self.resp is not None:
            if not self.inv < self.resp:
                raise MalformedOperationError(
                    f"m-operation {self.label}: invocation time "
                    f"{self.inv} must precede response time {self.resp}"
                )
        self._validate_internal_reads()

    # ------------------------------------------------------------------
    # Structural validation
    # ------------------------------------------------------------------

    def _validate_internal_reads(self) -> None:
        """Check internal read consistency (Section 2.2).

        A read of ``x`` preceded by a write to ``x`` inside this
        m-operation must return the value of the last preceding write.
        """
        last_written: Dict[str, Any] = {}
        for op in self.ops:
            if op.is_write:
                last_written[op.obj] = op.value
            elif op.obj in last_written and op.value != last_written[op.obj]:
                raise MalformedOperationError(
                    f"m-operation {self.label}: internal read "
                    f"{op} does not match the last internal write "
                    f"w({op.obj}){last_written[op.obj]}"
                )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def label(self) -> str:
        """A short human-readable identifier for error messages."""
        return self.name or f"m#{self.uid}"

    @property
    def is_initial(self) -> bool:
        """True iff this is the imaginary initial m-operation."""
        return self.uid == INIT_UID

    @property
    def objects(self) -> FrozenSet[str]:
        """``objects(a)``: every object read or written (Section 2.3)."""
        return frozenset(op.obj for op in self.ops)

    @property
    def wobjects(self) -> FrozenSet[str]:
        """``wobjects(a)``: the objects written (Section 4)."""
        return frozenset(op.obj for op in self.ops if op.is_write)

    @property
    def robjects(self) -> FrozenSet[str]:
        """The objects read *externally* (ignoring internal reads)."""
        return frozenset(self.external_reads)

    @property
    def is_update(self) -> bool:
        """True iff the m-operation writes to some object (Section 4)."""
        return bool(self.wobjects)

    @property
    def is_query(self) -> bool:
        """True iff the m-operation writes to no object (Section 4)."""
        return not self.is_update

    @property
    def external_reads(self) -> Mapping[str, Any]:
        """Externally visible reads: object -> value read.

        A read is external when no write to the same object precedes it
        within this m-operation.  Section 2.2 requires every external
        read of an object within one m-operation to read from the same
        write in any legal sequential history; we therefore insist that
        all external reads of one object return equal values (enforced
        lazily here with :class:`MalformedOperationError`).
        """
        written: set = set()
        result: Dict[str, Any] = {}
        for op in self.ops:
            if op.is_write:
                written.add(op.obj)
            elif op.obj not in written:
                if op.obj in result and result[op.obj] != op.value:
                    raise MalformedOperationError(
                        f"m-operation {self.label}: external reads of "
                        f"{op.obj!r} disagree "
                        f"({result[op.obj]!r} vs {op.value!r}); no legal "
                        "sequential history can satisfy both"
                    )
                result[op.obj] = op.value
        return result

    @property
    def external_writes(self) -> Mapping[str, Any]:
        """Externally visible writes: object -> last value written."""
        result: Dict[str, Any] = {}
        for op in self.ops:
            if op.is_write:
                result[op.obj] = op.value
        return result

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def overlaps(self, other: "MOperation") -> bool:
        """True iff the real-time intervals of the two m-operations overlap.

        Requires both m-operations to carry timestamps.  The initial
        m-operation never overlaps anything (it precedes everything).
        """
        if self.is_initial or other.is_initial:
            return False
        if self.inv is None or other.inv is None:
            raise MalformedOperationError(
                "overlaps() requires timestamps on both m-operations"
            )
        assert self.resp is not None and other.resp is not None
        return self.inv < other.resp and other.inv < self.resp

    def with_times(self, inv: float, resp: float) -> "MOperation":
        """Return a copy of this m-operation with the given interval."""
        return MOperation(
            uid=self.uid,
            process=self.process,
            ops=self.ops,
            inv=inv,
            resp=resp,
            name=self.name,
        )

    def __str__(self) -> str:
        body = " ".join(str(op) for op in self.ops)
        tag = self.name or f"m#{self.uid}"
        proc = "init" if self.process is None else f"P{self.process}"
        return f"{tag}[{proc}: {body}]"


def initial_mop(initial_values: Mapping[str, Any]) -> MOperation:
    """Build the imaginary initial m-operation (Section 2.1).

    The paper assumes an m-operation that writes the initial value of
    every object before any process starts.  Unless specified
    otherwise, the initial value of every object is 0.
    """
    ops = tuple(write(obj, initial_values[obj]) for obj in sorted(initial_values))
    return MOperation(uid=INIT_UID, process=None, ops=ops, name="init")


def make_mop(
    uid: int,
    process: int,
    ops: Iterable[Operation],
    *,
    inv: Optional[float] = None,
    resp: Optional[float] = None,
    name: str = "",
) -> MOperation:
    """Convenience constructor mirroring :class:`MOperation`'s fields."""
    return MOperation(
        uid=uid, process=process, ops=tuple(ops), inv=inv, resp=resp, name=name
    )
