"""Core model of Mittal & Garg's multi-object consistency framework.

Sub-modules:

* :mod:`repro.core.operation` — operations and m-operations.
* :mod:`repro.core.history` — histories and the reads-from map.
* :mod:`repro.core.relations` — relation algebra.
* :mod:`repro.core.index` — shared per-history derived-data layer.
* :mod:`repro.core.plan` — plan/execute verification engine.
* :mod:`repro.core.orders` — process/reads-from/real-time/object order.
* :mod:`repro.core.legality` — conflict, interference, legality.
* :mod:`repro.core.constraints` — OO/WW/WO constraints, ``~rw``, ``~H+``.
* :mod:`repro.core.admissibility` — exact (NP-complete) admissibility.
* :mod:`repro.core.consistency` — m-SC / m-lin / m-norm checkers.
"""

from repro.core.admissibility import (
    AdmissibilityResult,
    SearchBudgetExceeded,
    SearchStats,
    check_admissible,
    count_legal_linearizations,
)
from repro.core.causal import (
    CausalVerdict,
    causal_order,
    check_m_causal_consistency,
    check_m_causal_serializability,
    is_m_causally_consistent,
    is_m_causally_serializable,
    restrict_history,
)
from repro.core.consistency import (
    ConsistencyVerdict,
    ConstraintNotSatisfied,
    check_condition,
    check_m_linearizability,
    check_m_normality,
    check_m_sequential_consistency,
    is_m_linearizable,
    is_m_normal,
    is_m_sequentially_consistent,
)
from repro.core.constraints import (
    constraint_report,
    extended_relation,
    is_concurrent_write_free,
    is_data_race_free,
    rw_pairs,
    satisfies_oo,
    satisfies_wo,
    satisfies_ww,
)
from repro.core.diagnostics import Explanation, explain
from repro.core.history import History
from repro.core.index import (
    HistoryIndex,
    IndexStats,
    LiveIndex,
    WindowedIndex,
)
from repro.core.legality import (
    conflict,
    interfere,
    interfering_triples,
    is_legal,
    is_legal_sequence,
)
from repro.core.monitor import (
    LiveMonitor,
    MonitorUsageError,
    ObservedOp,
    StreamingVerifier,
    StreamViolation,
    verify_stream,
)
from repro.core.operation import (
    INIT_UID,
    MOperation,
    Operation,
    OpKind,
    initial_mop,
    make_mop,
    read,
    write,
)
from repro.core.plan import (
    MODES,
    CheckPlan,
    ScanResult,
    Shard,
    ShardOutcome,
    object_shards,
    plan_check,
    run_scan,
    run_sharded,
    shard_history,
)
from repro.core.orders import (
    base_order,
    chain_order,
    mlin_order,
    mnorm_order,
    msc_order,
    object_order,
    process_order,
    reads_from_order,
    real_time_order,
)
from repro.core.relations import (
    IncrementalClosure,
    Relation,
    relation_from_sequence,
)
from repro.core.serialize import (
    history_from_dict,
    history_from_json,
    history_to_dict,
    history_to_json,
    load_history,
    save_history,
)

__all__ = [
    "AdmissibilityResult",
    "CausalVerdict",
    "CheckPlan",
    "ConsistencyVerdict",
    "ConstraintNotSatisfied",
    "History",
    "HistoryIndex",
    "INIT_UID",
    "IncrementalClosure",
    "IndexStats",
    "LiveIndex",
    "LiveMonitor",
    "MODES",
    "MOperation",
    "MonitorUsageError",
    "ObservedOp",
    "OpKind",
    "Operation",
    "Relation",
    "ScanResult",
    "SearchBudgetExceeded",
    "SearchStats",
    "Shard",
    "ShardOutcome",
    "StreamViolation",
    "StreamingVerifier",
    "WindowedIndex",
    "base_order",
    "causal_order",
    "chain_order",
    "check_admissible",
    "check_condition",
    "check_m_linearizability",
    "check_m_normality",
    "check_m_causal_consistency",
    "check_m_causal_serializability",
    "check_m_sequential_consistency",
    "conflict",
    "constraint_report",
    "count_legal_linearizations",
    "Explanation",
    "explain",
    "extended_relation",
    "history_from_dict",
    "history_from_json",
    "history_to_dict",
    "history_to_json",
    "initial_mop",
    "interfere",
    "interfering_triples",
    "is_concurrent_write_free",
    "is_data_race_free",
    "is_legal",
    "is_legal_sequence",
    "is_m_causally_consistent",
    "is_m_causally_serializable",
    "is_m_linearizable",
    "is_m_normal",
    "is_m_sequentially_consistent",
    "load_history",
    "make_mop",
    "mlin_order",
    "mnorm_order",
    "msc_order",
    "object_order",
    "object_shards",
    "plan_check",
    "process_order",
    "read",
    "reads_from_order",
    "real_time_order",
    "relation_from_sequence",
    "restrict_history",
    "run_scan",
    "run_sharded",
    "save_history",
    "shard_history",
    "rw_pairs",
    "satisfies_oo",
    "satisfies_wo",
    "satisfies_ww",
    "verify_stream",
    "write",
]
