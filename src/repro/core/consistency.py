"""The paper's consistency conditions (Section 2.3) and their checkers.

* **m-sequential consistency** — admissible w.r.t. process order and
  reads-from relation.
* **m-linearizability** — admissible w.r.t. process order, reads-from
  relation and real-time order.
* **m-normality** — admissible w.r.t. process order, reads-from
  relation and object order (weaker than m-linearizability: two
  non-overlapping m-operations are ordered only if they share an
  object).

Each checker comes in three methods:

* ``"exact"`` — the branch-and-bound of
  :mod:`repro.core.admissibility` (ground truth; worst-case
  exponential, per Theorems 1 and 2).
* ``"constrained"`` — the Theorem-7 polynomial path: *requires* the
  history to satisfy the OO- or WW-constraint, under which legality is
  necessary and sufficient for admissibility.  Raises
  :class:`ConstraintNotSatisfied` when the precondition fails.
* ``"auto"`` (default) — use the constrained path when the constraint
  holds, fall back to exact search otherwise.

Every checker also accepts a ``certificate`` — a static proof from
:mod:`repro.analysis.static.prover` that the workload can only emit
OO-/WW-constrained histories.  A certificate replaces the dynamic
constraint phase (the closure scans of
:func:`~repro.core.constraints.satisfies_ww` /
:func:`~repro.core.constraints.satisfies_oo`) with an O(n) structural
audit; the audit is trust-but-verify — a mismatch raises
:class:`~repro.errors.InvalidCertificate` rather than risking an
unsound Theorem-7 shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.core.admissibility import SearchStats, check_admissible
from repro.core.constraints import (
    rw_pairs,
    satisfies_oo,
    satisfies_ww,
)
from repro.core.history import History
from repro.core.index import HistoryIndex
from repro.core.legality import is_legal
from repro.core.plan import MODES, plan_check, run_scan, run_sharded
from repro.core.relations import Relation
from repro.errors import InvalidCertificate, PlanRefused, ReproError
from repro.obs import get_tracer

#: Checker method names accepted by the public functions.
METHODS = ("auto", "exact", "constrained")


class ConstraintNotSatisfied(ReproError):
    """The constrained (Theorem 7) checker was invoked on a history
    whose base order satisfies neither the OO- nor the WW-constraint."""


@dataclass
class ConsistencyVerdict:
    """Result of a consistency check.

    Attributes:
        holds: whether the consistency condition is satisfied.
        condition: which condition was checked (``"m-sc"``,
            ``"m-lin"`` or ``"m-norm"``).
        method_used: ``"exact"`` or ``"constrained"``.
        witness: a legal linearization (uids) when available.  The
            constrained path produces one via the extended relation's
            topological order; the exact path returns the search
            witness.
        stats: exact-search statistics (zeroed for constrained runs).
        certificate: rule name of the static constraint certificate
            that replaced the dynamic constraint phase, or None when
            the constraint was (or would have been) checked
            dynamically.
        mode: the execution mode of the plan that produced the
            verdict (``"full"``, ``"sharded"`` or ``"windowed"``).
            Verdicts are mode-independent — sharded and windowed runs
            reproduce the full checker byte for byte.
    """

    holds: bool
    condition: str
    method_used: str
    witness: Optional[List[int]] = None
    stats: SearchStats = field(default_factory=SearchStats)
    certificate: Optional[str] = None
    mode: str = "full"

    def __bool__(self) -> bool:
        return self.holds


def _check(
    history: History,
    condition: str,
    method: str,
    node_limit: Optional[int],
    extra_pairs: Iterable[Tuple[int, int]],
    certificate=None,
    mode: str = "full",
    workers: int = 1,
    window: Optional[int] = None,
    witness: bool = True,
) -> ConsistencyVerdict:
    if method not in METHODS:
        raise ValueError(f"unknown method {method!r}; expected one of {METHODS}")
    if mode not in MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {MODES}")

    tracer = get_tracer()
    with tracer.span(
        f"check.{condition}", method=method, mops=len(history.mops), mode=mode
    ):
        # One shared index per history: the base order, its closure,
        # the interfering triples and the constraint masks are computed
        # at most once no matter how many checkers run on this history.
        with tracer.span("check.index"):
            index = HistoryIndex.of(history)
            extra = _normalize_extra(extra_pairs)

        if method == "exact":
            if mode != "full":
                raise PlanRefused(
                    "the exact admissibility search has no sharded or "
                    "windowed form; use mode='full'"
                )
            # The exact search needs neither the closure nor the
            # constraint verdicts.
            base = index.base_relation(condition, extra)
            with tracer.span("check.exact"):
                result = check_admissible(history, base, node_limit=node_limit)
            return ConsistencyVerdict(
                holds=result.admissible,
                condition=condition,
                method_used="exact",
                witness=result.witness,
                stats=result.stats,
            )

        # A static certificate (repro.analysis.static.prover) replaces
        # the dynamic constraint phase: Theorem 7's precondition was
        # proved from the workload, so only the O(n) structural audit
        # runs here — never the closure scans below.  The audit runs
        # before planning: every plan strategy relies on it.
        cert = (
            certificate
            if certificate is not None
            and getattr(certificate, "unlocks_theorem7", False)
            else None
        )
        if cert is not None:
            with tracer.span("check.certificate"):
                failure = cert.audit(history, extra)
            if failure is not None:
                raise InvalidCertificate(
                    f"{cert.rule} certificate rejected for the "
                    f"{condition} check: {failure}"
                )

        with tracer.span("check.plan"):
            plan = plan_check(
                history,
                condition,
                mode=mode,
                workers=workers,
                window=window,
                extra_pairs=extra,
                certificate=cert,
            )

        if plan.strategy == "scan":
            with tracer.span("check.scan", chain=len(plan.chain)):
                result = run_scan(
                    history,
                    condition,
                    plan.chain,
                    extra_pairs=extra,
                    window=plan.window,
                    want_witness=witness,
                )
            return ConsistencyVerdict(
                holds=result.holds,
                condition=condition,
                method_used="constrained",
                witness=result.witness,
                certificate=plan.certificate_rule,
                mode=mode,
            )

        if plan.strategy == "shard":
            with tracer.span(
                "check.shards", shards=len(plan.shards), workers=plan.workers
            ):
                outcome = run_sharded(
                    history,
                    condition,
                    plan.shards,
                    workers=plan.workers,
                    want_witness=witness,
                )
            return ConsistencyVerdict(
                holds=outcome.holds,
                condition=condition,
                method_used="constrained",
                witness=outcome.witness,
                certificate=plan.certificate_rule,
                mode=mode,
            )

        # strategy == "closure": the monolithic Theorem-7 path.
        base = index.base_relation(condition, extra)
        with tracer.span("check.closure"):
            closure = base.transitive_closure()

        if cert is not None:
            verdict = _check_constrained(
                history, base, closure, condition, want_witness=witness
            )
            verdict.certificate = cert.rule
            return verdict

        with tracer.span("check.constraints"):
            constrained_ok = satisfies_ww(history, closure) or satisfies_oo(
                history, closure
            )

        if method == "constrained" and not constrained_ok:
            raise ConstraintNotSatisfied(
                "history does not satisfy the OO- or WW-constraint under "
                f"the {condition} order; the Theorem-7 fast path does not "
                "apply"
            )

        if constrained_ok:
            return _check_constrained(
                history, base, closure, condition, want_witness=witness
            )

        with tracer.span("check.exact"):
            result = check_admissible(history, base, node_limit=node_limit)
        return ConsistencyVerdict(
            holds=result.admissible,
            condition=condition,
            method_used="exact",
            witness=result.witness,
            stats=result.stats,
        )


def _check_constrained(
    history: History,
    base: Relation,
    closure: Relation,
    condition: str,
    *,
    want_witness: bool = True,
) -> ConsistencyVerdict:
    """Theorem 7: under OO/WW, admissible ⟺ legal.

    When legal, Lemmas 3-5 guarantee the extended relation ``~H+`` is
    an irreflexive partial order any of whose linear extensions is a
    legal sequential history — so we also return such a witness.  A
    graph and its transitive closure have the same topological orders,
    so the witness is read off ``~H ∪ ~rw`` directly without
    materialising ``~H+``.
    """
    tracer = get_tracer()
    with tracer.span("check.legality"):
        if not closure.is_acyclic():
            return ConsistencyVerdict(False, condition, "constrained")
        if not is_legal(history, closure):
            return ConsistencyVerdict(False, condition, "constrained")
    if not want_witness:
        return ConsistencyVerdict(True, condition, "constrained")
    with tracer.span("check.witness"):
        extended = base.copy()
        for a_uid, c_uid in rw_pairs(history, closure):
            if a_uid != c_uid:
                extended.add(a_uid, c_uid)
        witness = extended.topological_order()
    assert witness is not None, (
        "Lemma 3/4 violated: extended relation of a legal constrained "
        "history is cyclic"
    )
    return ConsistencyVerdict(True, condition, "constrained", witness=witness)


def _normalize_extra(
    extra_pairs: Iterable[Tuple[int, int]]
) -> Tuple[Tuple[int, int], ...]:
    """Sorted, deduplicated, irreflexive — a stable index cache key."""
    return tuple(sorted({(a, b) for a, b in extra_pairs if a != b}))


def check_m_sequential_consistency(
    history: History,
    *,
    method: str = "auto",
    node_limit: Optional[int] = None,
    extra_pairs: Iterable[Tuple[int, int]] = (),
    certificate=None,
    mode: str = "full",
    workers: int = 1,
    window: Optional[int] = None,
    witness: bool = True,
) -> ConsistencyVerdict:
    """Is the history m-sequentially consistent? (Section 2.3)

    Admissibility with respect to process orders and the reads-from
    relation.  With m-operations restricted to a single read or write
    this reduces to Lamport's sequential consistency.

    ``extra_pairs`` adds implementation-level synchronization edges to
    the base order — typically a protocol run's recorded ``~ww``
    delivery order (D 5.3), under which the order satisfies the
    WW-constraint and the check runs in polynomial time (Theorem 7).
    Note the check then becomes *sufficient* rather than exact:
    admissibility w.r.t. a larger order implies m-sequential
    consistency, but not conversely.

    ``mode`` selects the plan the engine executes (see
    :mod:`repro.core.plan`): ``"full"`` (default) checks the whole
    history at once, ``"sharded"`` decomposes an object-partitioned
    history into independent per-process shards run on ``workers``
    processes, and ``"windowed"`` bounds the legality scan's lookback
    to ``window`` broadcast positions, refusing (never deciding
    wrongly) with :class:`~repro.errors.WindowExceeded` when a read
    reaches further back.  ``witness=False`` skips witness
    construction — the verdict is unchanged but large histories check
    much faster.
    """
    return _check(
        history, "m-sc", method, node_limit, extra_pairs, certificate,
        mode=mode, workers=workers, window=window, witness=witness,
    )


def check_m_linearizability(
    history: History,
    *,
    method: str = "auto",
    node_limit: Optional[int] = None,
    extra_pairs: Iterable[Tuple[int, int]] = (),
    certificate=None,
    mode: str = "full",
    workers: int = 1,
    window: Optional[int] = None,
    witness: bool = True,
) -> ConsistencyVerdict:
    """Is the history m-linearizable? (Section 2.3)

    Admissibility with respect to process orders, reads-from relation
    and real-time order: every m-operation appears to take effect at
    an instant between its invocation and response, and the order of
    non-overlapping m-operations is preserved.  Requires a timed
    history.  See :func:`check_m_sequential_consistency` for
    ``extra_pairs`` and the ``mode``/``workers``/``window``/``witness``
    plan knobs (``mode="sharded"`` is refused for m-linearizability:
    the real-time order crosses shard boundaries).
    """
    return _check(
        history, "m-lin", method, node_limit, extra_pairs, certificate,
        mode=mode, workers=workers, window=window, witness=witness,
    )


def check_m_normality(
    history: History,
    *,
    method: str = "auto",
    node_limit: Optional[int] = None,
    extra_pairs: Iterable[Tuple[int, int]] = (),
    certificate=None,
    mode: str = "full",
    workers: int = 1,
    window: Optional[int] = None,
    witness: bool = True,
) -> ConsistencyVerdict:
    """Is the history m-normal? (Section 2.3)

    Like m-linearizability but two non-overlapping m-operations are
    ordered only when they act on a common object (object order ``~x``
    instead of real-time order ``~t``).  m-linearizability implies
    m-normality implies m-sequential consistency.  See
    :func:`check_m_sequential_consistency` for ``extra_pairs`` and the
    ``mode``/``workers``/``window``/``witness`` plan knobs.
    """
    return _check(
        history, "m-norm", method, node_limit, extra_pairs, certificate,
        mode=mode, workers=workers, window=window, witness=witness,
    )


#: condition name -> checker, for the :func:`check_condition` dispatcher.
CHECKERS = {
    "m-sc": check_m_sequential_consistency,
    "m-lin": check_m_linearizability,
    "m-norm": check_m_normality,
}


def check_condition(
    history: History, condition: str, **kwargs
) -> ConsistencyVerdict:
    """Check any condition by name — the single entry point the CLI,
    the simulator and the chaos harness share.

    ``kwargs`` are forwarded to the named checker (``method``,
    ``node_limit``, ``extra_pairs``, ``certificate``, ``mode``,
    ``workers``, ``window``, ``witness``).
    """
    try:
        checker = CHECKERS[condition]
    except KeyError:
        raise ValueError(
            f"unknown condition {condition!r}; expected one of "
            f"{tuple(CHECKERS)}"
        ) from None
    return checker(history, **kwargs)


def is_m_sequentially_consistent(history: History, **kwargs) -> bool:
    """Boolean shorthand for :func:`check_m_sequential_consistency`."""
    return check_m_sequential_consistency(history, **kwargs).holds


def is_m_linearizable(history: History, **kwargs) -> bool:
    """Boolean shorthand for :func:`check_m_linearizability`."""
    return check_m_linearizability(history, **kwargs).holds


def is_m_normal(history: History, **kwargs) -> bool:
    """Boolean shorthand for :func:`check_m_normality`."""
    return check_m_normality(history, **kwargs).holds
