"""Causal consistency conditions for m-operations (extension).

The paper's introduction notes that Raynal et al. independently
generalised Herlihy's model to multi-object transactions "but they
focussed on weaker consistency conditions, namely causal consistency
and causal serializability".  This module implements both for
m-operations, adapted from Ahamad et al.'s causal memory and Raynal et
al.'s definitions:

* the **causal order** ``~co`` is the transitive closure of process
  order and the reads-from relation;
* a history is **m-causally consistent** iff for *every process*
  ``P_i`` there is a legal sequential history over all update
  m-operations plus ``P_i``'s own m-operations that respects ``~co``
  — different processes may observe concurrent updates in different
  orders;
* a history is **m-causally serializable** iff additionally one
  update order is shared: there is a single linear extension of
  ``~co`` restricted to updates such that every process's queries can
  be legally inserted into it (respecting ``~co``).

Hierarchy: m-sequential consistency ⟹ m-causal serializability ⟹
m-causal consistency; the *second* implication is strict (the test
suite exhibits concurrent-write histories whose readers disagree on
the update order).  The first is in fact an **equivalence** in this
model: because query m-operations write nothing, the per-process
query insertions into the shared update order can always be merged
into one global legal sequence (queries at the same slot do not
interact), and conversely any global witness projects onto an update
order plus insertions.  The checker is therefore an alternative
decision procedure for m-sequential consistency with a differently
shaped witness (update order + per-process positions); the test suite
asserts the agreement on randomized histories.  A genuinely weaker
"causal serializability" would need update transactions whose reads
are validated only at their issuer — a different model.

Complexity: the per-process serializations reuse the exact
admissibility search (worst-case exponential); the query-insertion
check for a fixed update order is polynomial (greedy earliest-
feasible-slot, correct by an exchange argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.admissibility import check_admissible
from repro.core.history import History
from repro.core.operation import INIT_UID
from repro.core.orders import msc_order
from repro.core.relations import Relation


def causal_order(history: History) -> Relation:
    """``~co``: the transitive closure of ``~p ∪ ~rf`` (with init)."""
    return msc_order(history).transitive_closure()


def restrict_history(history: History, uids: Sequence[int]) -> History:
    """The sub-history over ``uids`` (must be reads-from closed).

    ``uids`` must contain, for every kept m-operation, the writers of
    all its external reads (the initial m-operation is always kept).
    Raises :class:`~repro.errors.MalformedHistoryError` otherwise,
    via history validation.
    """
    keep = set(uids) | {INIT_UID}
    mops = [m for m in history.mops if m.uid in keep]
    reads_from = {
        (reader, obj): writer
        for (reader, obj), writer in history.reads_from_map.items()
        if reader in keep
    }
    initial_values = dict(history.init.external_writes)
    return History.from_mops(
        mops, initial_values=initial_values, reads_from=reads_from
    )


@dataclass
class CausalVerdict:
    """Result of a causal-consistency check.

    Attributes:
        holds: the verdict.
        condition: ``"m-causal"`` or ``"m-causal-serializable"``.
        failing_process: for m-causal consistency, the first process
            with no valid serialization (None when the check holds).
        witnesses: per-process legal serializations (uids) when the
            check holds; for causal serializability, the single update
            order is stored under the key ``-1``.
    """

    holds: bool
    condition: str
    failing_process: Optional[int] = None
    witnesses: Dict[int, List[int]] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.holds


def check_m_causal_consistency(
    history: History, *, node_limit: Optional[int] = None
) -> CausalVerdict:
    """Is the history m-causally consistent?

    For each process, the sub-history of all updates plus the
    process's own m-operations must be admissible with respect to the
    causal order.
    """
    co = causal_order(history)
    witnesses: Dict[int, List[int]] = {}
    processes = history.processes or (0,)
    for proc in processes:
        keep = [
            m.uid
            for m in history.mops
            if m.is_update or m.process == proc
        ]
        sub = restrict_history(history, keep)
        base = co.restricted_to(sub.uids)
        result = check_admissible(sub, base, node_limit=node_limit)
        if not result.admissible:
            return CausalVerdict(
                False, "m-causal", failing_process=proc
            )
        witnesses[proc] = result.witness or []
    return CausalVerdict(True, "m-causal", witnesses=witnesses)


def is_m_causally_consistent(history: History, **kwargs) -> bool:
    """Boolean shorthand for :func:`check_m_causal_consistency`."""
    return check_m_causal_consistency(history, **kwargs).holds


# ----------------------------------------------------------------------
# Causal serializability
# ----------------------------------------------------------------------


def _queries_insertable(
    history: History,
    proc: int,
    update_order: Sequence[int],
    co: Relation,
) -> bool:
    """Greedy earliest-slot insertion of one process's queries.

    Position ``k`` means "after the k-th update of ``update_order``"
    (k = 0: before all updates).  For each query, in process order,
    pick the smallest feasible position that is >= the previous
    query's position; feasibility means (a) every external read's
    writer is the last writer of its object at that position, and (b)
    the position is compatible with the causal order against all
    updates.  Greedy-earliest is complete by an exchange argument.
    """
    update_pos = {uid: i + 1 for i, uid in enumerate(update_order)}
    n_slots = len(update_order) + 1

    # last_writer_at[k][obj]: uid of obj's last writer at position k.
    last_writer_at: List[Dict[str, int]] = []
    current: Dict[str, int] = {obj: INIT_UID for obj in history.objects}
    last_writer_at.append(dict(current))
    for uid in update_order:
        for obj in history[uid].external_writes:
            current[obj] = uid
        last_writer_at.append(dict(current))

    queries = [
        m for m in history.subhistory(proc) if m.is_query
    ]
    cursor = 0
    for query in queries:
        lo = cursor
        hi = n_slots - 1
        for uid in update_order:
            if (uid, query.uid) in co:
                lo = max(lo, update_pos[uid])
            if (query.uid, uid) in co:
                hi = min(hi, update_pos[uid] - 1)
        placed = False
        for pos in range(lo, hi + 1):
            state = last_writer_at[pos]
            ok = all(
                state.get(obj) == history.writer_of(query.uid, obj)
                for obj in query.external_reads
            )
            if ok:
                cursor = pos
                placed = True
                break
        if not placed:
            return False
    return True


def check_m_causal_serializability(
    history: History, *, node_limit: Optional[int] = None
) -> CausalVerdict:
    """Is the history m-causally serializable?

    Searches for a single legal linear extension of the causal order
    restricted to update m-operations into which *every* process's
    queries can be inserted.  Backtracking over update prefixes with
    the same (scheduled set, last-writer) failure memoization as the
    admissibility search; each complete update order is then tested
    per process with the polynomial insertion check.
    """
    co = causal_order(history)
    updates = [history.init] + [m for m in history.mops if m.is_update]
    uids = [m.uid for m in updates]
    index = {uid: i for i, uid in enumerate(uids)}
    n = len(uids)
    objects = sorted(history.objects)
    obj_index = {obj: i for i, obj in enumerate(objects)}

    pred_mask = [0] * n
    for a, b in co.pairs():
        ia, ib = index.get(a), index.get(b)
        if ia is not None and ib is not None and ia != ib:
            pred_mask[ib] |= 1 << ia

    reads: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    writes: List[List[int]] = [[] for _ in range(n)]
    for i, mop in enumerate(updates):
        for obj in mop.external_reads:
            writer = history.writer_of(mop.uid, obj)
            if writer in index:  # writers of updates are updates/init
                reads[i].append((obj_index[obj], index[writer]))
        for obj in mop.external_writes:
            writes[i].append(obj_index[obj])

    processes = history.processes or (0,)
    full_mask = (1 << n) - 1
    failed: Set[Tuple[int, Tuple[int, ...]]] = set()
    nodes = 0

    def solve(
        done: int, last_writer: Tuple[int, ...], order: List[int]
    ) -> Optional[List[int]]:
        nonlocal nodes
        nodes += 1
        if node_limit is not None and nodes > node_limit:
            raise RuntimeError(
                f"causal-serializability search exceeded {node_limit} nodes"
            )
        if done == full_mask:
            update_order = [uids[i] for i in order[1:]]  # drop init
            if all(
                _queries_insertable(history, proc, update_order, co)
                for proc in processes
            ):
                return list(update_order)
            return None
        key = (done, last_writer)
        if key in failed:
            return None
        for i in range(n):
            if done >> i & 1 or pred_mask[i] & ~done:
                continue
            if not all(last_writer[oi] == w for oi, w in reads[i]):
                continue
            lw = list(last_writer)
            for oi in writes[i]:
                lw[oi] = i
            order.append(i)
            found = solve(done | (1 << i), tuple(lw), order)
            if found is not None:
                return found
            order.pop()
        failed.add(key)
        return None

    start = tuple([-1] * len(objects))
    witness = solve(0, start, [])
    if witness is None:
        return CausalVerdict(False, "m-causal-serializable")
    return CausalVerdict(
        True, "m-causal-serializable", witnesses={-1: witness}
    )


def is_m_causally_serializable(history: History, **kwargs) -> bool:
    """Boolean shorthand for :func:`check_m_causal_serializability`."""
    return check_m_causal_serializability(history, **kwargs).holds
