"""The partial orders the paper layers over a history (Sections 2, 4).

Each consistency condition is "admissibility with respect to ``~H``"
for a different ``~H``:

* m-sequential consistency: ``~H = ~p ∪ ~rf``  (process order and
  reads-from),
* m-linearizability:        ``~H = ~p ∪ ~rf ∪ ~t``  (plus real-time
  order; note ``~p ⊆ ~t`` for well-formed timed histories),
* m-normality:              ``~H = ~p ∪ ~rf ∪ ~x``  (plus object
  order).

All functions return :class:`~repro.core.relations.Relation` objects
over the history's uid universe (including the initial m-operation,
which precedes everything).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.core.history import History
from repro.core.index import HistoryIndex
from repro.core.relations import Relation
from repro.errors import MissingTimestampsError


def empty_relation(history: History) -> Relation:
    """An empty relation over the history's m-operation universe."""
    return Relation(history.uids)


def init_order(history: History) -> Relation:
    """The initial m-operation precedes every other m-operation.

    Section 2.1: the imaginary initial m-operation is performed before
    the first operation by any process.
    """
    rel = empty_relation(history)
    for mop in history.mops:
        rel.add(history.init.uid, mop.uid)
    return rel


def process_order(history: History) -> Relation:
    """``~p``: per-process issue order (Section 2.1).

    Emitted as the per-process *cover* chain — each m-operation to its
    immediate successor, ``n - 1`` edges per process rather than all
    ``n(n-1)/2`` transitive pairs.  The full order is the chain's
    transitive closure, which every consumer computes anyway (and which
    :class:`~repro.core.relations.Relation` now caches).
    """
    rel = empty_relation(history)
    for proc in history.processes:
        seq = history.subhistory(proc)
        for earlier, later in zip(seq, seq[1:]):
            rel.add(earlier.uid, later.uid)
    return rel


def reads_from_order(history: History) -> Relation:
    """``~rf``: writer precedes reader (D 4.3)."""
    rel = empty_relation(history)
    for writer_uid, reader_uid in history.reads_from_pairs():
        rel.add(writer_uid, reader_uid)
    return rel


def real_time_order(history: History) -> Relation:
    """``~t``: ``a ~t b`` iff ``resp(a) < inv(b)`` (Section 2.3).

    Requires a timed history.  The initial m-operation precedes all.
    """
    if not history.is_timed:
        raise MissingTimestampsError(
            "real-time order requires inv/resp timestamps on every "
            "m-operation"
        )
    rel = init_order(history)
    mops = history.mops
    for a in mops:
        for b in mops:
            if a.uid == b.uid:
                continue
            assert a.resp is not None and b.inv is not None
            if a.resp < b.inv:
                rel.add(a.uid, b.uid)
    return rel


def object_order(history: History) -> Relation:
    """``~x``: shared object and ``resp(a) < inv(b)`` (Section 2.3)."""
    if not history.is_timed:
        raise MissingTimestampsError(
            "object order requires inv/resp timestamps on every "
            "m-operation"
        )
    rel = init_order(history)
    mops = history.mops
    for a in mops:
        for b in mops:
            if a.uid == b.uid:
                continue
            assert a.resp is not None and b.inv is not None
            if a.resp < b.inv and a.objects & b.objects:
                rel.add(a.uid, b.uid)
    return rel


def base_order(
    history: History,
    *,
    process: bool = True,
    reads_from: bool = True,
    real_time: bool = False,
    objects: bool = False,
    extra_pairs: Iterable[Tuple[int, int]] = (),
) -> Relation:
    """Union of the selected orders, with initial-m-operation edges.

    The returned relation is *not* transitively closed; most consumers
    call :meth:`~repro.core.relations.Relation.transitive_closure`
    themselves, because they also need the raw generating pairs.
    """
    rel = init_order(history)
    if process:
        rel = rel | process_order(history)
    if reads_from:
        rel = rel | reads_from_order(history)
    if real_time:
        rel = rel | real_time_order(history)
    if objects:
        rel = rel | object_order(history)
    for a, b in extra_pairs:
        if a != b:
            rel.add(a, b)
    return rel


def chain_order(
    history: History, chain: Iterable[int]
) -> Relation:
    """``~ww`` as certified: a total update order as its cover chain.

    ``chain`` lists update uids in certified broadcast order (D 5.3);
    the returned relation holds the ``k - 1`` cover edges between the
    chain members present in the history, plus the initial fan-out.
    Chain entries absent from the history (e.g. updates dropped by a
    fault schedule) are skipped, matching the scan executor's
    handling.

    The plan/execute engine (:mod:`repro.core.plan`) never
    materializes this relation — it lowers the chain to integer
    positions and answers ``b ~ww c`` by comparing them.  The relation
    form exists for diagnostics and for cross-validating the scan
    executor against the closure-based checker.
    """
    rel = init_order(history)
    known = set(history.uids)
    prev = None
    for uid in chain:
        if uid not in known:
            continue
        if prev is not None:
            rel.add(prev, uid)
        prev = uid
    return rel


def msc_order(history: History) -> Relation:
    """``~H`` for m-sequential consistency: ``~p ∪ ~rf``.

    A mutable copy of the history index's cached generating order; the
    copy shares the cached transitive closure until first mutated.
    """
    return HistoryIndex.of(history).base_relation("m-sc").copy()


def mlin_order(history: History) -> Relation:
    """``~H`` for m-linearizability: ``~p ∪ ~rf ∪ ~t``.

    Built from the index's *cover* edges: the raw relation contains
    only the maximal real-time predecessors of each m-operation (plus
    ``~p`` chains, ``~rf`` and the initial fan-out), and its transitive
    closure — shared and cached — equals the full paper order.  Use
    :func:`real_time_order` when the raw ``~t`` pairs themselves are
    needed.
    """
    return HistoryIndex.of(history).base_relation("m-lin").copy()


def mnorm_order(history: History) -> Relation:
    """``~H`` for m-normality: ``~p ∪ ~rf ∪ ~x``.

    Cover-edge construction; see :func:`mlin_order`.  Use
    :func:`object_order` for the raw ``~x`` pairs.
    """
    return HistoryIndex.of(history).base_relation("m-norm").copy()
