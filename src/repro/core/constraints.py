"""Execution constraints and the extended relation (Section 4).

The paper adopts Mizuno et al.'s execution constraints so that
admissibility — NP-complete in general — becomes efficiently checkable:

* **WW-constraint** (D 4.9): every pair of update m-operations is
  ordered under ``~H``.
* **OO-constraint** (D 4.8): every pair of *conflicting* m-operations
  is ordered under ``~H``.
* **WO-constraint** (D 4.10): every pair of m-operations writing a
  common object is ordered (the intersection of OO and WW; both imply
  it).

Under WW or OO, simply extending ``~H`` to a total order can yield
non-legal sequential histories (Figures 2 and 3), so the paper defines
the logical read-write precedence (D 4.11)::

    a ~rw c  iff  ∃ b : interfere(H, a, b, c) ∧ b ~H c

and the extended relation (D 4.12) ``~H+ = (~H ∪ ~rw)+``.  Lemmas 3-5
prove that when the history is legal and under OO/WW constraint,
``~H+`` is an irreflexive partial order and *any* linear extension of
it is legal — which is exactly what :func:`extended_relation` plus
:meth:`~repro.core.relations.Relation.topological_order` deliver.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from repro.core.history import History
from repro.core.index import HistoryIndex
from repro.core.legality import conflict
from repro.core.relations import Relation


def _ordered(closure: Relation, a_uid: int, b_uid: int) -> bool:
    return (a_uid, b_uid) in closure or (b_uid, a_uid) in closure


def unordered_update_pairs(
    history: History, closure: Relation
) -> Iterator[Tuple[int, int]]:
    """Pairs of update m-operations not ordered by the closure."""
    updates = [m for m in history.all_mops if m.is_update]
    for i, a in enumerate(updates):
        for b in updates[i + 1 :]:
            if not _ordered(closure, a.uid, b.uid):
                yield (a.uid, b.uid)


def satisfies_ww(history: History, closure: Relation) -> bool:
    """D 4.9: every pair of update m-operations is ordered.

    Fast path: on an acyclic closure each related pair is counted in
    exactly one direction, so the constraint reduces to comparing the
    directed pair count among updates with ``C(#updates, 2)`` — a few
    popcounts instead of a quadratic membership scan.
    """
    if closure.nodes == history.uids and closure.is_acyclic():
        updates = HistoryIndex.of(history).update_uids
        k = len(updates)
        return closure.ordered_pair_count(updates) == k * (k - 1) // 2
    return next(unordered_update_pairs(history, closure), None) is None


def unordered_conflicting_pairs(
    history: History, closure: Relation
) -> Iterator[Tuple[int, int]]:
    """Pairs of conflicting m-operations not ordered by the closure."""
    mops = history.all_mops
    for i, a in enumerate(mops):
        for b in mops[i + 1 :]:
            if conflict(a, b) and not _ordered(closure, a.uid, b.uid):
                yield (a.uid, b.uid)


def satisfies_oo(history: History, closure: Relation) -> bool:
    """D 4.8: every pair of conflicting m-operations is ordered.

    Fast path mirrors :func:`satisfies_ww`: the index's per-position
    conflict masks give the number of conflicting pairs, and on an
    acyclic closure the masked directed pair count must match it.
    """
    if closure.nodes == history.uids and closure.is_acyclic():
        index = HistoryIndex.of(history)
        return (
            closure.masked_pair_count(index.conflict_masks)
            == index.conflict_pair_count
        )
    return next(unordered_conflicting_pairs(history, closure), None) is None


def satisfies_wo(history: History, closure: Relation) -> bool:
    """D 4.10: m-operations writing a common object are ordered.

    Both OO- and WW-constraints imply WO (the paper uses WO to factor
    the proofs common to both).

    Fast path mirrors :func:`satisfies_oo`: the index's write-conflict
    masks give the number of co-writing pairs, and on an acyclic
    closure the masked directed pair count must match it.
    """
    if closure.nodes == history.uids and closure.is_acyclic():
        index = HistoryIndex.of(history)
        return (
            closure.masked_pair_count(index.write_conflict_masks)
            == index.write_conflict_pair_count
        )
    updates = [m for m in history.all_mops if m.is_update]
    for i, a in enumerate(updates):
        for b in updates[i + 1 :]:
            if a.wobjects & b.wobjects and not _ordered(closure, a.uid, b.uid):
                return False
    return True


def rw_pairs(history: History, closure: Relation) -> List[Tuple[int, int]]:
    """D 4.11: the logical read-write precedence ``~rw``.

    ``a ~rw c`` iff some ``b`` exists with ``interfere(H, a, b, c)``
    and ``b ~H c``.  Intuitively, in any legal sequential history
    equivalent to ``H``, the overwriter ``c`` must come after the
    reader ``a``.

    Args:
        history: the history.
        closure: transitive closure of the base order ``~H``.
    """
    index = HistoryIndex.of(history)
    if closure.nodes == history.uids:
        return index.rw_pairs_under(closure)
    pairs = set()
    for a_uid, b_uid, c_uid in index.interfering_triples():
        if (b_uid, c_uid) in closure and a_uid != c_uid:
            pairs.add((a_uid, c_uid))
    return sorted(pairs)


def extended_relation(
    history: History, base: Relation, *, iterate: bool = False
) -> Relation:
    """D 4.12: the extended relation ``~H+ = (~H ∪ ~rw)+``.

    Args:
        history: the history.
        base: the generating order ``~H`` (need not be closed).
        iterate: the paper's definition computes ``~rw`` once, from
            ``~H`` (this is sufficient under WO-constraint, Lemma 5).
            With ``iterate=True`` the ``~rw`` derivation is repeated to
            a fixpoint — every new edge can reveal further forced
            precedences — which gives a strictly stronger (still sound)
            relation useful as constraint propagation for the exact
            checker on *unconstrained* histories.

    Returns:
        The transitive closure of ``~H ∪ ~rw``.  The result may be
        cyclic (contain ``a ~ b`` and ``b ~ a``); Lemmas 3/4 guarantee
        acyclicity only when the history is legal and under OO/WW
        constraint, and callers use
        :meth:`~repro.core.relations.Relation.is_acyclic` to test.
    """
    closure = base.transitive_closure()
    while True:
        new_pairs = [p for p in rw_pairs(history, closure) if p not in closure]
        if not new_pairs:
            return closure
        extended = closure.copy()
        for a_uid, c_uid in new_pairs:
            if a_uid != c_uid:
                extended.add(a_uid, c_uid)
        closure = extended.transitive_closure()
        if not iterate:
            return closure


def is_data_race_free(history: History) -> bool:
    """DRF: no two *conflicting* m-operations overlap in real time.

    Section 4's alternate discipline: "impose constraints on the
    program execution (data race free (DRF) and concurrent write free
    (CWF)).  The system can then provide weaker guarantees and have
    better performance.  The onus of enforcing these constraints then
    lies with the programmer."  This predicate decides, post hoc,
    whether an execution honoured the stronger of the two.

    Requires a timed history.
    """
    mops = history.mops
    for i, a in enumerate(mops):
        for b in mops[i + 1 :]:
            if conflict(a, b) and a.overlaps(b):
                return False
    return True


def is_concurrent_write_free(history: History) -> bool:
    """CWF: no two m-operations writing a common object overlap.

    The weaker Section-4 program constraint: write/write races are
    excluded, read/write races are permitted.  Requires a timed
    history.
    """
    updates = [m for m in history.mops if m.is_update]
    for i, a in enumerate(updates):
        for b in updates[i + 1 :]:
            if a.wobjects & b.wobjects and a.overlaps(b):
                return False
    return True


def constraint_report(history: History, base: Relation) -> dict:
    """A diagnostic summary of which constraints a history satisfies."""
    closure = base.transitive_closure()
    return {
        "ww": satisfies_ww(history, closure),
        "oo": satisfies_oo(history, closure),
        "wo": satisfies_wo(history, closure),
        "rw_pairs": rw_pairs(history, closure),
        "base_acyclic": closure.is_acyclic(),
        "extended_acyclic": extended_relation(history, base).is_acyclic(),
    }
