"""Message-latency models for the simulated network (substrate S10).

The paper assumes only that "a message sent is eventually received"
and that "messages can get reordered" — i.e. reliable, non-FIFO,
unbounded-delay channels.  These models give per-message delays; with
any non-degenerate model, two messages on the same channel can arrive
out of order, exercising the protocols' independence from FIFO-ness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class LatencyModel:
    """Base class: sample a one-way delay for a message.

    Subclasses must be deterministic functions of the supplied RNG so
    that simulations are reproducible from a seed.
    """

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        """Return the delay for one message from ``src`` to ``dst``."""
        raise NotImplementedError

    def mean(self) -> float:
        """The mean one-way delay (used by analysis code)."""
        raise NotImplementedError


@dataclass(frozen=True)
class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay`` time units."""

    delay: float = 1.0

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency(LatencyModel):
    """Delays drawn uniformly from ``[low, high]``.

    With ``high > low`` messages on a channel can reorder, matching the
    paper's channel model.
    """

    low: float = 0.5
    high: float = 1.5

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class ExponentialLatency(LatencyModel):
    """Exponentially distributed delays with the given mean.

    Heavy reordering and occasional stragglers; a good stress model
    for the Fig-6 query phase, whose response time is governed by the
    *maximum* of n reply delays.
    """

    mean_delay: float = 1.0
    floor: float = 0.05

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        return self.floor + rng.expovariate(1.0 / self.mean_delay)

    def mean(self) -> float:
        return self.floor + self.mean_delay


@dataclass(frozen=True)
class AsymmetricLatency(LatencyModel):
    """Per-destination base delay plus uniform jitter.

    Models a cluster where one replica is far away — useful for
    showing that the Fig-6 query phase waits for the slowest replica
    while Fig-4 queries do not.
    """

    base: float = 0.5
    jitter: float = 0.5
    slow_node: int = 0
    slow_extra: float = 3.0

    def sample(self, rng: random.Random, src: int, dst: int) -> float:
        delay = self.base + rng.uniform(0.0, self.jitter)
        if dst == self.slow_node or src == self.slow_node:
            delay += self.slow_extra
        return delay

    def mean(self) -> float:
        return self.base + self.jitter / 2.0
