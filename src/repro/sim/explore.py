"""Exhaustive message-interleaving exploration (a miniature model checker).

The randomized correctness sweeps (experiments T15/T20) sample message
orderings; this module *enumerates* them.  On small workloads it runs
a protocol under **every** possible delivery order of its messages and
yields each complete execution's :class:`RunResult` — turning
"zero violations across seeds" into "zero violations, period" for the
explored instance.

Mechanics
---------

:class:`ControlledNetwork` intercepts sends into a pending pool
instead of scheduling timed deliveries.  The explorer replays
*schedules* — sequences of indices into the pending pool — against a
freshly built cluster each time:

1. build the cluster (``network_factory=controlled_network``) and
   ``prepare`` the workloads; drain local events (``sim.run``);
2. for each choice in the schedule: deliver that pending message
   (advancing virtual time by one unit so histories stay well-formed
   and real-time order reflects the chosen sequence), then drain to
   quiescence — responses, next invocations and new sends all happen
   here;
3. when the pool is empty, ``finalize`` and yield the run; otherwise
   branch on every currently pending index.

The state space is the tree of choice sequences; replay-from-scratch
keeps the explorer trivially correct (no state snapshotting) at the
cost of re-running prefixes — fine at the scale where exhaustiveness
is affordable at all.  ``limit`` caps the number of complete
executions; hitting it raises :class:`ExplorationBudgetExceeded` so a
test can never silently pass on partial coverage.

Clusters built for exploration must be deterministic apart from the
delivery order: use ``think_jitter=0`` and ``start_jitter=0`` (the
driver enforces this).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.network import Message, Network

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.protocols.base import Cluster, RunResult, Workloads


class ExplorationBudgetExceeded(RuntimeError):
    """More complete executions exist than the allowed ``limit``."""


class ControlledNetwork(Network):
    """A network whose deliveries are chosen, not timed.

    Sends append to :attr:`pool`; :meth:`deliver` hands one pending
    message to its destination at ``now + 1``.
    """

    def __init__(self, sim: Simulator, n: int) -> None:
        super().__init__(sim, n, seed=0)
        self.pool: List[Tuple[int, int, Message]] = []

    def send(self, src: int, dst: int, message: Message) -> None:
        self._check_pid(src)
        self._check_pid(dst)
        self.stats.record_send(message)
        self.pool.append((src, dst, message))

    def deliver(self, index: int) -> None:
        """Deliver the index-th pending message one time unit from now."""
        src, dst, message = self.pool.pop(index)
        self._schedule_delivery(src, dst, message, 1.0)


def _resolve_exploration_factory(cluster_factory):
    """Accept a registry protocol name alongside bare factories.

    Resolved lazily through :mod:`repro.runtime.registry` so exploring
    ``"msc"`` and exploring ``msc_cluster`` are the same thing.
    """
    if not isinstance(cluster_factory, str):
        return cluster_factory
    from repro.runtime.registry import get_protocol

    return get_protocol(cluster_factory).factory


def explore(
    cluster_factory: "Callable[..., Cluster]",
    workloads: "Workloads",
    *,
    limit: int = 20_000,
    cluster_kwargs: Optional[dict] = None,
) -> "Iterator[RunResult]":
    """Yield a :class:`RunResult` for every message interleaving.

    Args:
        cluster_factory: a registered protocol name (``"msc"``) or a
            factory such as ``msc_cluster``; called as
            ``cluster_factory(n, objects, network_factory=...,
            think_jitter=0, start_jitter=0, **cluster_kwargs)`` — the
            caller supplies ``n``/``objects`` via ``cluster_kwargs``.
            Simplest use: pass a zero-argument lambda via
            :func:`explore_factory` below.
        workloads: the per-process programs (keep them tiny: the tree
            is factorial in the message count).
        limit: maximum number of complete executions; exceeding it
            raises :class:`ExplorationBudgetExceeded`.
        cluster_kwargs: forwarded to the factory.
    """
    cluster_factory = _resolve_exploration_factory(cluster_factory)
    kwargs = dict(cluster_kwargs or {})

    def replay(schedule: List[int]) -> Tuple[str, object]:
        cluster = cluster_factory(
            network_factory=ControlledNetwork,
            think_jitter=0.0,
            start_jitter=0.0,
            **kwargs,
        )
        network = cluster.network
        if not isinstance(network, ControlledNetwork):  # pragma: no cover
            raise SimulationError(
                "exploration requires the ControlledNetwork"
            )
        cluster.prepare(workloads)
        cluster.sim.run()
        for choice in schedule:
            if choice >= len(network.pool):  # pragma: no cover
                raise SimulationError("stale exploration schedule")
            network.deliver(choice)
            cluster.sim.run()
        if network.pool:
            return ("branch", len(network.pool))
        return ("complete", cluster.finalize())

    executions = 0

    def dfs(schedule: List[int]) -> "Iterator[RunResult]":
        nonlocal executions
        outcome, payload = replay(schedule)
        if outcome == "complete":
            executions += 1
            if executions > limit:
                raise ExplorationBudgetExceeded(
                    f"more than {limit} complete executions"
                )
            yield payload  # type: ignore[misc]
            return
        for choice in range(payload):  # type: ignore[arg-type]
            yield from dfs(schedule + [choice])

    yield from dfs([])


def explore_verified(
    cluster_factory: "Callable[..., Cluster]",
    workloads: "Workloads",
    *,
    condition: Optional[str] = None,
    method: str = "auto",
    limit: int = 20_000,
    cluster_kwargs: Optional[dict] = None,
) -> "Iterator[Tuple[RunResult, object]]":
    """:func:`explore`, with every interleaving checked on the spot.

    Yields ``(result, verdict)`` pairs where the verdict comes from
    the shared checking pipeline
    (:func:`repro.core.consistency.check_condition`) with the run's
    recorded ``~ww`` delivery order as ``extra_pairs`` — the same call
    the demo and chaos paths make, so exhaustive interleaving coverage
    and single-run verification cannot drift apart.

    ``condition`` defaults to the registry's declared condition when
    ``cluster_factory`` is a protocol name, else ``"m-sc"``.
    """
    from repro.core.consistency import check_condition

    if condition is None:
        condition = "m-sc"
        if isinstance(cluster_factory, str):
            from repro.runtime.registry import get_protocol

            condition = get_protocol(cluster_factory).condition or "m-sc"

    for result in explore(
        cluster_factory,
        workloads,
        limit=limit,
        cluster_kwargs=cluster_kwargs,
    ):
        verdict = check_condition(
            result.history,
            condition,
            method=method,
            extra_pairs=result.ww_pairs(),
        )
        yield result, verdict


def explore_factory(
    factory: "Callable[..., Cluster]",
    n: int,
    objects,
    **kwargs,
) -> "Callable[..., Cluster]":
    """Bind ``n``/``objects``/extras into an exploration factory.

    ``factory`` may be a registered protocol name or a callable.
    """
    factory = _resolve_exploration_factory(factory)

    def build(**extra) -> "Cluster":
        merged = dict(kwargs)
        merged.update(extra)
        return factory(n, objects, **merged)

    return build
