"""Discrete-event simulation kernel (substrate S9).

The paper's protocols run in an asynchronous distributed system.  We
model it with a classic discrete-event simulator: a priority queue of
``(time, sequence, callback)`` entries drained in timestamp order.
Virtual time is a float; ties are broken by insertion sequence, so
runs are fully deterministic given deterministic callbacks.

The drain loop is **batched**: all entries sharing the head timestamp
are popped in one pass and fired in sequence order.  Callbacks that
schedule at the current instant receive a higher sequence number than
anything already queued, so they land in a later batch of the same
timestamp — the firing order is exactly the per-entry pop order of the
unbatched loop, and histories are byte-identical per seed.  Per-batch
overhead outside the callbacks themselves is one attribute check when
no tracer/metrics collector is installed.

Bookkeeping is O(1): ``pending`` is a live counter (not a queue scan),
and cancelled entries are dropped lazily — either when their timestamp
arrives or, if they ever exceed half the queue, by a one-shot
compaction that rebuilds the heap without them (``(time, seq)`` is a
total order, so heapification preserves firing order).

The kernel knows nothing about processes or messages — those live in
:mod:`repro.sim.network` and :mod:`repro.sim.actor`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.obs import get_metrics, get_tracer

#: Queues smaller than this are never compacted: a handful of stale
#: entries drain naturally and the rebuild would cost more than it
#: saves.
_COMPACT_MIN_QUEUE = 64


class _Entry:
    """One scheduled event.

    The heap itself holds ``(time, seq, entry)`` tuples so ordering is
    decided by C-level float/int comparisons — ``seq`` is unique, so
    the entry object is never compared.  The entry carries the mutable
    state (``cancelled``/``fired``) plus the ``time`` the handle
    exposes.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = (),
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False


class EventHandle:
    """Handle to a scheduled event, supporting cancellation."""

    __slots__ = ("_entry", "_sim")

    def __init__(self, entry: _Entry, sim: "Simulator") -> None:
        self._entry = entry
        self._sim = sim

    @property
    def time(self) -> float:
        """The virtual time at which the event will fire."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        entry = self._entry
        if entry.cancelled or entry.fired:
            return
        entry.cancelled = True
        self._sim._on_cancel()


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("at t=1.5"))
        sim.run()

    Events scheduled while running are processed in order; the
    simulation ends when the queue is empty, when ``until`` is
    reached, or when ``max_events`` have fired.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        #: Min-heap of ``(time, seq, _Entry)`` tuples.
        self._queue: List[tuple] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._running = False
        # Live bookkeeping: ``_pending`` counts scheduled, unfired,
        # uncancelled events (O(1) ``pending``); ``_stale`` estimates
        # how many cancelled entries still sit in the heap, driving
        # lazy compaction.
        self._pending = 0
        self._stale = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events processed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events (O(1))."""
        return self._pending

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        Args:
            delay: non-negative offset from the current virtual time.
            callback: zero-argument callable.

        Returns:
            A cancellable :class:`EventHandle`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        entry = _Entry(time, callback)
        heapq.heappush(self._queue, (time, next(self._seq), entry))
        self._pending += 1
        return EventHandle(entry, self)

    def post(
        self, delay: float, callback: Callable[..., None], *args: object
    ) -> None:
        """Schedule a fire-and-forget event (no cancellation handle).

        Identical ordering semantics to :meth:`schedule`, minus the
        :class:`EventHandle` allocation — the right call on hot paths
        (message delivery) where the handle is always discarded.
        Positional ``args`` are passed to ``callback`` at fire time,
        so delivery loops need no per-event closure.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        time = self._now + delay
        heapq.heappush(
            self._queue, (time, next(self._seq), _Entry(time, callback, args))
        )
        self._pending += 1

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback)

    def _on_cancel(self) -> None:
        """Bookkeeping for one newly cancelled, unfired entry."""
        self._pending -= 1
        self._stale += 1
        if (
            self._stale * 2 > len(self._queue)
            and len(self._queue) >= _COMPACT_MIN_QUEUE
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify.

        ``(time, seq)`` is a strict total order over entries, so the
        rebuilt heap pops survivors in exactly the same order as the
        original.  ``_stale`` may slightly overcount (an entry can be
        cancelled after it was popped into the current batch), hence
        reset rather than subtraction.
        """
        self._queue = [item for item in self._queue if not item[2].cancelled]
        heapq.heapify(self._queue)
        self._stale = 0

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drain the event queue in same-timestamp batches.

        Args:
            until: stop once virtual time would exceed this value
                (events at exactly ``until`` still fire).
            max_events: stop after firing this many events (guards
                against livelock in faulty protocols under test).

        Returns:
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired_this_run = 0
        # Observability: while the queue drains, the installed tracer
        # reads *virtual* time, so spans emitted from simulated code
        # are deterministic under a fixed seed.  With no collector
        # installed the per-batch cost is one None check.
        tracer = get_tracer()
        binding = run_span = None
        if tracer.enabled:
            binding = tracer.bind_clock(lambda: self._now, "sim")
            binding.__enter__()
            run_span = tracer.begin("kernel.run")
        metrics = get_metrics()
        depth_gauge = (
            metrics.gauge("kernel.queue_depth") if metrics is not None else None
        )
        queue = self._queue
        pop = heapq.heappop
        try:
            while True:
                if queue is not self._queue:  # compaction swapped it
                    queue = self._queue
                # Shed cancelled heads without firing or tracer work.
                while queue and queue[0][2].cancelled:
                    pop(queue)
                    if self._stale:
                        self._stale -= 1
                if not queue:
                    break
                batch_time = queue[0][0]
                if until is not None and batch_time > until:
                    break
                if max_events is not None and fired_this_run >= max_events:
                    break
                if batch_time < self._now:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"event queue disorder: {batch_time} < {self._now}"
                    )
                self._now = batch_time
                # Pop the whole same-timestamp run in one pass, capped
                # by the remaining event budget.  Callbacks scheduling
                # at ``batch_time`` get higher sequence numbers than
                # every entry still queued, so later batches of the
                # same instant preserve global ``(time, seq)`` order.
                budget = (
                    None
                    if max_events is None
                    else max_events - fired_this_run
                )
                batch = [pop(queue)[2]]
                while (
                    queue
                    and queue[0][0] == batch_time
                    and (budget is None or len(batch) < budget)
                ):
                    batch.append(pop(queue)[2])
                if depth_gauge is not None:
                    depth_gauge.set(self._pending)
                for entry in batch:
                    if entry.cancelled:
                        # Cancelled while queued or mid-batch; it has
                        # left the heap either way.
                        if self._stale:
                            self._stale -= 1
                        continue
                    entry.fired = True
                    self._pending -= 1
                    self._events_fired += 1
                    fired_this_run += 1
                    args = entry.args
                    if args:
                        entry.callback(*args)
                    else:
                        entry.callback()
        finally:
            self._running = False
            if run_span is not None:
                run_span.end(events=fired_this_run)
            if binding is not None:
                binding.__exit__()
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one event.  Returns False if the queue is empty."""
        before = self._events_fired
        self.run(max_events=1)
        return self._events_fired > before
