"""Discrete-event simulation kernel (substrate S9).

The paper's protocols run in an asynchronous distributed system.  We
model it with a classic discrete-event simulator: a priority queue of
``(time, sequence, callback)`` entries drained in timestamp order.
Virtual time is a float; ties are broken by insertion sequence, so
runs are fully deterministic given deterministic callbacks.

The kernel knows nothing about processes or messages — those live in
:mod:`repro.sim.network` and :mod:`repro.sim.actor`.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.obs import get_metrics, get_tracer


@dataclass(order=True)
class _Entry:
    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Handle to a scheduled event, supporting cancellation."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def time(self) -> float:
        """The virtual time at which the event will fire."""
        return self._entry.time

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        self._entry.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, lambda: print("at t=1.5"))
        sim.run()

    Events scheduled while running are processed in order; the
    simulation ends when the queue is empty, when ``until`` is
    reached, or when ``max_events`` have fired.
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._queue: List[_Entry] = []
        self._seq = itertools.count()
        self._events_fired = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total number of events processed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule(
        self, delay: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` to fire ``delay`` time units from now.

        Args:
            delay: non-negative offset from the current virtual time.
            callback: zero-argument callable.

        Returns:
            A cancellable :class:`EventHandle`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        entry = _Entry(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, entry)
        return EventHandle(entry)

    def schedule_at(
        self, time: float, callback: Callable[[], None]
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time``."""
        return self.schedule(time - self._now, callback)

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> float:
        """Drain the event queue.

        Args:
            until: stop once virtual time would exceed this value
                (events at exactly ``until`` still fire).
            max_events: stop after firing this many events (guards
                against livelock in faulty protocols under test).

        Returns:
            The virtual time when the run stopped.
        """
        if self._running:
            raise SimulationError("Simulator.run() is not reentrant")
        self._running = True
        fired_this_run = 0
        # Observability: while the queue drains, the installed tracer
        # reads *virtual* time, so spans emitted from simulated code
        # are deterministic under a fixed seed.  With no collector
        # installed the per-event cost is one attribute check.
        tracer = get_tracer()
        binding = run_span = None
        if tracer.enabled:
            binding = tracer.bind_clock(lambda: self._now, "sim")
            binding.__enter__()
            run_span = tracer.begin("kernel.run")
        metrics = get_metrics()
        depth_gauge = (
            metrics.gauge("kernel.queue_depth") if metrics is not None else None
        )
        try:
            while self._queue:
                entry = self._queue[0]
                if entry.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and entry.time > until:
                    break
                if max_events is not None and fired_this_run >= max_events:
                    break
                heapq.heappop(self._queue)
                if entry.time < self._now:  # pragma: no cover - defensive
                    raise SimulationError(
                        f"event queue disorder: {entry.time} < {self._now}"
                    )
                self._now = entry.time
                self._events_fired += 1
                fired_this_run += 1
                if depth_gauge is not None:
                    depth_gauge.set(len(self._queue))
                entry.callback()
        finally:
            self._running = False
            if run_span is not None:
                run_span.end(events=fired_this_run)
            if binding is not None:
                binding.__exit__()
        if until is not None and self._now < until and not self._queue:
            self._now = until
        return self._now

    def step(self) -> bool:
        """Fire exactly one event.  Returns False if the queue is empty."""
        before = self._events_fired
        self.run(max_events=1)
        return self._events_fired > before
