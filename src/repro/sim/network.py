"""Simulated message-passing network (substrate S10).

Implements the paper's channel model: reliable point-to-point channels
with unbounded (simulated) delay and **no FIFO guarantee** — "the
messages can get reordered" (Section 5).  Optional fault injection
(drop/duplicate) exists solely for negative tests of the atomic
broadcast layer; the protocol experiments never enable it, matching
the paper's reliability assumption.

The network also keeps per-kind message statistics (count and payload
size), which power the message-cost benchmarks (experiments A2/A3).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.latency import FixedLatency, LatencyModel

#: Signature of a message handler: (src_pid, message) -> None.
Handler = Callable[[int, "Message"], None]


@dataclass(frozen=True)
class Message:
    """A network message.

    Attributes:
        kind: short type tag (e.g. ``"abcast"``, ``"query"``).
        payload: arbitrary payload; must be treated as immutable by
            receivers (the simulator delivers the same object to every
            destination of a broadcast).
    """

    kind: str
    payload: Any = None


def estimate_size(value: Any) -> int:
    """A crude, deterministic payload-size estimate in abstract units.

    Used for relative comparisons only (experiment A3: full-store
    query replies vs. relevant-objects-only replies), never for
    absolute byte counts.
    """
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (list, tuple, set, frozenset)):
        return 2 + sum(estimate_size(v) for v in value)
    if isinstance(value, dict):
        return 2 + sum(
            estimate_size(k) + estimate_size(v) for k, v in value.items()
        )
    if hasattr(value, "__dict__"):
        return estimate_size(vars(value))
    return 8


@dataclass
class ChannelStats:
    """Aggregate statistics of messages that entered the network."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    total_size: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    size_by_kind: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.sent += 1
        size = estimate_size(message.payload)
        self.total_size += size
        self.by_kind[message.kind] = self.by_kind.get(message.kind, 0) + 1
        self.size_by_kind[message.kind] = (
            self.size_by_kind.get(message.kind, 0) + size
        )


class Network:
    """A reliable, reordering, point-to-point network.

    Args:
        sim: the driving simulator.
        n: number of endpoints, with pids ``0..n-1``.
        latency: per-message delay model (default: fixed 1.0).
        fifo: when True, deliveries on each ordered channel are forced
            into send order (delay clamped); default False, matching
            the paper.
        seed: RNG seed for latency sampling and fault injection.
        drop_prob: probability of silently dropping a message —
            **violates** the paper's model; for abcast negative tests
            only.
        dup_prob: probability of delivering a message twice.
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        *,
        latency: Optional[LatencyModel] = None,
        fifo: bool = False,
        seed: int = 0,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
    ) -> None:
        if n <= 0:
            raise SimulationError("network needs at least one endpoint")
        self.sim = sim
        self.n = n
        self.latency = latency or FixedLatency(1.0)
        self.fifo = fifo
        self.drop_prob = drop_prob
        self.dup_prob = dup_prob
        self.stats = ChannelStats()
        self._rng = random.Random(seed)
        self._handlers: Dict[int, Handler] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, pid: int, handler: Handler) -> None:
        """Attach the message handler for endpoint ``pid``."""
        self._check_pid(pid)
        if pid in self._handlers:
            raise SimulationError(f"endpoint {pid} already registered")
        self._handlers[pid] = handler

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(self, src: int, dst: int, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        Self-sends are permitted and also traverse the (zero-distance
        but still asynchronous) channel: the handler runs in a later
        simulator event, never synchronously.
        """
        self._check_pid(src)
        self._check_pid(dst)
        self.stats.record_send(message)
        if self.drop_prob and self._rng.random() < self.drop_prob:
            self.stats.dropped += 1
            return
        copies = 1
        if self.dup_prob and self._rng.random() < self.dup_prob:
            copies = 2
            self.stats.duplicated += 1
        for _ in range(copies):
            delay = self.latency.sample(self._rng, src, dst)
            if delay < 0:
                raise SimulationError("latency model produced negative delay")
            if self.fifo:
                arrival = self.sim.now + delay
                floor = self._last_delivery.get((src, dst), -1.0)
                arrival = max(arrival, floor + 1e-9)
                self._last_delivery[(src, dst)] = arrival
                delay = arrival - self.sim.now
            self._schedule_delivery(src, dst, message, delay)

    def send_to_all(
        self, src: int, message: Message, *, include_self: bool = True
    ) -> None:
        """Point-to-point send to every endpoint (not atomic broadcast!).

        This is the unordered "send to all processes" used by the
        Fig-6 query phase (actions A3/A4); total-order broadcast lives
        in :mod:`repro.abcast`.
        """
        for dst in range(self.n):
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _schedule_delivery(
        self, src: int, dst: int, message: Message, delay: float
    ) -> None:
        def deliver() -> None:
            handler = self._handlers.get(dst)
            if handler is None:
                raise SimulationError(
                    f"message {message.kind!r} delivered to unregistered "
                    f"endpoint {dst}"
                )
            self.stats.delivered += 1
            handler(src, message)

        self.sim.schedule(delay, deliver)

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise SimulationError(
                f"pid {pid} outside the endpoint range 0..{self.n - 1}"
            )
