"""Simulated message-passing network (substrate S10).

Implements the paper's channel model: reliable point-to-point channels
with unbounded (simulated) delay and **no FIFO guarantee** — "the
messages can get reordered" (Section 5).

Beyond the paper's model, the network supports a *fault layer* used by
the robustness subsystem (:mod:`repro.sim.faults`, :mod:`repro.sim.
chaos`):

* probabilistic message **drops** and **duplicates**;
* a mutable **delay factor** for latency spikes;
* endpoint **crash/restore** (frames to a down endpoint vanish, the
  endpoint's own retransmission timers are volatile and die with it);
* **link-level partitions**: a reachability matrix of directed link
  cuts (:meth:`Network.cut_link` / :meth:`Network.partition`); frames
  on a cut link are discarded (``lost_to_partition``), and healing a
  link immediately *flushes* the sender's outstanding reliable
  transfers across it, so the ack/dedup shim delivers every queued
  logical message exactly once after the heal;
* an optional **reliable-delivery shim** (``reliable=True``): every
  logical send is assigned a transfer id, the receiver acknowledges
  each data frame, the sender retransmits unacknowledged frames with
  exponential backoff plus jitter, and the receiver suppresses
  duplicate transfer ids.  Protocols written against reliable channels
  then survive lossy ones without modification.

The network also keeps per-kind message statistics (count and payload
size), which power the message-cost benchmarks (experiments A2/A3).
Accounting is unified across the unicast, broadcast, retransmission
and acknowledgment paths: every *logical* send is counted once in
``sent``/``by_kind``, while every *physical* frame that the fault
layer drops or duplicates is counted in ``dropped``/``duplicated``
regardless of which path emitted it; shim traffic is tallied
separately (``retransmitted``, ``acked``, ``deduped``).
"""

from __future__ import annotations

import itertools
import random
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from repro.errors import DeliveryTimeout, ProcessCrashed, SimulationError
from repro.obs import MetricsRegistry, get_tracer
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.latency import FixedLatency, LatencyModel

#: Signature of a message handler: (src_pid, message) -> None.
Handler = Callable[[int, "Message"], None]

#: Maximum recursion depth for :func:`estimate_size`.
MAX_SIZE_DEPTH = 24


class Message:
    """A network message.

    Attributes:
        kind: short type tag (e.g. ``"abcast"``, ``"query"``).
        payload: arbitrary payload; must be treated as immutable by
            receivers (the simulator delivers the same object to every
            destination of a broadcast).

    Immutable (attribute assignment raises), ``__slots__``-backed, and
    carries a lazily computed payload-size cache: a broadcast reuses
    one ``Message`` across all destinations, so the
    :func:`estimate_size` tree-walk runs once per message instead of
    once per destination.  Messages are *not* recycled through a free
    list — receivers legitimately retain them (dedup ledgers, recorded
    histories), so reuse would alias live payloads.
    """

    __slots__ = ("kind", "payload", "_size")

    def __init__(self, kind: str, payload: Any = None) -> None:
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "payload", payload)
        object.__setattr__(self, "_size", None)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError(
            f"Message is immutable (cannot set {name!r})"
        )

    def __repr__(self) -> str:
        return f"Message(kind={self.kind!r}, payload={self.payload!r})"

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return self.kind == other.kind and self.payload == other.payload

    def __hash__(self) -> int:
        return hash((Message, self.kind, self.payload))

    @property
    def size(self) -> int:
        """Cached :func:`estimate_size` of the payload."""
        size = self._size
        if size is None:
            size = estimate_size(self.payload)
            object.__setattr__(self, "_size", size)
        return size


def estimate_size(value: Any) -> int:
    """A crude, deterministic payload-size estimate in abstract units.

    Used for relative comparisons only (experiment A3: full-store
    query replies vs. relevant-objects-only replies), never for
    absolute byte counts.  Guarded against cyclic and pathologically
    deep payloads (chaos tests craft those): recursion stops at
    :data:`MAX_SIZE_DEPTH` or on revisiting a container, returning a
    flat sentinel cost instead of overflowing the stack.
    """
    return _estimate_size(value, 0, set())


def _estimate_size(value: Any, depth: int, seen: Set[int]) -> int:
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, str):
        return len(value)
    if depth >= MAX_SIZE_DEPTH or id(value) in seen:
        return 8
    if isinstance(value, (list, tuple, set, frozenset)):
        seen.add(id(value))
        total = 2 + sum(_estimate_size(v, depth + 1, seen) for v in value)
        seen.discard(id(value))
        return total
    if isinstance(value, dict):
        seen.add(id(value))
        total = 2 + sum(
            _estimate_size(k, depth + 1, seen)
            + _estimate_size(v, depth + 1, seen)
            for k, v in value.items()
        )
        seen.discard(id(value))
        return total
    if hasattr(value, "__dict__"):
        seen.add(id(value))
        total = _estimate_size(vars(value), depth + 1, seen)
        seen.discard(id(value))
        return total
    return 8


class _CounterProperty:
    """Expose a registry counter as a plain int attribute.

    Keeps the pre-registry surface (``stats.dropped += 1`` and
    ``stats.dropped == 3``) working while the numbers live in a
    :class:`~repro.obs.MetricsRegistry`.
    """

    __slots__ = ("attr",)

    def __init__(self, attr: str) -> None:
        self.attr = attr

    def __get__(self, obj: "NetworkStats", _objtype=None) -> int:
        if obj is None:  # pragma: no cover - class access
            return self
        obj._flush()
        return getattr(obj, self.attr).value

    def __set__(self, obj: "NetworkStats", value: int) -> None:
        counter = getattr(obj, self.attr)
        counter.inc(value - counter.value)


class NetworkStats:
    """Aggregate statistics of messages that entered the network.

    ``sent``/``by_kind``/``size_by_kind`` count *logical* sends (one
    per ``send()`` call); ``dropped``/``duplicated`` count *physical*
    frames affected by fault injection on any path (data, broadcast
    copy, retransmission, acknowledgment); the remaining fields are
    the reliable-delivery shim's ledger.

    The numbers are held in a per-network
    :class:`~repro.obs.MetricsRegistry` (``stats.registry``); the int
    attributes below are views into it, and :meth:`snapshot` renders
    the whole registry as one plain dict.
    """

    _SCALARS = (
        ("sent", "net.sent"),
        ("delivered", "net.delivered"),
        ("dropped", "net.dropped"),
        ("duplicated", "net.duplicated"),
        # Retransmission attempts by the reliable shim (physical
        # resends beyond each frame's first transmission).
        ("retransmitted", "net.retransmitted"),
        # Acknowledgments that reached their sender.
        ("acked", "net.acked"),
        # Duplicate data frames suppressed at the receiver by
        # transfer id.
        ("deduped", "net.deduped"),
        # Frames discarded because the destination endpoint was down.
        ("lost_to_crash", "net.lost_to_crash"),
        # Frames discarded because the directed link was cut.
        ("lost_to_partition", "net.lost_to_partition"),
        # Outstanding reliable transfers re-fired by a link heal.
        ("flushed", "net.flushed"),
        ("total_size", "net.total_size"),
    )

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        for attr, metric in self._SCALARS:
            setattr(self, f"_{attr}", self.registry.counter(metric))
        # Hot-path buffer: the simulated network is single-threaded,
        # so per-send/per-delivery increments accumulate in plain ints
        # (no instrument locks) and flush into the registry whenever a
        # view property, ``by_kind``/``size_by_kind`` or ``snapshot``
        # is read.  Cold-path counters (drops, retransmits, ...) still
        # write through directly.
        self._pending_sent = 0
        self._pending_delivered = 0
        self._pending_size = 0
        # kind -> [sends, size units] awaiting flush.
        self._pending_kind: Dict[str, List[int]] = {}

    sent = _CounterProperty("_sent")
    delivered = _CounterProperty("_delivered")
    dropped = _CounterProperty("_dropped")
    duplicated = _CounterProperty("_duplicated")
    retransmitted = _CounterProperty("_retransmitted")
    acked = _CounterProperty("_acked")
    deduped = _CounterProperty("_deduped")
    lost_to_crash = _CounterProperty("_lost_to_crash")
    lost_to_partition = _CounterProperty("_lost_to_partition")
    flushed = _CounterProperty("_flushed")
    total_size = _CounterProperty("_total_size")

    @property
    def by_kind(self) -> Dict[str, int]:
        """Logical sends per message kind (a fresh dict)."""
        self._flush()
        return self.registry.by_label("net.sent_by_kind", "kind")

    @property
    def size_by_kind(self) -> Dict[str, int]:
        """Estimated payload units per message kind (a fresh dict)."""
        self._flush()
        return self.registry.by_label("net.size_by_kind", "kind")

    def record_send(self, message: Message) -> None:
        self._pending_sent += 1
        size = message.size  # cached across broadcast destinations
        self._pending_size += size
        per_kind = self._pending_kind.get(message.kind)
        if per_kind is None:
            self._pending_kind[message.kind] = [1, size]
        else:
            per_kind[0] += 1
            per_kind[1] += size

    def record_broadcast(self, message: "Message", count: int) -> None:
        """Record ``count`` identical sends in one buffered update."""
        self._pending_sent += count
        size = message.size
        self._pending_size += size * count
        per_kind = self._pending_kind.get(message.kind)
        if per_kind is None:
            self._pending_kind[message.kind] = [count, size * count]
        else:
            per_kind[0] += count
            per_kind[1] += size * count

    def record_delivered(self) -> None:
        self._pending_delivered += 1

    def _flush(self) -> None:
        """Push buffered hot-path increments into the registry."""
        if self._pending_sent:
            self._sent.inc(self._pending_sent)
            self._pending_sent = 0
        if self._pending_delivered:
            self._delivered.inc(self._pending_delivered)
            self._pending_delivered = 0
        if self._pending_size:
            self._total_size.inc(self._pending_size)
            self._pending_size = 0
        if self._pending_kind:
            registry = self.registry
            for kind, (sends, size) in sorted(self._pending_kind.items()):
                registry.counter("net.sent_by_kind", kind=kind).inc(sends)
                registry.counter("net.size_by_kind", kind=kind).inc(size)
            self._pending_kind.clear()

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The registry's counters/gauges/histograms as a plain dict."""
        self._flush()
        return self.registry.snapshot()


#: Backwards-compatible alias (the pre-fault-layer name).
ChannelStats = NetworkStats


class _Transfer:
    """Sender-side state of one unacknowledged reliable transfer.

    Instances are recycled through the owning network's free list
    (``Network._transfer_pool``): under the reliable shim every
    logical send allocates one, and in steady state acks retire them
    at the same rate — the pool turns that churn into two list ops.
    Recycling is safe because, unlike :class:`Message`, transfers
    never escape the network: the retransmit/flush paths reach them
    through ``_outstanding`` by id, so once popped (ack or crash) the
    object is unreachable.
    """

    __slots__ = ("dst", "message", "attempts", "timer")

    def __init__(self) -> None:
        self.dst = -1
        self.message: Optional[Message] = None
        self.attempts = 0
        self.timer: Optional[EventHandle] = None


class Network:
    """A reordering point-to-point network with optional fault layer.

    Args:
        sim: the driving simulator.
        n: number of endpoints, with pids ``0..n-1``.
        latency: per-message delay model (default: fixed 1.0).
        fifo: when True, deliveries on each ordered channel are forced
            into send order (delay clamped); default False, matching
            the paper.
        seed: RNG seed for latency sampling and fault injection.
        drop_prob: probability of silently dropping a physical frame —
            **violates** the paper's model; tolerated only with the
            reliable shim (or in negative tests).
        dup_prob: probability of delivering a frame twice.
        reliable: enable the ack/retransmit/dedup shim, restoring the
            paper's reliable-channel abstraction on top of a lossy
            physical layer.
        ack_timeout: base retransmission timeout (virtual time).
        backoff: exponential backoff multiplier per retry.
        max_backoff: cap on the backoff multiplier.
        max_retries: retransmissions before :class:`DeliveryTimeout`.
        retry_jitter: desynchronizing jitter fraction added to every
            retransmission timeout.  Drawn from a *dedicated* RNG
            (seeded from ``seed``), so jitter draws never perturb the
            drop/duplicate/latency sampling stream and
            :class:`DeliveryTimeout` behavior is replayable from a
            spec.
    """

    def __init__(
        self,
        sim: Simulator,
        n: int,
        *,
        latency: Optional[LatencyModel] = None,
        fifo: bool = False,
        seed: int = 0,
        drop_prob: float = 0.0,
        dup_prob: float = 0.0,
        reliable: bool = False,
        ack_timeout: float = 4.0,
        backoff: float = 2.0,
        max_backoff: float = 8.0,
        max_retries: int = 40,
        retry_jitter: float = 0.25,
    ) -> None:
        if n <= 0:
            raise SimulationError("network needs at least one endpoint")
        self.sim = sim
        self.n = n
        self.latency = latency or FixedLatency(1.0)
        self.fifo = fifo
        self.drop_prob = drop_prob
        self.dup_prob = dup_prob
        self.reliable = reliable
        self.ack_timeout = ack_timeout
        self.backoff = backoff
        self.max_backoff = max_backoff
        self.max_retries = max_retries
        if retry_jitter < 0:
            raise SimulationError("retry_jitter must be non-negative")
        self.retry_jitter = retry_jitter
        #: Multiplier applied to every sampled latency; fault plans
        #: raise it temporarily to model congestion/delay spikes.
        self.delay_factor = 1.0
        self.stats = NetworkStats()
        self._rng = random.Random(seed)
        # Dedicated stream for retransmission jitter: timer behavior
        # stays identical however many frames the fault layer samples.
        self._retry_rng = random.Random((seed + 1) * 0x9E3779B1)
        #: Directed link cuts: ``(src, dst)`` pairs currently severed.
        self._cut: Set[Tuple[int, int]] = set()
        self._handlers: Dict[int, Handler] = {}
        self._last_delivery: Dict[Tuple[int, int], float] = {}
        self._down: Set[int] = set()
        self._next_xfer = itertools.count()
        #: Sender pid -> transfer id -> in-flight state (volatile:
        #: wiped when the sender crashes).
        self._outstanding: Dict[int, Dict[int, _Transfer]] = {
            pid: {} for pid in range(n)
        }
        #: Receiver pid -> transfer ids already delivered (volatile).
        self._seen: Dict[int, Set[int]] = {pid: set() for pid in range(n)}
        #: Retired transfer objects awaiting reuse (see ``_Transfer``).
        self._transfer_pool: List[_Transfer] = []

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------

    def register(self, pid: int, handler: Handler) -> None:
        """Attach the message handler for endpoint ``pid``."""
        self._check_pid(pid)
        if pid in self._handlers:
            raise SimulationError(f"endpoint {pid} already registered")
        self._handlers[pid] = handler

    # ------------------------------------------------------------------
    # Crash / restore
    # ------------------------------------------------------------------

    def crash(self, pid: int) -> None:
        """Take endpoint ``pid`` down.

        In-flight frames *to* it will be discarded on arrival; its own
        retransmission timers and dedup memory are volatile and lost.
        """
        self._check_pid(pid)
        if pid in self._down:
            raise ProcessCrashed(f"endpoint {pid} is already down")
        self._down.add(pid)
        for transfer in self._outstanding[pid].values():
            if transfer.timer is not None:
                transfer.timer.cancel()
            self._recycle_transfer(transfer)
        self._outstanding[pid].clear()
        self._seen[pid].clear()

    def restore(self, pid: int) -> None:
        """Bring a crashed endpoint back (with empty volatile state)."""
        self._check_pid(pid)
        if pid not in self._down:
            raise ProcessCrashed(f"endpoint {pid} is not down")
        self._down.discard(pid)

    def is_down(self, pid: int) -> bool:
        """True iff endpoint ``pid`` is currently crashed."""
        return pid in self._down

    @property
    def down(self) -> Set[int]:
        """The set of currently crashed endpoints (a copy)."""
        return set(self._down)

    # ------------------------------------------------------------------
    # Link-level partitions
    # ------------------------------------------------------------------

    def cut_link(self, src: int, dst: int, *, symmetric: bool = True) -> None:
        """Sever the ``src -> dst`` link (both directions by default).

        Frames in flight are unaffected; frames *transmitted* while
        the link is cut are discarded and counted in
        ``stats.lost_to_partition``.  Reliable transfers keep backing
        off against the dead link and are flushed by
        :meth:`heal_link`.
        """
        self._check_pid(src)
        self._check_pid(dst)
        if src == dst:
            raise SimulationError(f"cannot cut the self-link of pid {src}")
        pairs = [(src, dst), (dst, src)] if symmetric else [(src, dst)]
        tracer = get_tracer()
        for pair in pairs:
            if pair not in self._cut:
                self._cut.add(pair)
                if tracer.enabled:
                    tracer.event("net.cut", src=pair[0], dst=pair[1])

    def heal_link(self, src: int, dst: int, *, symmetric: bool = True) -> None:
        """Restore the ``src -> dst`` link (both directions by default).

        For each direction actually healed, the sender's outstanding
        reliable transfers across that link are flushed immediately:
        their backoff state resets and the frames are retransmitted
        now, so queued logical messages cross the healed link without
        waiting out the (possibly maximal) backoff.  Receiver-side
        dedup guarantees exactly-once delivery regardless of how many
        retransmissions raced the heal.
        """
        self._check_pid(src)
        self._check_pid(dst)
        pairs = [(src, dst), (dst, src)] if symmetric else [(src, dst)]
        tracer = get_tracer()
        for pair in pairs:
            if pair in self._cut:
                self._cut.discard(pair)
                if tracer.enabled:
                    tracer.event("net.heal", src=pair[0], dst=pair[1])
                self._flush_link(*pair)

    def partition(self, groups) -> None:
        """Cut every link between distinct groups of pids.

        ``groups`` is an iterable of pid collections; pids must not
        repeat across groups.  Pids absent from every group keep all
        their links (use explicit singleton groups to isolate them).
        """
        groups = [tuple(g) for g in groups]
        seen: Set[int] = set()
        for group in groups:
            for pid in group:
                self._check_pid(pid)
                if pid in seen:
                    raise SimulationError(
                        f"pid {pid} appears in two partition groups"
                    )
                seen.add(pid)
        for i, left in enumerate(groups):
            for right in groups[i + 1:]:
                for a in left:
                    for b in right:
                        self.cut_link(a, b)

    def heal_all(self) -> None:
        """Heal every cut link (flushing each, see :meth:`heal_link`)."""
        for src, dst in sorted(self._cut):
            self.heal_link(src, dst, symmetric=False)

    def is_cut(self, src: int, dst: int) -> bool:
        """True iff the directed ``src -> dst`` link is severed."""
        return (src, dst) in self._cut

    def reachable(self, src: int, dst: int) -> bool:
        """True iff a frame sent now from ``src`` would reach ``dst``
        (link intact and destination endpoint up)."""
        return (src, dst) not in self._cut and dst not in self._down

    @property
    def cut_links(self) -> Set[Tuple[int, int]]:
        """The set of currently severed directed links (a copy)."""
        return set(self._cut)

    def _flush_link(self, src: int, dst: int) -> None:
        for xfer, transfer in sorted(self._outstanding[src].items()):
            if transfer.dst != dst:
                continue
            if transfer.timer is not None:
                transfer.timer.cancel()
            transfer.attempts = 0
            self.stats.flushed += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "net.flush",
                    kind=transfer.message.kind,
                    src=src,
                    dst=dst,
                )
            self._transmit(src, dst, ("data", xfer, transfer.message))
            self._arm_timer(src, xfer)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    def send(
        self,
        src: int,
        dst: int,
        message: Message,
        *,
        reliable: Optional[bool] = None,
    ) -> None:
        """Send ``message`` from ``src`` to ``dst``.

        Self-sends are permitted and also traverse the (zero-distance
        but still asynchronous) channel: the handler runs in a later
        simulator event, never synchronously.

        ``reliable`` overrides the network-wide shim setting for this
        one send: the failure detector passes ``reliable=False`` so
        heartbeats stay fire-and-forget (a retransmitted heartbeat
        would defeat its own purpose).
        """
        self._check_pid(src)
        self._check_pid(dst)
        if src in self._down:
            raise ProcessCrashed(f"endpoint {src} sent while down")
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("net.send", kind=message.kind, src=src, dst=dst)
        self.stats.record_send(message)
        use_shim = self.reliable if reliable is None else reliable
        if not use_shim:
            self._transmit(src, dst, ("data", None, message))
            return
        xfer = next(self._next_xfer)
        self._outstanding[src][xfer] = self._new_transfer(dst, message)
        self._transmit(src, dst, ("data", xfer, message))
        self._arm_timer(src, xfer)

    def send_to_all(
        self, src: int, message: Message, *, include_self: bool = True
    ) -> None:
        """Point-to-point send to every endpoint (not atomic broadcast!).

        This is the unordered "send to all processes" used by the
        Fig-6 query phase (actions A3/A4); total-order broadcast lives
        in :mod:`repro.abcast`.

        When the network is in its clean configuration (no shim, no
        faults, no cuts, no tracer) the per-destination loop inlines
        the ``send``/``_transmit`` pair: stats, latency sample,
        delivery event — nothing else.  The fault-free sequencer
        fan-out is the simulator's hottest loop, and the RNG draw
        order (one latency sample per destination, in pid order) is
        identical to the general path, so histories don't shift.
        """
        self._check_pid(src)
        if src in self._down:
            raise ProcessCrashed(f"endpoint {src} sent while down")
        if (
            type(self) is not Network  # subclasses may override send()
            or self.reliable
            or self._cut
            or self.drop_prob
            or self.dup_prob
            or self.fifo
            or self.delay_factor != 1.0
            or get_tracer().enabled
        ):
            for dst in range(self.n):
                if dst == src and not include_self:
                    continue
                self.send(src, dst, message)
            return
        sample = self.latency.sample
        rng = self._rng
        post = self.sim.post
        deliver = self._deliver_data
        self.stats.record_broadcast(
            message, self.n if include_self else self.n - 1
        )
        for dst in range(self.n):
            if dst == src and not include_self:
                continue
            delay = sample(rng, src, dst)
            if delay < 0:
                raise SimulationError("latency model produced negative delay")
            post(delay, deliver, src, dst, message)

    # ------------------------------------------------------------------
    # Physical layer (fault injection lives here, for every path)
    # ------------------------------------------------------------------

    def _transmit(self, src: int, dst: int, frame: Tuple) -> None:
        if (src, dst) in self._cut:
            # A cut link loses the frame before it reaches the wire:
            # no drop/dup sampling, so partition windows do not shift
            # the fault layer's RNG stream.
            self.stats.lost_to_partition += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event(
                    "net.partition_drop", kind=frame[0], src=src, dst=dst
                )
            return
        if self.drop_prob and self._rng.random() < self.drop_prob:
            self.stats.dropped += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("net.drop", kind=frame[0], src=src, dst=dst)
            return
        copies = 1
        if self.dup_prob and self._rng.random() < self.dup_prob:
            copies = 2
            self.stats.duplicated += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("net.dup", kind=frame[0], src=src, dst=dst)
        for _ in range(copies):
            delay = self.latency.sample(self._rng, src, dst)
            if delay < 0:
                raise SimulationError("latency model produced negative delay")
            delay *= self.delay_factor
            if self.fifo:
                arrival = self.sim.now + delay
                floor = self._last_delivery.get((src, dst), -1.0)
                arrival = max(arrival, floor + 1e-9)
                self._last_delivery[(src, dst)] = arrival
                delay = arrival - self.sim.now
            self.sim.post(delay, self._deliver_frame, src, dst, frame)

    def _schedule_delivery(
        self, src: int, dst: int, message: Message, delay: float
    ) -> None:
        """Schedule a bare (shim-less) delivery after ``delay``.

        Bypasses fault injection; used by controlled/exploring
        networks that pick delivery orders themselves.
        """
        self.sim.post(
            delay, self._deliver_frame, src, dst, ("data", None, message)
        )

    def _deliver_data(self, src: int, dst: int, message: Message) -> None:
        """Clean-path delivery: a data frame with no reliable shim.

        The semantic twin of :meth:`_deliver_frame` for the fast
        broadcast path — crash check, handler dispatch, buffered
        stats — minus the frame tuple and its kind dispatch.
        """
        if dst in self._down:
            self.stats.lost_to_crash += 1
            return
        handler = self._handlers.get(dst)
        if handler is None:
            raise SimulationError(
                f"message {message.kind!r} delivered to unregistered "
                f"endpoint {dst}"
            )
        self.stats._pending_delivered += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "net.deliver", kind=message.kind, src=src, dst=dst
            )
        handler(src, message)

    def _deliver_frame(self, src: int, dst: int, frame: Tuple) -> None:
        kind = frame[0]
        if dst in self._down:
            self.stats.lost_to_crash += 1
            return
        if kind == "ack":
            self._on_ack(dst, frame[1])
            return
        _kind, xfer, message = frame
        if xfer is not None:
            # Reliable shim: acknowledge every copy (the first ack may
            # be lost), deliver only the first.
            self._transmit(dst, src, ("ack", xfer))
            if xfer in self._seen[dst]:
                self.stats.deduped += 1
                return
            self._seen[dst].add(xfer)
        handler = self._handlers.get(dst)
        if handler is None:
            raise SimulationError(
                f"message {message.kind!r} delivered to unregistered "
                f"endpoint {dst}"
            )
        self.stats.record_delivered()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "net.deliver", kind=message.kind, src=src, dst=dst
            )
        handler(src, message)

    # ------------------------------------------------------------------
    # Reliable shim internals
    # ------------------------------------------------------------------

    def _arm_timer(self, src: int, xfer: int) -> None:
        transfer = self._outstanding[src].get(xfer)
        if transfer is None:  # pragma: no cover - defensive
            return
        scale = min(self.backoff ** transfer.attempts, self.max_backoff)
        timeout = self.ack_timeout * scale
        # Desynchronizing jitter from the dedicated retry stream.
        timeout *= 1.0 + self.retry_jitter * self._retry_rng.random()
        transfer.timer = self.sim.schedule(
            timeout, lambda: self._on_timeout(src, xfer)
        )

    def _on_timeout(self, src: int, xfer: int) -> None:
        transfer = self._outstanding[src].get(xfer)
        if transfer is None or src in self._down:
            return
        transfer.attempts += 1
        if transfer.attempts > self.max_retries:
            raise DeliveryTimeout(
                f"message {transfer.message.kind!r} from {src} to "
                f"{transfer.dst} unacknowledged after "
                f"{self.max_retries} retransmissions"
            )
        self.stats.retransmitted += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                "net.retransmit",
                kind=transfer.message.kind,
                src=src,
                dst=transfer.dst,
                attempt=transfer.attempts,
            )
        self._transmit(src, transfer.dst, ("data", xfer, transfer.message))
        self._arm_timer(src, xfer)

    def _on_ack(self, src: int, xfer: int) -> None:
        transfer = self._outstanding[src].pop(xfer, None)
        if transfer is None:
            return  # duplicate or post-crash ack
        if transfer.timer is not None:
            transfer.timer.cancel()
        self._recycle_transfer(transfer)
        self.stats.acked += 1

    def _new_transfer(self, dst: int, message: Message) -> _Transfer:
        pool = self._transfer_pool
        transfer = pool.pop() if pool else _Transfer()
        transfer.dst = dst
        transfer.message = message
        transfer.attempts = 0
        transfer.timer = None
        return transfer

    def _recycle_transfer(self, transfer: _Transfer) -> None:
        # Drop payload/timer references so the pool never pins them.
        transfer.message = None
        transfer.timer = None
        self._transfer_pool.append(transfer)

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self.n:
            raise SimulationError(
                f"pid {pid} outside the endpoint range 0..{self.n - 1}"
            )
