"""Discrete-event simulation substrate (systems S9-S10)."""

from repro.sim.explore import (
    ControlledNetwork,
    ExplorationBudgetExceeded,
    explore,
    explore_factory,
)
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.latency import (
    AsymmetricLatency,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.network import ChannelStats, Message, Network, estimate_size

__all__ = [
    "AsymmetricLatency",
    "ControlledNetwork",
    "ExplorationBudgetExceeded",
    "ChannelStats",
    "EventHandle",
    "ExponentialLatency",
    "FixedLatency",
    "LatencyModel",
    "Message",
    "Network",
    "Simulator",
    "UniformLatency",
    "estimate_size",
    "explore",
    "explore_factory",
]
