"""Discrete-event simulation substrate (systems S9-S10)."""

from repro.sim.chaos import ChaosResult, run_chaos
from repro.sim.detector import (
    HEARTBEAT_KIND,
    DetectorEvent,
    HeartbeatDetector,
)
from repro.sim.explore import (
    ControlledNetwork,
    ExplorationBudgetExceeded,
    explore,
    explore_factory,
    explore_verified,
)
from repro.sim.faults import (
    CrashEvent,
    DelaySpike,
    FaultInjector,
    FaultPlan,
    HealEvent,
    PartitionEvent,
)
from repro.sim.kernel import EventHandle, Simulator
from repro.sim.latency import (
    AsymmetricLatency,
    ExponentialLatency,
    FixedLatency,
    LatencyModel,
    UniformLatency,
)
from repro.sim.network import (
    ChannelStats,
    Message,
    Network,
    NetworkStats,
    estimate_size,
)

__all__ = [
    "AsymmetricLatency",
    "ChaosResult",
    "ControlledNetwork",
    "CrashEvent",
    "DelaySpike",
    "DetectorEvent",
    "ExplorationBudgetExceeded",
    "ChannelStats",
    "EventHandle",
    "ExponentialLatency",
    "FaultInjector",
    "FaultPlan",
    "FixedLatency",
    "HEARTBEAT_KIND",
    "HealEvent",
    "HeartbeatDetector",
    "LatencyModel",
    "Message",
    "Network",
    "NetworkStats",
    "PartitionEvent",
    "Simulator",
    "UniformLatency",
    "estimate_size",
    "explore",
    "explore_factory",
    "explore_verified",
    "run_chaos",
]
