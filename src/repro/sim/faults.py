"""Deterministic fault schedules for robustness testing (S29).

A :class:`FaultPlan` is a seeded, fully deterministic description of
the faults injected into one protocol run: probabilistic message drops
and duplicates, latency spikes, timed process crashes with optional
restarts, and timed **network partitions** (link cuts with scheduled
heals).  The plan is *data* — it can be printed, stored and replayed
(``python -m repro chaos --fault-seed N`` rebuilds the exact
schedule) — and :class:`FaultInjector` is the small piece of machinery
that arms it against a live cluster.

Plan invariants are validated at construction: overlapping per-process
crash windows, negative times/durations, out-of-range probabilities
and malformed link lists raise :class:`~repro.errors.SimulationError`
immediately, with a message naming the offending event.  (Pids are
range-checked against the actual cluster size at *install* time — the
plan itself does not know ``n``.)

Each knob relaxes one assumption of the paper's Section-5 model; see
``docs/fault_model.md`` for the mapping and the recovery semantics the
protocols implement to survive the relaxation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import SimulationError

__all__ = [
    "CrashEvent",
    "DelaySpike",
    "FaultInjector",
    "FaultPlan",
    "HealEvent",
    "PartitionEvent",
]


@dataclass(frozen=True)
class CrashEvent:
    """One timed process crash.

    Attributes:
        pid: the process to crash.
        at: virtual time of the crash.
        restart_after: downtime before the process restarts and runs
            recovery; ``None`` means the crash is permanent.
    """

    pid: int
    at: float
    restart_after: Optional[float]


@dataclass(frozen=True)
class DelaySpike:
    """A temporary network-wide latency multiplier (congestion)."""

    at: float
    duration: float
    factor: float


@dataclass(frozen=True)
class PartitionEvent:
    """One timed set of link cuts (a partition window).

    Attributes:
        at: virtual time the links are cut.
        links: the ``(a, b)`` pid pairs to sever.
        symmetric: cut both directions of each pair (default); False
            gives asymmetric cuts (``a`` cannot reach ``b`` but ``b``
            still reaches ``a``).
        duration: downtime before the same links heal automatically;
            ``None`` means the cut lasts until a matching
            :class:`HealEvent` (or forever).
    """

    at: float
    links: Tuple[Tuple[int, int], ...]
    symmetric: bool = True
    duration: Optional[float] = None

    @classmethod
    def split(
        cls,
        at: float,
        groups: Sequence[Sequence[int]],
        *,
        duration: Optional[float] = None,
    ) -> "PartitionEvent":
        """Cut every link between distinct groups (a clean split)."""
        links = []
        groups = [tuple(g) for g in groups]
        for i, left in enumerate(groups):
            for right in groups[i + 1:]:
                for a in left:
                    for b in right:
                        links.append((a, b))
        return cls(at=at, links=tuple(links), duration=duration)


@dataclass(frozen=True)
class HealEvent:
    """One timed link heal.

    Attributes:
        at: virtual time of the heal.
        links: the pid pairs to restore; ``None`` heals every cut
            link in the network.
        symmetric: heal both directions of each pair (default).
    """

    at: float
    links: Optional[Tuple[Tuple[int, int], ...]] = None
    symmetric: bool = True


def _check_links(links, *, owner: str) -> None:
    for link in links:
        if len(link) != 2:
            raise SimulationError(
                f"{owner}: link {link!r} is not an (a, b) pid pair"
            )
        a, b = link
        if not (isinstance(a, int) and isinstance(b, int)):
            raise SimulationError(
                f"{owner}: link {link!r} has non-integer pids"
            )
        if a < 0 or b < 0:
            raise SimulationError(
                f"{owner}: link {link!r} has negative pids"
            )
        if a == b:
            raise SimulationError(
                f"{owner}: link {link!r} cuts a self-loop"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one run.

    Attributes:
        seed: the seed the plan was derived from (kept for reporting).
        drop_prob: per-physical-frame drop probability.
        dup_prob: per-physical-frame duplication probability.
        crashes: timed crash(/restart) events, non-overlapping.
        spikes: timed latency spikes.
        partitions: timed link-cut windows.
        heals: timed link heals (for cuts without a ``duration``).
    """

    seed: int = 0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    crashes: Tuple[CrashEvent, ...] = ()
    spikes: Tuple[DelaySpike, ...] = ()
    partitions: Tuple[PartitionEvent, ...] = ()
    heals: Tuple[HealEvent, ...] = ()

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        for prob, name in (
            (self.drop_prob, "drop_prob"),
            (self.dup_prob, "dup_prob"),
        ):
            if not 0.0 <= prob <= 1.0:
                raise SimulationError(
                    f"{name}={prob} outside the probability range [0, 1]"
                )
        windows: dict = {}
        for crash in self.crashes:
            if crash.at < 0:
                raise SimulationError(
                    f"crash of P{crash.pid} scheduled at negative time "
                    f"{crash.at}"
                )
            if crash.restart_after is not None and crash.restart_after <= 0:
                raise SimulationError(
                    f"crash of P{crash.pid} at {crash.at} has "
                    f"non-positive restart_after={crash.restart_after}"
                )
            windows.setdefault(crash.pid, []).append(
                (
                    crash.at,
                    (
                        crash.at + crash.restart_after
                        if crash.restart_after is not None
                        else float("inf")
                    ),
                )
            )
        for pid, spans in windows.items():
            spans.sort()
            for (_start1, end1), (start2, _end2) in zip(spans, spans[1:]):
                if start2 < end1:
                    raise SimulationError(
                        f"overlapping crash windows for P{pid}: one "
                        f"window still open at {end1:g} when the next "
                        f"starts at {start2:g}"
                    )
        for spike in self.spikes:
            if spike.at < 0 or spike.duration <= 0 or spike.factor <= 0:
                raise SimulationError(
                    f"malformed delay spike {spike!r}: needs at >= 0, "
                    "duration > 0 and factor > 0"
                )
        for event in self.partitions:
            owner = f"partition at {event.at:g}"
            if event.at < 0:
                raise SimulationError(
                    f"{owner}: scheduled at negative time"
                )
            if event.duration is not None and event.duration <= 0:
                raise SimulationError(
                    f"{owner}: non-positive duration {event.duration}"
                )
            if not event.links:
                raise SimulationError(f"{owner}: cuts no links")
            _check_links(event.links, owner=owner)
        for heal in self.heals:
            owner = f"heal at {heal.at:g}"
            if heal.at < 0:
                raise SimulationError(f"{owner}: scheduled at negative time")
            if heal.links is not None:
                _check_links(heal.links, owner=owner)

    def max_pid(self) -> int:
        """Largest pid any event references (-1 when none do)."""
        pids = [c.pid for c in self.crashes]
        for event in self.partitions:
            pids.extend(pid for link in event.links for pid in link)
        for heal in self.heals:
            if heal.links is not None:
                pids.extend(pid for link in heal.links for pid in link)
        return max(pids, default=-1)

    @classmethod
    def random(
        cls,
        seed: int,
        n: int,
        *,
        sequencer: int = 0,
        horizon: float = 30.0,
        max_drop: float = 0.2,
        max_dup: float = 0.1,
        extra_crashes: int = 1,
        max_spikes: int = 2,
    ) -> "FaultPlan":
        """Draw a randomized plan with the chaos-harness guarantees.

        Every generated plan has drops (up to ``max_drop``), at least
        one crash-restart, and at least one **sequencer**
        crash-restart (forcing a failover).  Crash windows are
        serialized — one process down at a time — so a live successor
        always exists for election.
        """
        if n < 2:
            raise SimulationError("fault plans need at least two processes")
        rng = random.Random(seed)
        drop = rng.uniform(0.02, max_drop)
        dup = rng.uniform(0.0, max_dup)

        crashes = []
        cursor = rng.uniform(0.05, 0.25) * horizon
        victims = [sequencer]  # the mandated sequencer failover
        for _ in range(rng.randint(0, extra_crashes)):
            victims.append(rng.randrange(n))
        rng.shuffle(victims)
        for pid in victims:
            downtime = rng.uniform(0.1, 0.3) * horizon
            crashes.append(
                CrashEvent(pid=pid, at=cursor, restart_after=downtime)
            )
            # Leave a gap after the restart before the next crash, so
            # windows never overlap and recovery gets breathing room.
            cursor += downtime + rng.uniform(0.1, 0.3) * horizon

        spikes = tuple(
            DelaySpike(
                at=rng.uniform(0.0, horizon),
                duration=rng.uniform(0.05, 0.2) * horizon,
                factor=rng.uniform(2.0, 6.0),
            )
            for _ in range(rng.randint(0, max_spikes))
        )
        return cls(
            seed=seed,
            drop_prob=drop,
            dup_prob=dup,
            crashes=tuple(crashes),
            spikes=spikes,
        )

    @classmethod
    def random_partition(
        cls,
        seed: int,
        n: int,
        *,
        sequencer: int = 0,
        horizon: float = 40.0,
        max_drop: float = 0.1,
        max_dup: float = 0.05,
    ) -> "FaultPlan":
        """Draw a randomized plan centered on one network partition.

        Every generated plan splits the cluster into a majority and a
        minority for a window comfortably inside ``horizon`` (the
        split always heals, so queued traffic gets flushed and the run
        can complete), on top of mild background drops/duplicates.
        Roughly half the seeds put the *sequencer* in the minority,
        exercising quorum-side failover plus post-heal reconciliation
        of the fenced minority; the rest leave it in the majority,
        exercising minority-side degradation alone.  No crashes: the
        partition is the fault under test.
        """
        if n < 3:
            raise SimulationError(
                "partition plans need at least three processes (a "
                "strict majority must exist on one side)"
            )
        rng = random.Random(f"partition-{seed}")
        drop = rng.uniform(0.0, max_drop)
        dup = rng.uniform(0.0, max_dup)
        minority_size = rng.randint(1, (n - 1) // 2)
        pids = list(range(n))
        if rng.random() < 0.5:
            rest = [pid for pid in pids if pid != sequencer]
            rng.shuffle(rest)
            minority = [sequencer] + rest[: minority_size - 1]
        else:
            rest = [pid for pid in pids if pid != sequencer]
            rng.shuffle(rest)
            minority = rest[:minority_size]
        minority = sorted(minority)
        majority = sorted(set(pids) - set(minority))
        start = rng.uniform(0.15, 0.35) * horizon
        duration = rng.uniform(0.25, 0.4) * horizon
        split = PartitionEvent.split(
            at=start, groups=(minority, majority), duration=duration
        )
        return cls(
            seed=seed,
            drop_prob=drop,
            dup_prob=dup,
            partitions=(split,),
        )

    def describe(self) -> str:
        """One-line human-readable summary (for failure reports)."""
        crashes = ", ".join(
            f"P{c.pid}@{c.at:.1f}"
            + (f"+{c.restart_after:.1f}" if c.restart_after else " (forever)")
            for c in self.crashes
        )
        partitions = ", ".join(
            f"{len(p.links)}links@{p.at:.1f}"
            + (f"+{p.duration:.1f}" if p.duration else " (until heal)")
            for p in self.partitions
        )
        return (
            f"plan(seed={self.seed}, drop={self.drop_prob:.3f}, "
            f"dup={self.dup_prob:.3f}, crashes=[{crashes}], "
            f"partitions=[{partitions}], spikes={len(self.spikes)})"
        )


class FaultInjector:
    """Arms a :class:`FaultPlan` against a cluster before its run.

    Usage::

        cluster = msc_cluster(..., fault_tolerant=True, ...)
        FaultInjector(plan).install(cluster)
        result = cluster.run(workloads)

    Installation sets the network's drop/duplicate probabilities and
    schedules the crash, restart and latency-spike events on the
    cluster's simulator; everything after that happens inside the
    normal event loop.
    """

    def __init__(self, plan: FaultPlan, *, on_event=None) -> None:
        self.plan = plan
        #: (time, pid) pairs of crashes/restarts actually executed.
        self.crashed: list = []
        self.restarted: list = []
        #: (time, kind, link-count) tuples of executed cut/heal events.
        self.partitioned: list = []
        #: optional ``fn(kind, pid, now)`` called after each executed
        #: crash ("crash") / restart ("restart") / partition
        #: ("partition") / heal ("heal") — the chaos harness hooks
        #: incremental consistency audits here (pid is -1 for the
        #: link-level events).
        self.on_event = on_event

    def install(self, cluster) -> "FaultInjector":
        network = cluster.network
        top = self.plan.max_pid()
        if top >= network.n:
            raise SimulationError(
                f"fault plan references pid {top} but the network has "
                f"endpoints 0..{network.n - 1}"
            )
        network.drop_prob = self.plan.drop_prob
        network.dup_prob = self.plan.dup_prob
        sim = cluster.sim
        for crash in self.plan.crashes:
            sim.schedule(
                crash.at, lambda c=crash: self._crash(cluster, c)
            )
        for spike in self.plan.spikes:
            sim.schedule(spike.at, lambda s=spike: self._spike_on(network, s))
            sim.schedule(
                spike.at + spike.duration,
                lambda s=spike: self._spike_off(network, s),
            )
        for event in self.plan.partitions:
            sim.schedule(
                event.at,
                lambda e=event: self._partition_on(cluster, e),
            )
            if event.duration is not None:
                sim.schedule(
                    event.at + event.duration,
                    lambda e=event: self._partition_off(cluster, e),
                )
        for heal in self.plan.heals:
            sim.schedule(heal.at, lambda h=heal: self._heal(cluster, h))
        return self

    # ------------------------------------------------------------------
    # Event bodies
    # ------------------------------------------------------------------

    def _crash(self, cluster, crash: CrashEvent) -> None:
        if cluster.network.is_down(crash.pid):  # pragma: no cover
            return  # overlapping hand-written plans: skip quietly
        cluster.crash_process(crash.pid)
        self.crashed.append((cluster.sim.now, crash.pid))
        if self.on_event is not None:
            self.on_event("crash", crash.pid, cluster.sim.now)
        if crash.restart_after is not None:
            cluster.sim.schedule(
                crash.restart_after,
                lambda: self._restart(cluster, crash.pid),
            )

    def _restart(self, cluster, pid: int) -> None:
        cluster.restart_process(pid)
        self.restarted.append((cluster.sim.now, pid))
        if self.on_event is not None:
            self.on_event("restart", pid, cluster.sim.now)

    def _spike_on(self, network, spike: DelaySpike) -> None:
        network.delay_factor *= spike.factor

    def _spike_off(self, network, spike: DelaySpike) -> None:
        network.delay_factor /= spike.factor

    def _partition_on(self, cluster, event: PartitionEvent) -> None:
        for a, b in event.links:
            cluster.network.cut_link(a, b, symmetric=event.symmetric)
        self.partitioned.append(
            (cluster.sim.now, "partition", len(event.links))
        )
        if self.on_event is not None:
            self.on_event("partition", -1, cluster.sim.now)

    def _partition_off(self, cluster, event: PartitionEvent) -> None:
        for a, b in event.links:
            cluster.network.heal_link(a, b, symmetric=event.symmetric)
        self.partitioned.append((cluster.sim.now, "heal", len(event.links)))
        if self.on_event is not None:
            self.on_event("heal", -1, cluster.sim.now)

    def _heal(self, cluster, heal: HealEvent) -> None:
        if heal.links is None:
            healed = len(cluster.network.cut_links)
            cluster.network.heal_all()
        else:
            healed = len(heal.links)
            for a, b in heal.links:
                cluster.network.heal_link(a, b, symmetric=heal.symmetric)
        self.partitioned.append((cluster.sim.now, "heal", healed))
        if self.on_event is not None:
            self.on_event("heal", -1, cluster.sim.now)
