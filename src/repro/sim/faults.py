"""Deterministic fault schedules for robustness testing (S29).

A :class:`FaultPlan` is a seeded, fully deterministic description of
the faults injected into one protocol run: probabilistic message drops
and duplicates, latency spikes, and timed process crashes with
optional restarts.  The plan is *data* — it can be printed, stored and
replayed (``python -m repro chaos --fault-seed N`` rebuilds the exact
schedule) — and :class:`FaultInjector` is the small piece of machinery
that arms it against a live cluster.

Each knob relaxes one assumption of the paper's Section-5 model; see
``docs/fault_model.md`` for the mapping and the recovery semantics the
protocols implement to survive the relaxation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import SimulationError

__all__ = ["CrashEvent", "DelaySpike", "FaultPlan", "FaultInjector"]


@dataclass(frozen=True)
class CrashEvent:
    """One timed process crash.

    Attributes:
        pid: the process to crash.
        at: virtual time of the crash.
        restart_after: downtime before the process restarts and runs
            recovery; ``None`` means the crash is permanent.
    """

    pid: int
    at: float
    restart_after: Optional[float]


@dataclass(frozen=True)
class DelaySpike:
    """A temporary network-wide latency multiplier (congestion)."""

    at: float
    duration: float
    factor: float


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults for one run.

    Attributes:
        seed: the seed the plan was derived from (kept for reporting).
        drop_prob: per-physical-frame drop probability.
        dup_prob: per-physical-frame duplication probability.
        crashes: timed crash(/restart) events, non-overlapping.
        spikes: timed latency spikes.
    """

    seed: int = 0
    drop_prob: float = 0.0
    dup_prob: float = 0.0
    crashes: Tuple[CrashEvent, ...] = ()
    spikes: Tuple[DelaySpike, ...] = ()

    @classmethod
    def random(
        cls,
        seed: int,
        n: int,
        *,
        sequencer: int = 0,
        horizon: float = 30.0,
        max_drop: float = 0.2,
        max_dup: float = 0.1,
        extra_crashes: int = 1,
        max_spikes: int = 2,
    ) -> "FaultPlan":
        """Draw a randomized plan with the chaos-harness guarantees.

        Every generated plan has drops (up to ``max_drop``), at least
        one crash-restart, and at least one **sequencer**
        crash-restart (forcing a failover).  Crash windows are
        serialized — one process down at a time — so a live successor
        always exists for election.
        """
        if n < 2:
            raise SimulationError("fault plans need at least two processes")
        rng = random.Random(seed)
        drop = rng.uniform(0.02, max_drop)
        dup = rng.uniform(0.0, max_dup)

        crashes = []
        cursor = rng.uniform(0.05, 0.25) * horizon
        victims = [sequencer]  # the mandated sequencer failover
        for _ in range(rng.randint(0, extra_crashes)):
            victims.append(rng.randrange(n))
        rng.shuffle(victims)
        for pid in victims:
            downtime = rng.uniform(0.1, 0.3) * horizon
            crashes.append(
                CrashEvent(pid=pid, at=cursor, restart_after=downtime)
            )
            # Leave a gap after the restart before the next crash, so
            # windows never overlap and recovery gets breathing room.
            cursor += downtime + rng.uniform(0.1, 0.3) * horizon

        spikes = tuple(
            DelaySpike(
                at=rng.uniform(0.0, horizon),
                duration=rng.uniform(0.05, 0.2) * horizon,
                factor=rng.uniform(2.0, 6.0),
            )
            for _ in range(rng.randint(0, max_spikes))
        )
        return cls(
            seed=seed,
            drop_prob=drop,
            dup_prob=dup,
            crashes=tuple(crashes),
            spikes=spikes,
        )

    def describe(self) -> str:
        """One-line human-readable summary (for failure reports)."""
        crashes = ", ".join(
            f"P{c.pid}@{c.at:.1f}"
            + (f"+{c.restart_after:.1f}" if c.restart_after else " (forever)")
            for c in self.crashes
        )
        return (
            f"plan(seed={self.seed}, drop={self.drop_prob:.3f}, "
            f"dup={self.dup_prob:.3f}, crashes=[{crashes}], "
            f"spikes={len(self.spikes)})"
        )


class FaultInjector:
    """Arms a :class:`FaultPlan` against a cluster before its run.

    Usage::

        cluster = msc_cluster(..., fault_tolerant=True, ...)
        FaultInjector(plan).install(cluster)
        result = cluster.run(workloads)

    Installation sets the network's drop/duplicate probabilities and
    schedules the crash, restart and latency-spike events on the
    cluster's simulator; everything after that happens inside the
    normal event loop.
    """

    def __init__(self, plan: FaultPlan, *, on_event=None) -> None:
        self.plan = plan
        #: (time, pid) pairs of crashes/restarts actually executed.
        self.crashed: list = []
        self.restarted: list = []
        #: optional ``fn(kind, pid, now)`` called after each executed
        #: crash ("crash") / restart ("restart") — the chaos harness
        #: hooks incremental consistency audits here.
        self.on_event = on_event

    def install(self, cluster) -> "FaultInjector":
        network = cluster.network
        network.drop_prob = self.plan.drop_prob
        network.dup_prob = self.plan.dup_prob
        sim = cluster.sim
        for crash in self.plan.crashes:
            sim.schedule(
                crash.at, lambda c=crash: self._crash(cluster, c)
            )
        for spike in self.plan.spikes:
            sim.schedule(spike.at, lambda s=spike: self._spike_on(network, s))
            sim.schedule(
                spike.at + spike.duration,
                lambda s=spike: self._spike_off(network, s),
            )
        return self

    # ------------------------------------------------------------------
    # Event bodies
    # ------------------------------------------------------------------

    def _crash(self, cluster, crash: CrashEvent) -> None:
        if cluster.network.is_down(crash.pid):  # pragma: no cover
            return  # overlapping hand-written plans: skip quietly
        cluster.crash_process(crash.pid)
        self.crashed.append((cluster.sim.now, crash.pid))
        if self.on_event is not None:
            self.on_event("crash", crash.pid, cluster.sim.now)
        if crash.restart_after is not None:
            cluster.sim.schedule(
                crash.restart_after,
                lambda: self._restart(cluster, crash.pid),
            )

    def _restart(self, cluster, pid: int) -> None:
        cluster.restart_process(pid)
        self.restarted.append((cluster.sim.now, pid))
        if self.on_event is not None:
            self.on_event("restart", pid, cluster.sim.now)

    def _spike_on(self, network, spike: DelaySpike) -> None:
        network.delay_factor *= spike.factor

    def _spike_off(self, network, spike: DelaySpike) -> None:
        network.delay_factor /= spike.factor
