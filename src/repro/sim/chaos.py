"""Chaos harness: protocol runs under randomized fault schedules (S29).

One :func:`run_chaos` call is one experiment: build a fault-tolerant
cluster (reliable-delivery network, fault-tolerant sequencer), arm a
seeded :class:`~repro.sim.faults.FaultPlan` against it, drive a random
workload to completion, and verify the recorded history with the
*same* checkers the fault-free experiments use — the streaming
verifier plus the batch constrained checker, both keyed to the
protocol's claimed condition (m-SC for Fig-4, m-linearizability for
Fig-6).

The harness's claim is therefore end-to-end: message drops,
duplicates, latency spikes, process crash-restarts and sequencer
failovers may delay m-operations but never lose one and never produce
an execution outside the protocol's consistency condition.

The *negative control* (``recover=False``) drops the restart half of
every crash: processes stay down, recovery never runs.  Those runs
demonstrably lose client operations (the run cannot complete) — the
evidence that the recovery machinery, not luck, is what makes the
positive runs sound.

Partition chaos (``partition=True``) swaps the crash schedule for a
seeded link-level partition (:meth:`FaultPlan.random_partition`): the
cluster splits into a majority and a minority side for a window, a
:class:`~repro.sim.detector.HeartbeatDetector` is armed, and the
fault-tolerant sequencer runs quorum-aware — majority-side failover
with epoch fencing, minority degradation, post-heal reconciliation.
Its negative control is ``quorum_aware=False``: the detector still
drives elections but every quorum safeguard is stripped, and the
resulting split-brain is caught by the same checkers (delivery-log
total order plus the m-sc/m-lin condition checkers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    DeliveryTimeout,
    PartitionedError,
    ProcessCrashed,
    ProtocolError,
    SequencerUnavailable,
    SimulationError,
)
from repro.sim.detector import HeartbeatDetector
from repro.sim.faults import CrashEvent, FaultInjector, FaultPlan
from repro.sim.latency import UniformLatency
from repro.sim.network import Network

__all__ = ["ChaosResult", "run_chaos"]


def _chaos_protocol(protocol: str, plan: FaultPlan):
    """Resolve a chaos-eligible protocol from the runtime registry.

    Imported lazily: this module is re-exported from ``repro.sim``,
    which the abcast/protocol layers themselves import — resolving
    the registry at call time keeps the package import graph acyclic.
    Eligibility follows the plan: crashes in the schedule require the
    ``crash_tolerant`` capability flag, partitions require
    ``partition_tolerant``; anything else gets a clear error naming
    the eligible set.
    """
    from repro.runtime.registry import (
        crash_tolerant_protocols,
        partition_tolerant_protocols,
        protocol_registry,
    )

    crash_ok = crash_tolerant_protocols()
    partition_ok = partition_tolerant_protocols()
    eligible = dict(crash_ok) if plan.crashes else dict(
        {**crash_ok, **partition_ok}
    )
    if plan.partitions:
        eligible = {
            name: spec
            for name, spec in eligible.items()
            if name in partition_ok
        }
    spec = eligible.get(protocol)
    if spec is not None:
        return spec
    if protocol in protocol_registry():
        missing = (
            "crash-recovery"
            if plan.crashes and protocol not in crash_ok
            else "partition-tolerance"
        )
        raise SimulationError(
            f"protocol {protocol!r} has no {missing} support; "
            f"chaos-eligible protocols for this plan: {sorted(eligible)}"
        )
    raise SimulationError(
        f"unknown chaos protocol {protocol!r}; expected one of "
        f"{sorted(eligible)}"
    )


@dataclass
class ChaosResult:
    """Outcome of one chaos run.

    ``ok`` requires *all* of: every client m-operation completed, the
    streaming verifier saw no violation, the incremental index audits
    (one per fault event, plus the end-of-run audit) saw no violation,
    the batch checker accepted the history, and the abcast delivery
    logs kept total order.
    """

    protocol: str
    plan: FaultPlan
    ok: bool
    completed: int
    expected: int
    #: exception text when the run itself failed (negative control).
    failure: Optional[str]
    violations: List[str]
    abcast_violation: Optional[str]
    crashes: List[Tuple[float, int]]
    restarts: List[Tuple[float, int]]
    failovers: List[tuple]
    duration: float
    #: ``(time, "partition"|"heal", link count)`` per topology change.
    partitions: List[Tuple[float, str, int]] = field(default_factory=list)
    #: Detector accuracy counters (``HeartbeatDetector.summary()``);
    #: empty when the plan armed no detector.
    detector: Dict[str, float] = field(default_factory=dict)
    #: Degraded-mode incidents recorded by the quorum-aware sequencer:
    #: ``(time, pid, reason, msg id|None)``.
    degraded: List[tuple] = field(default_factory=list)
    #: ``(time, event, pid, verdict)`` per incremental audit run
    #: between fault events against the live index (verdict None =
    #: clean so far); violations are monotone, so any non-None entry
    #: is also reflected in ``violations``.
    audits: List[Tuple[float, str, int, Optional[str]]] = field(
        default_factory=list
    )
    #: Metrics snapshot of the run: the network registry's counters /
    #: gauges plus fault-schedule tallies (see ``--metrics`` on the
    #: ``chaos`` CLI subcommand).
    metrics: Dict[str, Any] = field(default_factory=dict)
    #: Live :class:`~repro.protocols.base.RunResult` handle (None when
    #: the run itself failed, e.g. the negative control); carried for
    #: the runtime layer's artifact, never serialized.
    result: Any = field(default=None, repr=False, compare=False)

    def summary(self) -> str:
        """One line for assertion messages: plan plus verdict."""
        verdict = "ok" if self.ok else (
            self.failure
            or self.abcast_violation
            or (self.violations[0] if self.violations else "incomplete")
        )
        return (
            f"{self.protocol} {self.plan.describe()}: "
            f"{self.completed}/{self.expected} ops, "
            f"{len(self.failovers)} failover(s), "
            f"{len(self.partitions)} partition event(s), "
            f"{len(self.audits)} audit(s), {verdict}"
        )


def run_chaos(
    protocol: str,
    seed: int,
    *,
    n: int = 4,
    objects: Sequence[str] = ("x", "y", "z"),
    ops_per_process: int = 5,
    recovery: str = "replay",
    recover: bool = True,
    plan: Optional[FaultPlan] = None,
    partition: bool = False,
    quorum_aware: bool = True,
    degraded: str = "defer",
    detector_period: float = 1.0,
    detector_timeout: float = 3.5,
    horizon: float = 40.0,
    failover_delay: float = 4.0,
    max_events: int = 3_000_000,
    workloads: Optional[Sequence[Sequence]] = None,
    latency=None,
    cluster_seed: Optional[int] = None,
    ack_timeout: float = 4.0,
    retry_backoff: float = 2.0,
    retry_jitter: float = 0.25,
    max_retries: int = 40,
    verify_window: Optional[int] = None,
    verify_workers: int = 1,
    **factory_kwargs,
) -> ChaosResult:
    """Run one protocol under one fault plan and verify the result.

    Args:
        protocol: any registry entry whose ``crash_tolerant``
            capability flag is set (``repro.runtime
            .crash_tolerant_protocols()``).
        seed: seeds the fault plan (unless ``plan`` is given) and, by
            default, the workload and the cluster's own randomness.
        n: cluster size (>= 2 so failover has a successor).
        objects: shared object names.
        ops_per_process: workload length per process.
        recovery: ``"replay"`` or ``"snapshot"`` (peer state transfer).
        recover: False = negative control; crashes become permanent
            and the run is expected to fail.
        plan: explicit fault plan; default ``FaultPlan.random(seed, n)``
            (or ``FaultPlan.random_partition`` with ``partition=True``).
        partition: generate a partition schedule instead of a crash
            schedule, and arm the heartbeat detector.
        quorum_aware: False = partition negative control; the detector
            still drives elections but the quorum safeguards (gated
            delivery, minority degradation, election abort) are
            stripped, so a split-brain is allowed to happen and the
            checkers must catch it.
        degraded: minority-side behaviour, ``"defer"`` (park requests
            until quorum returns) or ``"refuse"`` (``broadcast()``
            raises :class:`~repro.errors.PartitionedError`).
        detector_period / detector_timeout: heartbeat interval and
            initial silence threshold (armed only when the plan has
            partitions).
        horizon: virtual-time spread of the generated plan.
        failover_delay: sequencer failure-detection delay.
        max_events: simulator event budget.
        workloads: explicit per-process program lists (the runtime
            layer passes spec-built workloads); default random with
            seed ``seed``.
        latency: message-delay model (default Uniform[0.5, 1.5]).
        cluster_seed: cluster randomness seed when the fault seed
            should not double as it (default ``seed``).
        ack_timeout / retry_backoff / retry_jitter / max_retries: the
            reliable shim's retransmission schedule (all forwarded to
            the network, all replayable from a ``RunSpec``).
        verify_window: when set, the in-run audits use the
            bounded-memory :class:`~repro.core.index.WindowedIndex`
            (a ``~ww`` lookback of this many broadcast positions)
            instead of the quadratic :class:`~repro.core.index
            .LiveIndex`; reads refused for reaching behind a sealed
            prefix are tallied in ``metrics["chaos"]
            ["window_refusals"]``.  The end-of-run batch check stays
            full-mode and authoritative either way.
        verify_workers: forwarded to the batch checker's plan
            executor (only effective for plans that shard).
        **factory_kwargs: extra cluster-factory keywords (protocol
            options such as ``reply_relevant_only``).
    """
    from repro.abcast.sequencer import SequencerAbcast
    from repro.core.index import LiveIndex, WindowedIndex
    from repro.core.monitor import verify_stream
    from repro.workloads.generator import random_workloads

    if cluster_seed is None:
        cluster_seed = seed
    if plan is None:
        plan = (
            FaultPlan.random_partition(seed, n, horizon=horizon)
            if partition
            else FaultPlan.random(seed, n, horizon=horizon)
        )
    spec = _chaos_protocol(protocol, plan)
    factory, condition = spec.factory, spec.condition
    if not recover:
        # Negative control: every crash becomes permanent.  Keep only
        # each pid's first crash — a restartless window extends to the
        # end of the run, so a second crash of the same pid could
        # never fire (and would trip the plan's overlap validation).
        first: Dict[int, CrashEvent] = {}
        for c in sorted(plan.crashes, key=lambda c: c.at):
            first.setdefault(
                c.pid, CrashEvent(pid=c.pid, at=c.at, restart_after=None)
            )
        plan = FaultPlan(
            seed=plan.seed,
            drop_prob=plan.drop_prob,
            dup_prob=plan.dup_prob,
            crashes=tuple(first.values()),
            spikes=plan.spikes,
            partitions=plan.partitions,
            heals=plan.heals,
        )

    live_index = (
        WindowedIndex(verify_window)
        if verify_window is not None
        else LiveIndex()
    )
    if spec.uses_abcast:
        # Only broadcast protocols get the fault-tolerant sequencer;
        # the others default their own abcast_factory=None and must
        # not have one forced in (``server_cluster`` et al. use
        # setdefault, which an explicit keyword would override).
        factory_kwargs["abcast_factory"] = lambda net: SequencerAbcast(
            net, fault_tolerant=True, failover_delay=failover_delay
        )
    cluster = factory(
        n,
        objects,
        seed=cluster_seed,
        fault_tolerant=True,
        recovery=recovery,
        live_index=live_index,
        network_factory=lambda sim, size: Network(
            sim,
            size,
            latency=latency or UniformLatency(0.5, 1.5),
            seed=seed + 1,
            reliable=True,
            ack_timeout=ack_timeout,
            backoff=retry_backoff,
            retry_jitter=retry_jitter,
            max_retries=max_retries,
        ),
        **factory_kwargs,
    )

    detector: Optional[HeartbeatDetector] = None
    if plan.partitions:
        # Partition plans need a failure detector: nothing else tells
        # a protocol the far side went silent.  The detector rides the
        # same (lossy, partitionable) network as the protocol, so its
        # view degrades honestly with the topology.
        detector = HeartbeatDetector(
            cluster.network,
            period=detector_period,
            timeout=detector_timeout,
        )
        cluster.attach_detector(detector)
        if cluster.abcast is not None and hasattr(
            cluster.abcast, "bind_detector"
        ):
            cluster.abcast.bind_detector(
                detector, quorum_aware=quorum_aware, degraded=degraded
            )

    # Incremental verification between fault events: the live index
    # closes the order online, so an audit at a crash/restart boundary
    # is a cheap triple scan instead of a full history rebuild.
    audits: List[Tuple[float, str, int, Optional[str]]] = []

    def _audit(kind: str, pid: int, now: float) -> None:
        audits.append((now, kind, pid, live_index.audit()))

    injector = FaultInjector(plan, on_event=_audit).install(cluster)
    if workloads is None:
        workloads = random_workloads(
            n, objects, ops_per_process, seed=seed
        )
    expected = sum(len(w) for w in workloads)

    failure: Optional[str] = None
    violations: List[str] = []
    abcast_violation: Optional[str] = None
    result = None
    try:
        result = cluster.run(workloads, max_events=max_events)
    except (
        DeliveryTimeout,
        PartitionedError,
        ProcessCrashed,
        ProtocolError,
        SequencerUnavailable,
    ) as exc:
        failure = f"{type(exc).__name__}: {exc}"

    completed = len(cluster.recorder.records)
    for _t, _kind, _pid, audit_verdict in audits:
        if audit_verdict is not None:
            violations.append(f"incremental audit: {audit_verdict}")
    if result is not None:
        final_audit = live_index.audit()
        audits.append((cluster.sim.now, "final", -1, final_audit))
        if final_audit is not None:
            violations.append(f"incremental audit (final): {final_audit}")
        abcast_violation = result.abcast_violation
        if condition is not None:
            verifier = verify_stream(result, condition=condition)
            violations.extend(str(v) for v in verifier.violations)
            from repro.core.consistency import check_condition

            verdict = check_condition(
                result.history,
                condition,
                extra_pairs=result.ww_pairs(),
                workers=verify_workers,
            )
            if not verdict.holds:
                violations.append(
                    f"batch {condition} checker rejected the run"
                )

    ok = (
        failure is None
        and abcast_violation is None
        and not violations
        and completed == expected
    )
    degraded_log = list(getattr(cluster.abcast, "degraded", ()))
    metrics = cluster.network.stats.snapshot()
    metrics["chaos"] = {
        "crashes": len(injector.crashed),
        "restarts": len(injector.restarted),
        "failovers": len(cluster.abcast.failovers) if cluster.abcast else 0,
        "partitions": len(injector.partitioned),
        "degraded": len(degraded_log),
        "audits": len(audits),
        "completed": completed,
        "expected": expected,
        "duration": cluster.sim.now,
    }
    if verify_window is not None:
        metrics["chaos"]["window_refusals"] = live_index.window_refusals
        metrics["chaos"]["window_epochs"] = live_index.epochs
    if detector is not None:
        metrics["detector"] = detector.summary()
    return ChaosResult(
        protocol=protocol,
        plan=plan,
        ok=ok,
        completed=completed,
        expected=expected,
        failure=failure,
        violations=violations,
        abcast_violation=abcast_violation,
        crashes=list(injector.crashed),
        restarts=list(injector.restarted),
        failovers=list(cluster.abcast.failovers) if cluster.abcast else [],
        duration=cluster.sim.now,
        partitions=list(injector.partitioned),
        detector=detector.summary() if detector is not None else {},
        degraded=degraded_log,
        audits=audits,
        metrics=metrics,
        result=result,
    )
