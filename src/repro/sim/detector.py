"""Deterministic heartbeat failure detection (◇P-style).

The paper's Section-5 model has no failure detector — processes are
assumed connected and correct.  The robustness subsystem relaxes
both assumptions (crashes in :mod:`repro.sim.faults`, link cuts in
:mod:`repro.sim.network`), and a protocol that wants to *react* to a
partition needs a way to learn about it that does not peek at the
simulator's ground truth.  :class:`HeartbeatDetector` is that
mechanism: every process periodically multicasts an unreliable
heartbeat, every observer tracks the last heartbeat heard from each
peer, and silence past an adaptive per-pair timeout raises a
**suspect** event.  A late heartbeat from a suspected peer raises a
**trust** event and *widens* that pair's timeout — the eventually
perfect (◇P) accuracy adaptation: any finite number of false
suspicions is tolerated, and after the last one the detector stops
making mistakes about that pair.

Everything is deterministic: heartbeat phases are staggered by pid,
timers run on the simulator's virtual clock, and no RNG is consumed,
so a seeded run produces the same suspect/trust history every time.

Events are emitted through the tracer (``detector.suspect`` /
``detector.trust``), counted in the owning network's metrics registry
(``detector.*``), appended to :attr:`HeartbeatDetector.events`, and
forwarded to an optional ``on_change`` callback — the fault-tolerant
sequencer hooks its partition failover there.

Ground truth is consulted *only* for accounting: a suspicion is
recorded as *false* when the target was up and the target->observer
link uncut at the moment of suspicion (the silence was just latency).
The false-suspect rate feeds ``BENCH_chaos.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import SimulationError
from repro.obs import get_tracer
from repro.sim.network import Message, Network

__all__ = ["DetectorEvent", "HeartbeatDetector", "HEARTBEAT_KIND"]

#: Message kind of heartbeat frames (routed straight to the detector
#: by :class:`repro.protocols.base.BaseProcess`, never to protocols).
HEARTBEAT_KIND = "hb"

#: Signature of the change callback: (kind, observer, target, now).
ChangeHook = Callable[[str, int, int, float], None]


@dataclass(frozen=True)
class DetectorEvent:
    """One suspect/trust transition at one observer.

    Attributes:
        at: virtual time of the transition.
        observer: the pid whose view changed.
        target: the pid being (un)suspected.
        kind: ``"suspect"`` or ``"trust"``.
        false: for suspects, True when the target was actually up and
            reachable (a detector mistake); always False for trusts.
    """

    at: float
    observer: int
    target: int
    kind: str
    false: bool = False


class HeartbeatDetector:
    """A per-process heartbeat failure detector over one network.

    Args:
        network: the network whose endpoints are monitored (heartbeats
            are sent unreliable over it, so cuts and crashes silence
            them naturally).
        period: heartbeat (and check) interval in virtual time.
        timeout: initial per-pair silence threshold before suspicion;
            must exceed ``period`` or every pair is suspected
            immediately.
        adapt: how much a pair's timeout grows after a false
            suspicion is corrected by a trust (the ◇P adaptation);
            0 disables adaptation.
        on_change: optional hook invoked after every suspect/trust
            transition.
        should_stop: optional predicate checked each tick; once it
            returns True the loops stop rescheduling, letting the
            event queue drain (a detector left running keeps the
            simulator alive forever).
            :meth:`repro.protocols.base.Cluster.attach_detector`
            wires this to "every workload is done".
    """

    def __init__(
        self,
        network: Network,
        *,
        period: float = 1.0,
        timeout: float = 3.5,
        adapt: float = 0.5,
        on_change: Optional[ChangeHook] = None,
        should_stop: Optional[Callable[[], bool]] = None,
    ) -> None:
        if period <= 0:
            raise SimulationError("detector period must be positive")
        if timeout <= period:
            raise SimulationError(
                "detector timeout must exceed the heartbeat period "
                f"(timeout={timeout}, period={period})"
            )
        if adapt < 0:
            raise SimulationError("detector adapt must be non-negative")
        self.network = network
        self.sim = network.sim
        self.n = network.n
        self.period = period
        self.adapt = adapt
        self.on_change = on_change
        self.should_stop = should_stop
        self._stopped = False
        #: (observer, target) -> current silence threshold.
        self._timeout: Dict[Tuple[int, int], float] = {
            (obs, t): timeout
            for obs in range(self.n)
            for t in range(self.n)
            if obs != t
        }
        #: (observer, target) -> virtual time of last heartbeat heard.
        self._last: Dict[Tuple[int, int], float] = {}
        #: observer -> pids it currently suspects.
        self._suspects: Dict[int, Set[int]] = {
            pid: set() for pid in range(self.n)
        }
        #: observers that were down at their last tick (their view is
        #: re-primed with a fresh grace window when they come back).
        self._paused: Set[int] = set()
        self.events: List[DetectorEvent] = []
        self.suspicions = 0
        self.trusts = 0
        self.false_suspicions = 0
        self._started = False
        self._metrics = network.stats.registry

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Arm the per-process heartbeat/check loops (idempotent)."""
        if self._started:
            return
        self._started = True
        now = self.sim.now
        for pair in self._timeout:
            self._last[pair] = now
        for pid in range(self.n):
            # Deterministic phase stagger: no two processes beat at
            # the same instant, so tie-breaking never depends on
            # event insertion order.
            phase = self.period * (pid + 1) / (self.n + 1)
            self.sim.schedule(phase, lambda pid=pid: self._tick(pid))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def suspects(self, observer: int) -> Set[int]:
        """The pids ``observer`` currently suspects (a copy)."""
        return set(self._suspects[observer])

    def is_suspected(self, observer: int, target: int) -> bool:
        """True iff ``observer`` currently suspects ``target``."""
        return target in self._suspects[observer]

    def alive_count(self, observer: int) -> int:
        """How many processes ``observer`` believes are up (incl. itself)."""
        return self.n - len(self._suspects[observer])

    def summary(self) -> Dict[str, float]:
        """Accuracy counters for reports and ``BENCH_chaos.json``."""
        return {
            "suspicions": self.suspicions,
            "trusts": self.trusts,
            "false_suspicions": self.false_suspicions,
            "false_suspect_rate": (
                self.false_suspicions / self.suspicions
                if self.suspicions
                else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Heartbeat plumbing
    # ------------------------------------------------------------------

    def on_heartbeat(self, observer: int, src: int) -> None:
        """Record a heartbeat from ``src`` arriving at ``observer``."""
        if observer == src:
            return
        now = self.sim.now
        self._last[(observer, src)] = now
        if src in self._suspects[observer]:
            self._suspects[observer].discard(src)
            # ◇P accuracy adaptation: we were wrong about this pair
            # (or it recovered) — widen its threshold so repeated
            # mistakes die out.
            self._timeout[(observer, src)] += self.adapt
            self.trusts += 1
            self._emit("trust", observer, src, now, false=False)

    def stop(self) -> None:
        """Stop all loops at their next tick (idempotent)."""
        self._stopped = True

    def _tick(self, pid: int) -> None:
        if self._stopped or (
            self.should_stop is not None and self.should_stop()
        ):
            self._stopped = True
            return
        self.sim.schedule(self.period, lambda: self._tick(pid))
        if self.network.is_down(pid):
            self._paused.add(pid)
            return
        now = self.sim.now
        if pid in self._paused:
            # Fresh after a restart: the silence while down proves
            # nothing about the peers, so re-prime the grace window
            # and start from an all-trusting view.
            self._paused.discard(pid)
            self._suspects[pid].clear()
            for target in range(self.n):
                if target != pid:
                    self._last[(pid, target)] = now
        # One immutable heartbeat per beat, reused across destinations
        # (and its estimate_size cache with it), like any broadcast.
        beat = Message(HEARTBEAT_KIND, pid)
        for dst in range(self.n):
            if dst != pid:
                self.network.send(pid, dst, beat, reliable=False)
        for target in range(self.n):
            if target == pid or target in self._suspects[pid]:
                continue
            silence = now - self._last[(pid, target)]
            if silence > self._timeout[(pid, target)]:
                self._suspects[pid].add(target)
                false = self.network.reachable(target, pid)
                self.suspicions += 1
                if false:
                    self.false_suspicions += 1
                self._emit("suspect", pid, target, now, false=false)

    def _emit(
        self, kind: str, observer: int, target: int, now: float, *, false: bool
    ) -> None:
        self.events.append(
            DetectorEvent(
                at=now,
                observer=observer,
                target=target,
                kind=kind,
                false=false,
            )
        )
        self._metrics.counter(f"detector.{kind}").inc()
        if false:
            self._metrics.counter("detector.false_suspect").inc()
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event(
                f"detector.{kind}",
                observer=observer,
                target=target,
                false=false,
            )
        if self.on_change is not None:
            self.on_change(kind, observer, target, now)
