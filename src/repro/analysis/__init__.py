"""Metrics and checker-scaling analysis (S19)."""

from repro.analysis.complexity import (
    ScalingPoint,
    exponential_gadget,
    hard_history,
    measure,
    measure_exact,
    scaling_table,
)
from repro.analysis.metrics import (
    IndexStats,
    LatencySummary,
    ProtocolMetrics,
    comparison_table,
)

__all__ = [
    "IndexStats",
    "LatencySummary",
    "ProtocolMetrics",
    "ScalingPoint",
    "comparison_table",
    "exponential_gadget",
    "hard_history",
    "measure",
    "measure_exact",
    "scaling_table",
]
