"""Metrics, checker-scaling analysis (S19) and static analysis.

The :mod:`repro.analysis.static` subpackage hosts the pass-based
static analyzer: the workload constraint prover (OO/WW/WO
certificates consumed by the checkers, Theorem 7) and the
determinism/race lint passes behind ``python -m repro analyze``.
"""

from repro.analysis import static
from repro.analysis.complexity import (
    ScalingPoint,
    exponential_gadget,
    hard_history,
    measure,
    measure_exact,
    scaling_table,
)
from repro.analysis.metrics import (
    IndexStats,
    LatencySummary,
    ProtocolMetrics,
    comparison_table,
)

__all__ = [
    "IndexStats",
    "LatencySummary",
    "ProtocolMetrics",
    "ScalingPoint",
    "comparison_table",
    "exponential_gadget",
    "hard_history",
    "measure",
    "measure_exact",
    "scaling_table",
    "static",
]
