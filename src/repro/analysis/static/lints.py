"""Determinism and race lint passes (the repo-invariant family).

These passes guard invariants the test suite can only probe
dynamically and which past PRs paid for the hard way:

* same-seed runs must produce bit-identical traces (deterministic
  simulation) — so no wall clocks and no unseeded/global RNG;
* anything feeding ordered protocol or trace output must not iterate
  a ``set`` (string hashing is randomized per process);
* the simulated concurrency model is "kernel-mediated": processes
  interact with shared cluster state only through the cluster's
  service objects, never by mutating its fields directly — the static
  analogue of a race detector for the event-driven model;
The path-sensitive rules (``span-pairing``, ``swallowed-error``,
``handler-atomicity``, ``lockset``) live in :mod:`.flows` and
:mod:`.locks`; this module keeps the purely syntactic family and the
shared vocabulary (``MUTATOR_METHODS``, ``_repro_error_names``).

Every pass is suppressible with ``# repro: allow[rule]`` on the
flagged line or the one above; intentional uses in this repo carry
those comments (see docs/static_analysis.md for the catalog).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.analysis.static.findings import Finding
from repro.analysis.static.framework import (
    LintPass,
    SourceFile,
    register,
)

#: Wall-clock sources that break virtual-time determinism.
WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.date.today",
}

#: Module-level random.* functions (they share one hidden global RNG).
GLOBAL_RANDOM_CALLS = {
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
    "random.expovariate",
    "random.betavariate",
    "random.getrandbits",
    "random.seed",
}

#: Mutating methods whose receiver must not be shared cluster state.
MUTATOR_METHODS = {
    "append",
    "add",
    "extend",
    "update",
    "insert",
    "remove",
    "discard",
    "pop",
    "popitem",
    "clear",
    "setdefault",
    "sort",
    "reverse",
}


@register
class WallClockPass(LintPass):
    rule = "wall-clock"
    severity = "error"
    description = (
        "wall-clock reads (time.*, datetime.now) break same-seed "
        "trace determinism; use the simulator's virtual clock"
    )

    def run(self, source: SourceFile) -> Iterator[Finding]:
        for call in source.calls():
            name = source.resolved(call.func)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    source,
                    call,
                    f"call to {name}() reads the wall clock; "
                    "simulation code must use the kernel's virtual "
                    "time",
                )


@register
class UnseededRandomPass(LintPass):
    rule = "unseeded-random"
    severity = "error"
    description = (
        "global random.* functions and argument-less random.Random() "
        "draw from unseeded state; construct random.Random(seed) "
        "explicitly"
    )

    def run(self, source: SourceFile) -> Iterator[Finding]:
        for call in source.calls():
            name = source.resolved(call.func)
            if name == "random.Random" and not (
                call.args or call.keywords
            ):
                yield self.finding(
                    source,
                    call,
                    "random.Random() without a seed argument is "
                    "nondeterministic across runs",
                )
            elif name in GLOBAL_RANDOM_CALLS:
                yield self.finding(
                    source,
                    call,
                    f"{name}() uses the shared module-level RNG; "
                    "thread an explicit random.Random(seed) instead",
                )


def _is_set_like(node: ast.AST) -> bool:
    """Syntactically certain to evaluate to a set/frozenset."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
    ):
        return _is_set_like(node.left) or _is_set_like(node.right)
    return False


@register
class UnorderedIterPass(LintPass):
    rule = "unordered-iter"
    severity = "error"
    description = (
        "iterating a set feeds hash order (randomized for strings) "
        "into downstream output; wrap in sorted()"
    )

    def run(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            target: Optional[ast.AST] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                target = node.iter
            elif isinstance(node, ast.comprehension):
                target = node.iter
            elif isinstance(node, ast.Call):
                func = node.func
                consumer = None
                if isinstance(func, ast.Name) and func.id in (
                    "list",
                    "tuple",
                ):
                    consumer = func.id
                elif (
                    isinstance(func, ast.Attribute)
                    and func.attr == "join"
                ):
                    consumer = "join"
                if consumer and node.args and _is_set_like(node.args[0]):
                    yield self.finding(
                        source,
                        node,
                        f"{consumer}() over a set materializes hash "
                        "order; use sorted() for a stable sequence",
                    )
                continue
            if target is not None and _is_set_like(target):
                yield self.finding(
                    source,
                    node,
                    "iteration over a set visits elements in hash "
                    "order; wrap the iterable in sorted()",
                )


def _class_is_process(node: ast.ClassDef) -> bool:
    if node.name.endswith("Process"):
        return True
    for base in node.bases:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if "Process" in name:
            return True
    return False


@register
class KernelBypassPass(LintPass):
    rule = "kernel-bypass"
    severity = "error"
    description = (
        "process classes mutating cluster-shared state directly "
        "(self.cluster.attr = / .append(...)) bypass the kernel-"
        "mediated access discipline — a race in the simulated "
        "concurrency model"
    )

    def run(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class_defaults(source, node)
                if _class_is_process(node):
                    yield from self._check_cluster_mutations(
                        source, node
                    )

    def _check_class_defaults(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        """Mutable class-level defaults are shared across instances."""
        for stmt in node.body:
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.startswith("__") or name.isupper():
                continue  # dunders and read-only constants
            if isinstance(value, (ast.List, ast.Dict, ast.Set)):
                yield self.finding(
                    source,
                    stmt,
                    f"class attribute {name!r} holds a mutable "
                    "default shared by every instance; initialise it "
                    "in __init__",
                )

    def _check_cluster_mutations(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        for stmt in ast.walk(node):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    dotted = source.dotted(base) or ""
                    if dotted.startswith("self.cluster."):
                        yield self.finding(
                            source,
                            stmt,
                            f"direct write to shared {dotted!r} from "
                            "a process class; route it through a "
                            "Cluster service method",
                        )
            elif isinstance(stmt, ast.Call) and isinstance(
                stmt.func, ast.Attribute
            ):
                if stmt.func.attr in MUTATOR_METHODS:
                    dotted = source.dotted(stmt.func.value) or ""
                    if dotted.startswith("self.cluster."):
                        yield self.finding(
                            source,
                            stmt,
                            f"mutating call {dotted}."
                            f"{stmt.func.attr}() on shared cluster "
                            "state from a process class; route it "
                            "through a Cluster service method",
                        )


def _repro_error_names() -> Set[str]:
    """Every exception class defined by :mod:`repro.errors`."""
    import repro.errors as errors_mod

    names = set()
    for name in dir(errors_mod):
        obj = getattr(errors_mod, name)
        if isinstance(obj, type) and issubclass(
            obj, errors_mod.ReproError
        ):
            names.add(name)
    return names
