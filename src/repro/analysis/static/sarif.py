"""SARIF 2.1.0 export and the findings baseline (the CI contract).

Two thin serialization layers over :class:`~.findings.Report`:

* :func:`render_sarif` emits a minimal-but-valid SARIF 2.1.0 log —
  one run, one ``tool.driver`` carrying the rule catalog, one result
  per finding.  Suppressed findings are included with an ``inSource``
  suppression object (SARIF viewers grey them out rather than hide
  them), so the artifact is a faithful record of the run.
* the **baseline** (:func:`load_baseline` / :func:`baseline_payload` /
  :func:`diff_against_baseline`) lets CI fail only on *new* findings:
  the committed ``analysis_baseline.json`` holds a multiset of
  ``(path, rule, message)`` fingerprints — deliberately line-number-
  free, so an unrelated edit shifting a known finding by a few lines
  does not break the gate — and the diff reports any unsuppressed
  finding whose fingerprint is not in the baseline.

Severity mapping follows the SARIF spec: ``error -> "error"``,
``warning -> "warning"``, ``info -> "note"``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Tuple

from repro.analysis.static.findings import Finding, Report

__all__ = [
    "baseline_payload",
    "diff_against_baseline",
    "load_baseline",
    "render_sarif",
]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Finding severity -> SARIF result level.
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}

BASELINE_VERSION = 1


def _result(finding: Finding) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {"startLine": finding.line},
                }
            }
        ],
    }
    if finding.suppressed:
        result["suppressions"] = [{"kind": "inSource"}]
    return result


def render_sarif(
    report: Report,
    rule_catalog: Mapping[str, str],
    *,
    tool_version: str = "unknown",
) -> str:
    """The report as a SARIF 2.1.0 JSON string.

    ``rule_catalog`` maps rule id -> one-line description (what
    ``rule_descriptions()`` returns); only rules that actually ran are
    listed in the driver, keeping result ``ruleIndex`` lookups exact.
    """
    rules: List[Dict[str, Any]] = [
        {
            "id": rule,
            "shortDescription": {
                "text": rule_catalog.get(rule, rule)
            },
        }
        for rule in report.rules_run
    ]
    rule_index = {entry["id"]: i for i, entry in enumerate(rules)}
    results = []
    for finding in report.findings:
        result = _result(finding)
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    log = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analyze",
                        "informationUri": (
                            "https://github.com/repro/repro"
                        ),
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------


def _fingerprint(finding: Finding) -> Tuple[str, str, str]:
    return (finding.path, finding.rule, finding.message)


def baseline_payload(report: Report) -> str:
    """The JSON to commit as ``analysis_baseline.json``.

    Only unsuppressed findings enter the baseline: a suppression is
    already a reviewed, in-source decision and needs no second ledger.
    """
    findings = sorted(_fingerprint(f) for f in report.unsuppressed)
    payload = {
        "version": BASELINE_VERSION,
        "findings": [
            {"path": path, "rule": rule, "message": message}
            for path, rule, message in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    """The committed fingerprint multiset (empty when absent)."""
    if not path.exists():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    version = data.get("version")
    if version != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {version!r} in {path}; "
            f"expected {BASELINE_VERSION} (regenerate with "
            "--write-baseline)"
        )
    return [
        (entry["path"], entry["rule"], entry["message"])
        for entry in data.get("findings", [])
    ]


def diff_against_baseline(
    report: Report, baseline: List[Tuple[str, str, str]]
) -> List[Finding]:
    """Unsuppressed findings not covered by the baseline (multiset).

    Duplicate fingerprints are honoured count-wise: a baseline with
    one occurrence of a fingerprint excuses exactly one finding, so a
    *second* instance of a known race still fails the gate.
    """
    budget: Dict[Tuple[str, str, str], int] = {}
    for fingerprint in baseline:
        budget[fingerprint] = budget.get(fingerprint, 0) + 1
    new: List[Finding] = []
    for finding in report.unsuppressed:
        fingerprint = _fingerprint(finding)
        if budget.get(fingerprint, 0) > 0:
            budget[fingerprint] -= 1
        else:
            new.append(finding)
    return new
