"""Generic worklist fixpoint solver over :mod:`.cfg` graphs.

A :class:`DataflowProblem` supplies the lattice (``top``, ``meet``,
``boundary``) and the semantics (``transfer`` over one block's event
list); :func:`solve` iterates to the meet-over-paths fixpoint with a
worklist, forward or backward.  Values must be immutable (frozensets,
tuples, small dataclasses) — transfer functions return fresh values,
never mutate their input.

After the fixpoint, :func:`values_at_events` replays each block's
transfer one event at a time, handing the pass the dataflow value *at*
every event — the form the lockset detector consumes ("which locks
are held at this attribute access?").

Conventions:

* ``meet(a, b)`` combines values at control-flow joins.  Intersection
  gives a *must* analysis (lockset: a lock counts only if held on
  every path), union a *may* analysis (handler-atomicity: a send on
  any path taints what follows).
* ``top`` is the value of an edge never yet reached — the identity of
  ``meet`` (universal set for must, empty for may).  Unreachable
  blocks keep ``top`` and are skipped by :func:`values_at_events`.
* ``boundary`` seeds the entry (forward) or the exits (backward).
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, Iterator, List, Sequence, Tuple, TypeVar

from .cfg import CFG, Event

__all__ = ["DataflowProblem", "Solution", "solve", "values_at_events"]

V = TypeVar("V")


class DataflowProblem(Generic[V]):
    """Subclass and fill in the lattice + transfer for one analysis."""

    #: "forward" or "backward"
    direction: str = "forward"

    def boundary(self) -> V:
        raise NotImplementedError

    def top(self) -> V:
        raise NotImplementedError

    def meet(self, a: V, b: V) -> V:
        raise NotImplementedError

    def transfer(self, value: V, events: Sequence[Event]) -> V:
        """Push ``value`` through one block's ordered event list."""
        for event in events:
            value = self.transfer_event(value, event)
        return value

    def transfer_event(self, value: V, event: Event) -> V:
        """Per-event transfer; override this *or* ``transfer``."""
        return value


class Solution(Generic[V]):
    """Fixpoint result: the value entering and leaving each block.

    "Entering"/"leaving" follow the analysis direction — for a
    backward problem ``value_in`` is the value at the block's *end*.
    """

    def __init__(
        self,
        problem: DataflowProblem[V],
        cfg: CFG,
        value_in: Dict[int, V],
        value_out: Dict[int, V],
        reached: Sequence[int],
    ) -> None:
        self.problem = problem
        self.cfg = cfg
        self.value_in = value_in
        self.value_out = value_out
        self.reached = list(reached)


def solve(problem: DataflowProblem[V], cfg: CFG) -> Solution[V]:
    """Iterate ``problem`` over ``cfg`` to a fixpoint."""
    forward = problem.direction == "forward"
    if forward:
        starts = [cfg.entry]
        flow_preds: Callable[[int], List[int]] = cfg.predecessors
        flow_succs: Callable[[int], List[int]] = cfg.successors
        order = cfg.rpo()
    else:
        starts = [cfg.exit, cfg.raise_exit]
        flow_preds = cfg.successors
        flow_succs = cfg.predecessors
        order = list(reversed(cfg.rpo()))

    value_in: Dict[int, V] = {b: problem.top() for b in cfg.blocks}
    value_out: Dict[int, V] = {b: problem.top() for b in cfg.blocks}
    for start in starts:
        value_in[start] = problem.boundary()

    position = {block: index for index, block in enumerate(order)}
    worklist = list(order)
    queued = set(worklist)
    while worklist:
        block_id = worklist.pop(0)
        queued.discard(block_id)
        preds = flow_preds(block_id)
        if preds:
            incoming = value_out[preds[0]]
            for pred in preds[1:]:
                incoming = problem.meet(incoming, value_out[pred])
            if block_id in starts:
                incoming = problem.meet(incoming, problem.boundary())
            value_in[block_id] = incoming
        events = cfg.blocks[block_id].events
        if not forward:
            events = list(reversed(events))
        new_out = problem.transfer(value_in[block_id], events)
        if new_out != value_out[block_id]:
            value_out[block_id] = new_out
            for succ in flow_succs(block_id):
                if succ not in queued and succ in position:
                    queued.add(succ)
                    worklist.append(succ)
    reached = cfg.reachable()
    return Solution(problem, cfg, value_in, value_out, reached)


def values_at_events(
    solution: Solution[V],
) -> Iterator[Tuple[int, Event, V]]:
    """Replay transfers, yielding the value *at* each event.

    For a forward problem the value is the state just *before* the
    event executes; for a backward one, just *after* (in program
    order), i.e. before it in analysis order.  Unreachable blocks are
    skipped — their ``top`` values are vacuous.
    """
    problem = solution.problem
    forward = problem.direction == "forward"
    reachable = set(solution.reached)
    for block_id in sorted(solution.cfg.blocks):
        if block_id not in reachable:
            continue
        events = solution.cfg.blocks[block_id].events
        if not forward:
            events = list(reversed(events))
        value = solution.value_in[block_id]
        for event in events:
            yield block_id, event, value
            value = problem.transfer_event(value, event)
