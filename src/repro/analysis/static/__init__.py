"""Static-analysis subsystem: constraint prover + determinism lints.

Two pass families over one shared framework:

* the **workload constraint prover** (:mod:`.prover`) certifies
  OO-/WW-/WO-constraint compliance of workload specs up front,
  unlocking the Theorem-7 polynomial checking path without the
  dynamic constraint scan;
* the **determinism & race lints** — syntactic passes in
  :mod:`.lints` (seeded RNG, virtual clocks, ordered iteration,
  kernel-mediated state access) and flow-sensitive passes built on
  the :mod:`.cfg` + :mod:`.dataflow` engine: the Eraser-style static
  lockset race detector (:mod:`.locks`) and the path-sensitive span
  pairing / swallowed-error / handler-atomicity rules (:mod:`.flows`).

Entry points: ``python -m repro analyze`` (CLI), ``make analyze``,
and :func:`repro.analysis.static.analyze_repo` programmatically.  See
``docs/static_analysis.md`` for the rule catalog and certificate
semantics.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

import repro.analysis.static.flows  # noqa: F401 - registers the passes
import repro.analysis.static.lints  # noqa: F401 - registers the passes
import repro.analysis.static.locks  # noqa: F401 - registers the passes
from repro.analysis.static.cfg import CFG, Block, Event, build_cfg
from repro.analysis.static.dataflow import (
    DataflowProblem,
    Solution,
    solve,
    values_at_events,
)
from repro.analysis.static.findings import Finding, Report, parse_allows
from repro.analysis.static.framework import (
    Analyzer,
    AnalyzerConfig,
    LintPass,
    SourceFile,
    load_config,
    register,
    registered_rules,
    rule_descriptions,
)
from repro.analysis.static.prover import (
    CONSTRAINTS,
    THEOREM7_CONSTRAINTS,
    TOTAL_ORDER_PROTOCOLS,
    ConstraintCertificate,
    ProgramProfile,
    SampledRun,
    WorkloadSpec,
    certify_chain,
    certify_history,
    certify_partitioned_history,
    certify_run,
    certify_spec,
    certify_workloads,
    sample_history,
)
from repro.analysis.static.report import render_json, render_text
from repro.analysis.static.sarif import (
    baseline_payload,
    diff_against_baseline,
    load_baseline,
    render_sarif,
)

__all__ = [
    "Analyzer",
    "AnalyzerConfig",
    "Block",
    "CFG",
    "CONSTRAINTS",
    "ConstraintCertificate",
    "DataflowProblem",
    "Event",
    "Finding",
    "LintPass",
    "Solution",
    "ProgramProfile",
    "Report",
    "SampledRun",
    "SourceFile",
    "THEOREM7_CONSTRAINTS",
    "TOTAL_ORDER_PROTOCOLS",
    "WorkloadSpec",
    "analyze_repo",
    "baseline_payload",
    "build_cfg",
    "certify_chain",
    "certify_history",
    "certify_partitioned_history",
    "certify_run",
    "certify_spec",
    "certify_workloads",
    "diff_against_baseline",
    "load_baseline",
    "load_config",
    "parse_allows",
    "register",
    "registered_rules",
    "render_json",
    "render_sarif",
    "render_text",
    "rule_descriptions",
    "sample_history",
    "solve",
    "values_at_events",
]


def analyze_repo(
    paths: Optional[Sequence[Path]] = None,
    *,
    root: Optional[Path] = None,
    config: Optional[AnalyzerConfig] = None,
) -> Report:
    """Analyze the package source tree (default: ``src/repro``).

    ``root`` anchors the repo-relative paths in findings and the
    pyproject config lookup; it defaults to the repository root
    inferred from this file's location (``src/repro/...`` -> repo).
    """
    package_dir = Path(__file__).resolve().parent.parent.parent
    inferred_root = package_dir.parent.parent  # src/repro -> repo root
    root = root or inferred_root
    if config is None:
        config = load_config(root / "pyproject.toml")
    if paths is None:
        paths = [package_dir]
    return Analyzer(config=config).analyze_paths(paths, root=root)
