"""The pass framework: source model, shared AST walker, analyzer.

Design mirrors the checker pipeline's "one shared index" idea
(:mod:`repro.core.index`): each file is parsed **once** into a
:class:`SourceFile` (text, AST with parent links, import aliases,
suppression map) and every registered :class:`LintPass` runs against
that shared model — adding a pass never adds a parse.

Everything here is standard library only, so the analyzer runs in the
hermetic container where ruff is absent (``tools/lint.py`` falls back
to it).
"""

from __future__ import annotations

import ast
import time  # repro: allow[wall-clock] - measures the analyzer itself
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.analysis.static.findings import Finding, Report, parse_allows
from repro.errors import StaticAnalysisError


@dataclass
class SourceFile:
    """One parsed module: the shared input model for every pass.

    Attributes:
        rel: repo-relative path (used in findings).
        text: raw source.
        tree: the module AST; every node carries a ``parent`` link
            (added here) so passes can look outward without tracking
            context themselves.
        allows: suppression map (line -> allowed rules).
        import_aliases: local name -> dotted module for ``import x`` /
            ``import x as y`` statements.
        from_imports: local name -> ``module.attr`` for
            ``from m import a [as b]`` statements.
    """

    rel: str
    text: str
    tree: ast.Module
    allows: Dict[int, FrozenSet[str]]
    import_aliases: Dict[str, str] = field(default_factory=dict)
    from_imports: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_source(cls, text: str, rel: str) -> "SourceFile":
        try:
            tree = ast.parse(text)
        except SyntaxError as exc:
            raise StaticAnalysisError(
                f"{rel}: cannot parse: {exc}"
            ) from exc
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                child.parent = parent  # type: ignore[attr-defined]
        source = cls(
            rel=rel, text=text, tree=tree, allows=parse_allows(text)
        )
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    source.import_aliases[
                        alias.asname or alias.name.split(".")[0]
                    ] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    source.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return source

    @classmethod
    def from_path(cls, path: Path, root: Optional[Path] = None) -> "SourceFile":
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise StaticAnalysisError(f"{path}: unreadable: {exc}") from exc
        rel = str(path.relative_to(root)) if root else str(path)
        return cls.from_source(text, rel)

    # ------------------------------------------------------------------
    # Shared AST queries used by several passes
    # ------------------------------------------------------------------

    def dotted(self, node: ast.AST) -> Optional[str]:
        """``a.b.c`` for a Name/Attribute chain, else None."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def resolved(self, node: ast.AST) -> Optional[str]:
        """Like :meth:`dotted`, with the head resolved through imports.

        ``import time as t; t.sleep`` resolves to ``time.sleep``;
        ``from random import Random; Random`` to ``random.Random``.
        """
        dotted = self.dotted(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.from_imports:
            head = self.from_imports[head]
        elif head in self.import_aliases:
            head = self.import_aliases[head]
        return f"{head}.{rest}" if rest else head

    def calls(self) -> Iterator[ast.Call]:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    def enclosing_function(self, node: ast.AST) -> Optional[ast.AST]:
        """The nearest enclosing function/async-function def, if any."""
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return current
            current = getattr(current, "parent", None)
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        current = getattr(node, "parent", None)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = getattr(current, "parent", None)
        return None


class LintPass:
    """Base class for analyzer passes.

    Subclasses set the class attributes and implement :meth:`run`,
    yielding :class:`Finding` objects (without worrying about
    suppression — the analyzer applies the allow-map afterwards).
    """

    #: kebab-case rule name; also the suppression key.
    rule: str = ""
    severity: str = "warning"
    #: one-line description for ``--list-rules`` and the docs.
    description: str = ""

    def run(self, source: SourceFile) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=source.rel,
            line=getattr(node, "lineno", 1),
            rule=self.rule,
            message=message,
            severity=self.severity,
        )


#: Global registry: rule name -> pass class (populated by register()).
_REGISTRY: Dict[str, Type[LintPass]] = {}


def register(cls: Type[LintPass]) -> Type[LintPass]:
    """Class decorator adding a pass to the default registry."""
    if not cls.rule:
        raise StaticAnalysisError(f"{cls.__name__} has no rule name")
    if cls.rule in _REGISTRY:
        raise StaticAnalysisError(f"duplicate rule {cls.rule!r}")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_rules() -> Tuple[str, ...]:
    return tuple(sorted(_REGISTRY))


def rule_descriptions() -> Dict[str, str]:
    return {name: cls.description for name, cls in _REGISTRY.items()}


@dataclass(frozen=True)
class AnalyzerConfig:
    """Which rules run and which paths are skipped.

    ``select=()`` means every registered rule.  ``exclude`` entries are
    substring matches against the repo-relative path (kept dead simple
    so the pyproject fallback parser stays honest).
    """

    select: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()

    def wants_rule(self, rule: str) -> bool:
        return not self.select or rule in self.select

    def wants_path(self, rel: str) -> bool:
        return not any(part in rel for part in self.exclude)


def load_config(pyproject: Path) -> AnalyzerConfig:
    """Read ``[tool.repro.analyze]`` from pyproject.toml.

    Uses :mod:`tomllib` on 3.11+; on older interpreters falls back to a
    minimal parser that understands exactly the shape we write there
    (``key = ["a", "b"]`` lines inside the section).  Missing file or
    section yields the default config.
    """
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return AnalyzerConfig()
    table: Dict[str, List[str]] = {}
    try:
        import tomllib  # Python >= 3.11

        data = tomllib.loads(text)
        section = (
            data.get("tool", {}).get("repro", {}).get("analyze", {})
        )
        for key in ("select", "exclude"):
            value = section.get(key, [])
            if isinstance(value, list):
                table[key] = [str(item) for item in value]
    except ImportError:  # pragma: no cover - exercised on py<=3.10
        in_section = False
        for line in text.splitlines():
            stripped = line.strip()
            if stripped.startswith("["):
                in_section = stripped == "[tool.repro.analyze]"
                continue
            if not in_section or "=" not in stripped:
                continue
            key, _, value = stripped.partition("=")
            key = key.strip()
            value = value.strip()
            if key in ("select", "exclude") and value.startswith("["):
                items = [
                    token.strip().strip("\"'")
                    for token in value.strip("[]").split(",")
                ]
                table[key] = [item for item in items if item]
    return AnalyzerConfig(
        select=tuple(table.get("select", ())),
        exclude=tuple(table.get("exclude", ())),
    )


class Analyzer:
    """Runs a set of passes over files, applying config + suppressions."""

    def __init__(
        self,
        passes: Optional[Sequence[LintPass]] = None,
        config: Optional[AnalyzerConfig] = None,
    ) -> None:
        self.config = config or AnalyzerConfig()
        if passes is None:
            passes = [
                cls()
                for name, cls in sorted(_REGISTRY.items())
                if self.config.wants_rule(name)
            ]
        self.passes: List[LintPass] = list(passes)

    def analyze_source(self, text: str, rel: str) -> List[Finding]:
        """Analyze one in-memory module (the unit tests' entry point)."""
        source = SourceFile.from_source(text, rel)
        return self._run_passes(source)

    def _run_passes(self, source: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for lint_pass in self.passes:
            for finding in lint_pass.run(source):
                findings.append(
                    finding.with_suppressed(
                        finding.suppressed_by(source.allows)
                    )
                )
        return sorted(findings, key=Finding.sort_key)

    def analyze_paths(
        self, paths: Iterable[Path], *, root: Optional[Path] = None
    ) -> Report:
        """Analyze ``*.py`` files under each path (files or directories)."""
        start = time.perf_counter()  # repro: allow[wall-clock]
        findings: List[Finding] = []
        errors: List[str] = []
        files = 0
        for path in self._expand(paths):
            rel = str(path.relative_to(root)) if root else str(path)
            if not self.config.wants_path(rel):
                continue
            files += 1
            try:
                source = SourceFile.from_path(path, root)
            except StaticAnalysisError as exc:
                errors.append(str(exc))
                continue
            findings.extend(self._run_passes(source))
        return Report(
            findings=tuple(sorted(findings, key=Finding.sort_key)),
            files_analyzed=files,
            rules_run=tuple(p.rule for p in self.passes),
            elapsed_s=time.perf_counter() - start,  # repro: allow[wall-clock]
            errors=tuple(errors),
        )

    @staticmethod
    def _expand(paths: Iterable[Path]) -> List[Path]:
        out: List[Path] = []
        for path in paths:
            if path.is_dir():
                out.extend(sorted(path.rglob("*.py")))
            elif path.suffix == ".py":
                out.append(path)
        return out
