"""Control-flow graphs over the :class:`SourceFile` AST model.

One :class:`CFG` per function body.  Nodes are basic blocks holding an
ordered list of :class:`Event` entries; edges are plain successor
links.  The builder understands the control constructs the flow-
sensitive passes care about:

* ``if``/``elif``/``else`` branching and short-circuit joins;
* ``while`` and ``for`` loops, including their ``else`` clauses,
  ``break`` and ``continue``;
* ``try``/``except``/``else``/``finally`` — statements inside a
  ``try`` body get an exceptional edge to each handler, and the
  ``finally`` suite is *duplicated* per continuation (normal fall-
  through, exceptional propagation, and each ``return``/``break``/
  ``continue`` that crosses it) so a must-analysis never merges a
  returning path with a falling-through one;
* ``with`` blocks — every exit from the body (normal, ``return``,
  ``raise``, ``break``, ``continue``, exception propagating to an
  outer ``try``) passes through a synthesized ``with_exit`` event, so
  a lock acquired by ``with self._lock:`` is provably released on all
  paths, exactly like the runtime guarantee;
* early ``return`` and ``raise`` (including the bare re-``raise``).

Deliberate approximation: *implicit* exceptions (any call may raise)
only generate edges inside ``try`` statements — from each try-body
block to each handler.  Outside a ``try`` there is nothing to observe
an implicit exception with, so modelling it would only add noise to
path-sensitive rules like span-pairing.

The module is analysis-agnostic: it knows nothing about locks or
spans.  :mod:`repro.analysis.static.dataflow` runs fixpoints over it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "CFG",
    "Block",
    "Event",
    "build_cfg",
    "event_roots",
    "scoped_walk",
]

#: Event kinds a block can carry.
STMT = "stmt"          #: one simple statement (or a test expression)
WITH_ENTER = "with_enter"  #: entering one ``with`` item (node = withitem)
WITH_EXIT = "with_exit"    #: leaving one ``with`` item (node = withitem)
ASSUME = "assume"      #: branch refinement: info = (name, state)


@dataclass(frozen=True)
class Event:
    """One atomic step inside a basic block.

    ``info`` carries per-kind payload; for :data:`ASSUME` events it is
    ``(variable_name, state)`` with state one of ``"truthy"``,
    ``"falsy"``, ``"none"``, ``"not-none"`` — the fact the branch
    condition establishes about a local on the taken edge.  Analyses
    that don't narrow on conditions simply ignore the kind.
    """

    kind: str
    node: ast.AST
    info: Tuple[str, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        line = getattr(self.node, "lineno", "?")
        return f"Event({self.kind}@{line})"


def _branch_assumptions(
    test: ast.AST,
) -> Tuple[Optional[Tuple[str, str]], Optional[Tuple[str, str]]]:
    """(then-branch fact, else-branch fact) for simple local tests."""
    if isinstance(test, ast.Name):
        return (test.id, "truthy"), (test.id, "falsy")
    if (
        isinstance(test, ast.UnaryOp)
        and isinstance(test.op, ast.Not)
        and isinstance(test.operand, ast.Name)
    ):
        return (test.operand.id, "falsy"), (test.operand.id, "truthy")
    if (
        isinstance(test, ast.Compare)
        and isinstance(test.left, ast.Name)
        and len(test.ops) == 1
        and len(test.comparators) == 1
        and isinstance(test.comparators[0], ast.Constant)
        and test.comparators[0].value is None
    ):
        name = test.left.id
        if isinstance(test.ops[0], ast.Is):
            return (name, "none"), (name, "not-none")
        if isinstance(test.ops[0], ast.IsNot):
            return (name, "not-none"), (name, "none")
    return None, None


@dataclass
class Block:
    """A basic block: straight-line events plus successor edges."""

    id: int
    events: List[Event] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)
    #: Human-readable tag for tests/debugging ("entry", "exit", ...).
    tag: str = ""


class CFG:
    """The graph for one function: blocks, entry and exit ids.

    ``exit`` is the single normal/early-return sink; ``raise_exit``
    collects paths that leave the function by raising.  Both are
    ordinary blocks so solvers treat them uniformly.
    """

    def __init__(self, func: Optional[ast.AST] = None) -> None:
        self.func = func
        self.blocks: Dict[int, Block] = {}
        self._next_id = 0
        self.entry = self.new_block(tag="entry").id
        self.exit = self.new_block(tag="exit").id
        self.raise_exit = self.new_block(tag="raise-exit").id

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def new_block(self, tag: str = "") -> Block:
        block = Block(id=self._next_id, tag=tag)
        self._next_id += 1
        self.blocks[block.id] = block
        return block

    def add_edge(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def successors(self, block_id: int) -> List[int]:
        return self.blocks[block_id].succs

    def predecessors(self, block_id: int) -> List[int]:
        return self.blocks[block_id].preds

    def events(self) -> Iterator[Tuple[int, Event]]:
        """Every (block id, event) pair, in block-id order."""
        for block_id in sorted(self.blocks):
            for event in self.blocks[block_id].events:
                yield block_id, event

    def reachable(self) -> List[int]:
        """Block ids reachable from the entry, in discovery order."""
        seen = [self.entry]
        seen_set = {self.entry}
        cursor = 0
        while cursor < len(seen):
            for succ in self.blocks[seen[cursor]].succs:
                if succ not in seen_set:
                    seen_set.add(succ)
                    seen.append(succ)
            cursor += 1
        return seen

    def rpo(self) -> List[int]:
        """Reverse postorder over reachable blocks (forward analyses)."""
        order: List[int] = []
        state: Dict[int, int] = {}  # 0 = in progress, 1 = done
        stack: List[Tuple[int, int]] = [(self.entry, 0)]
        while stack:
            node, phase = stack.pop()
            if phase == 0:
                if node in state:
                    continue
                state[node] = 0
                stack.append((node, 1))
                for succ in reversed(self.blocks[node].succs):
                    if succ not in state:
                        stack.append((succ, 0))
            else:
                state[node] = 1
                order.append(node)
        order.reverse()
        return order


class _Frame:
    """One entry of the cleanup stack crossed by non-local jumps.

    ``kind`` is ``"with"`` (carries the withitems to close) or
    ``"finally"`` (carries the suite to re-build); ``loop`` frames mark
    break/continue targets and need no cleanup of their own.
    """

    __slots__ = ("kind", "items", "body", "break_to", "continue_to")

    def __init__(
        self,
        kind: str,
        *,
        items: Sequence[ast.withitem] = (),
        body: Sequence[ast.stmt] = (),
        break_to: Optional[int] = None,
        continue_to: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.items = list(items)
        self.body = list(body)
        self.break_to = break_to
        self.continue_to = continue_to


class _Builder:
    """Recursive-descent CFG construction for one function body."""

    def __init__(self, func: ast.AST, body: Sequence[ast.stmt]) -> None:
        self.cfg = CFG(func)
        self.body = list(body)
        #: Innermost-last stack of with/finally/loop frames.
        self.frames: List[_Frame] = []
        #: Innermost exception target (handler dispatch block), if the
        #: statement list being built sits inside a try body.
        self.except_targets: List[int] = []

    def build(self) -> CFG:
        first = self.cfg.new_block(tag="body")
        self.cfg.add_edge(self.cfg.entry, first.id)
        last = self._stmts(self.body, first.id)
        if last is not None:
            self.cfg.add_edge(last, self.cfg.exit)
        return self.cfg

    # ------------------------------------------------------------------
    # Core dispatch
    # ------------------------------------------------------------------

    def _stmts(
        self, stmts: Sequence[ast.stmt], current: Optional[int]
    ) -> Optional[int]:
        """Build ``stmts`` starting in block ``current``.

        Returns the block falling through to whatever follows, or None
        when every path jumped away (return/raise/break/continue).
        """
        for stmt in stmts:
            if current is None:
                # Unreachable code after a jump: build nothing.  (The
                # analyzer is not a dead-code linter; ruff covers that.)
                return None
            current = self._stmt(stmt, current)
        return current

    def _stmt(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, current)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if isinstance(stmt, ast.Return):
            return self._return(stmt, current)
        if isinstance(stmt, ast.Raise):
            return self._raise(stmt, current)
        if isinstance(stmt, ast.Break):
            return self._break(stmt, current)
        if isinstance(stmt, ast.Continue):
            return self._continue(stmt, current)
        # Simple statement: one event, with an exceptional edge when a
        # try body encloses it (any expression may raise).
        self._emit(current, stmt)
        if self.except_targets:
            self.cfg.add_edge(current, self.except_targets[-1])
        return current

    def _emit(
        self,
        block_id: int,
        node: ast.AST,
        kind: str = STMT,
        info: Tuple[str, ...] = (),
    ) -> None:
        self.cfg.blocks[block_id].events.append(Event(kind, node, info))

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------

    def _if(self, stmt: ast.If, current: int) -> Optional[int]:
        self._emit(current, stmt.test)
        then_info, else_info = _branch_assumptions(stmt.test)
        then_entry = self.cfg.new_block(tag="then")
        self.cfg.add_edge(current, then_entry.id)
        if then_info is not None:
            self._emit(then_entry.id, stmt.test, ASSUME, then_info)
        then_exit = self._stmts(stmt.body, then_entry.id)
        if stmt.orelse or else_info is not None:
            else_entry = self.cfg.new_block(tag="else")
            self.cfg.add_edge(current, else_entry.id)
            if else_info is not None:
                self._emit(else_entry.id, stmt.test, ASSUME, else_info)
            else_exit = self._stmts(stmt.orelse, else_entry.id)
        else:
            else_exit = current
        if then_exit is None and else_exit is None:
            return None
        join = self.cfg.new_block(tag="join")
        for leaf in (then_exit, else_exit):
            if leaf is not None:
                self.cfg.add_edge(leaf, join.id)
        return join.id

    # ------------------------------------------------------------------
    # Loops
    # ------------------------------------------------------------------

    def _while(self, stmt: ast.While, current: int) -> Optional[int]:
        header = self.cfg.new_block(tag="while-header")
        self.cfg.add_edge(current, header.id)
        self._emit(header.id, stmt.test)
        after = self.cfg.new_block(tag="after-loop")
        infinite = (
            isinstance(stmt.test, ast.Constant) and bool(stmt.test.value)
        )
        body_entry = self.cfg.new_block(tag="while-body")
        self.cfg.add_edge(header.id, body_entry.id)
        self.frames.append(
            _Frame("loop", break_to=after.id, continue_to=header.id)
        )
        body_exit = self._stmts(stmt.body, body_entry.id)
        self.frames.pop()
        if body_exit is not None:
            self.cfg.add_edge(body_exit, header.id)
        # The test-false edge runs the ``else`` suite (if any) before
        # ``after``; ``break`` skips the else, per language semantics.
        if not infinite:
            if stmt.orelse:
                else_entry = self.cfg.new_block(tag="while-else")
                self.cfg.add_edge(header.id, else_entry.id)
                else_exit = self._stmts(stmt.orelse, else_entry.id)
                if else_exit is not None:
                    self.cfg.add_edge(else_exit, after.id)
            else:
                self.cfg.add_edge(header.id, after.id)
        return after.id if self.cfg.blocks[after.id].preds else None

    def _for(self, stmt, current: int) -> Optional[int]:
        header = self.cfg.new_block(tag="for-header")
        self.cfg.add_edge(current, header.id)
        # The header event carries the whole For node: iterating reads
        # the iterable and binds the target each trip.
        self._emit(header.id, stmt)
        after = self.cfg.new_block(tag="after-loop")
        body_entry = self.cfg.new_block(tag="for-body")
        self.cfg.add_edge(header.id, body_entry.id)
        self.frames.append(
            _Frame("loop", break_to=after.id, continue_to=header.id)
        )
        body_exit = self._stmts(stmt.body, body_entry.id)
        self.frames.pop()
        if body_exit is not None:
            self.cfg.add_edge(body_exit, header.id)
        if stmt.orelse:
            else_entry = self.cfg.new_block(tag="for-else")
            self.cfg.add_edge(header.id, else_entry.id)
            else_exit = self._stmts(stmt.orelse, else_entry.id)
            if else_exit is not None:
                self.cfg.add_edge(else_exit, after.id)
        else:
            self.cfg.add_edge(header.id, after.id)
        return after.id if self.cfg.blocks[after.id].preds else None

    # ------------------------------------------------------------------
    # with
    # ------------------------------------------------------------------

    def _with(self, stmt, current: int) -> Optional[int]:
        for item in stmt.items:
            self._emit(current, item, WITH_ENTER)
        self.frames.append(_Frame("with", items=stmt.items))
        body_exit = self._stmts(stmt.body, current)
        self.frames.pop()
        if body_exit is None:
            return None
        for item in reversed(stmt.items):
            self._emit(body_exit, item, WITH_EXIT)
        return body_exit

    # ------------------------------------------------------------------
    # try / except / else / finally
    # ------------------------------------------------------------------

    def _try(self, stmt: ast.Try, current: int) -> Optional[int]:
        handlers = stmt.handlers
        finally_body = stmt.finalbody
        join = self.cfg.new_block(tag="try-join")

        # Handler dispatch block: every try-body block that may raise
        # edges here; it fans out to each handler (and, with a finally
        # but no matching handler, to the exceptional finally copy).
        dispatch: Optional[int] = None
        if handlers or finally_body:
            dispatch = self.cfg.new_block(tag="except-dispatch").id

        body_entry = self.cfg.new_block(tag="try-body")
        self.cfg.add_edge(current, body_entry.id)
        if finally_body:
            # A finally frame reroutes return/break/continue through a
            # fresh copy of the suite.
            self.frames.append(_Frame("finally", body=finally_body))
        if dispatch is not None:
            self.except_targets.append(dispatch)
        body_exit = self._stmts(stmt.body, body_entry.id)
        if dispatch is not None:
            self.except_targets.pop()
        if body_exit is not None and stmt.orelse:
            body_exit = self._stmts(stmt.orelse, body_exit)

        leaves: List[Optional[int]] = [body_exit]
        if dispatch is not None:
            for handler in handlers:
                handler_entry = self.cfg.new_block(tag="except")
                self.cfg.add_edge(dispatch, handler_entry.id)
                self._emit(handler_entry.id, handler)
                handler_exit = self._stmts(handler.body, handler_entry.id)
                leaves.append(handler_exit)
            if not handlers or not any(
                h.type is None for h in handlers
            ):
                # An exception no handler matches propagates onward —
                # through the finally (exceptional copy) when present,
                # else to the enclosing target.
                if finally_body:
                    # Build the exceptional copy with the frame popped
                    # so the copy does not route back through itself.
                    frame = self.frames.pop()
                    entry = self.cfg.new_block(tag="finally-raise")
                    self.cfg.add_edge(dispatch, entry.id)
                    tail = self._stmts(finally_body, entry.id)
                    self.frames.append(frame)
                    if tail is not None:
                        self._to_raise(tail)
                else:
                    self._to_raise(dispatch)
        if finally_body:
            self.frames.pop()
            # Normal continuation: one shared finally copy for every
            # suite that fell through (body/else/handlers).
            fallthrough = [leaf for leaf in leaves if leaf is not None]
            if fallthrough:
                entry = self.cfg.new_block(tag="finally")
                for leaf in fallthrough:
                    self.cfg.add_edge(leaf, entry.id)
                tail = self._stmts(finally_body, entry.id)
                if tail is not None:
                    self.cfg.add_edge(tail, join.id)
        else:
            for leaf in leaves:
                if leaf is not None:
                    self.cfg.add_edge(leaf, join.id)
        return join.id if self.cfg.blocks[join.id].preds else None

    # ------------------------------------------------------------------
    # Jumps (cleanup-stack unwinding)
    # ------------------------------------------------------------------

    def _unwind(
        self, current: int, stop_kind: Optional[str], tag: str
    ) -> Optional[int]:
        """Run cleanups innermost-first down to (not incl.) ``stop_kind``.

        Emits ``with_exit`` events and fresh finally copies along the
        way; returns the block the jump continues from (or None when a
        finally suite itself diverted the flow, e.g. by raising).
        """
        for frame in reversed(self.frames):
            if stop_kind is not None and frame.kind == stop_kind:
                break
            if frame.kind == "with":
                for item in reversed(frame.items):
                    self._emit(current, item, WITH_EXIT)
            elif frame.kind == "finally":
                entry = self.cfg.new_block(tag=tag)
                self.cfg.add_edge(current, entry.id)
                # The copy must not see this frame (or any inner ones
                # already unwound) — temporarily mask the stack.
                index = self.frames.index(frame)
                saved, self.frames = self.frames, self.frames[:index]
                try:
                    exited = self._stmts(frame.body, entry.id)
                finally:
                    self.frames = saved
                if exited is None:
                    return None
                current = exited
        return current

    def _return(self, stmt: ast.Return, current: int) -> Optional[int]:
        self._emit(current, stmt)
        tail = self._unwind(current, None, "finally-return")
        if tail is not None:
            self.cfg.add_edge(tail, self.cfg.exit)
        return None

    def _raise(self, stmt: ast.Raise, current: int) -> Optional[int]:
        self._emit(current, stmt)
        if self.except_targets:
            # Raising inside a try body: the innermost dispatch block
            # decides which handler (or the finally) sees it.  With
            # statements between the raise and the try still close.
            tail = self._unwind_to_try(current)
            if tail is not None:
                self.cfg.add_edge(tail, self.except_targets[-1])
        else:
            tail = self._unwind(current, None, "finally-raise")
            if tail is not None:
                self._to_raise(tail)
        return None

    def _unwind_to_try(self, current: int) -> Optional[int]:
        """Close only the with frames inside the innermost try body."""
        for frame in reversed(self.frames):
            if frame.kind != "with":
                break
            for item in reversed(frame.items):
                self._emit(current, item, WITH_EXIT)
        return current

    def _break(self, stmt: ast.Break, current: int) -> Optional[int]:
        self._emit(current, stmt)
        tail = self._unwind(current, "loop", "finally-break")
        if tail is not None:
            frame = next(
                (f for f in reversed(self.frames) if f.kind == "loop"),
                None,
            )
            # No loop frame: this is a statement-list fragment (e.g.
            # an except-handler body analyzed in isolation) whose loop
            # lives outside the fragment — the jump leaves the region.
            target = frame.break_to if frame else self.cfg.exit
            self.cfg.add_edge(tail, target)
        return None

    def _continue(self, stmt: ast.Continue, current: int) -> Optional[int]:
        self._emit(current, stmt)
        tail = self._unwind(current, "loop", "finally-continue")
        if tail is not None:
            frame = next(
                (f for f in reversed(self.frames) if f.kind == "loop"),
                None,
            )
            target = frame.continue_to if frame else self.cfg.exit
            self.cfg.add_edge(tail, target)
        return None

    def _to_raise(self, block_id: int) -> None:
        self.cfg.add_edge(block_id, self.cfg.raise_exit)


def build_cfg(func: ast.AST) -> CFG:
    """The CFG of one function/method body.

    Accepts any node with a ``body`` list of statements — function
    defs, but also a synthesized wrapper for an ``except`` handler
    body when a pass wants to analyze the handler in isolation.
    """
    return _Builder(func, getattr(func, "body", [])).build()


def scoped_walk(root: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested scopes.

    Statements inside a nested def/lambda/class execute at *call*
    time, not where the definition appears, so flow-sensitive passes
    must not attribute their effects to the enclosing block.
    """
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.Lambda,
                    ast.ClassDef,
                ),
            ):
                continue
            stack.append(child)


def event_roots(event: Event) -> List[ast.AST]:
    """The sub-expressions that actually execute at this event.

    Compound statements contribute only their header expressions (the
    body statements have their own events); nested defs execute
    nothing from their bodies at definition time; with-exits and
    assume events execute nothing new at all.
    """
    node = event.node
    if event.kind == WITH_ENTER:
        roots: List[ast.AST] = [node.context_expr]
        if node.optional_vars is not None:
            roots.append(node.optional_vars)
        return roots
    if event.kind in (WITH_EXIT, ASSUME):
        return []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        return [node.iter, node.target]
    if isinstance(node, ast.ExceptHandler):
        return [node.type] if node.type is not None else []
    if isinstance(
        node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
    ):
        return []
    return [node]
