"""Eraser-style static lockset race detector (rule ``lockset``).

The dynamic Eraser algorithm tracks, per shared variable, the
intersection of locks held across all accesses and warns when it goes
empty.  This pass computes the same candidate set *statically*, per
class, from the CFG + lockset dataflow:

1. **Locks** are instance attributes assigned ``threading.Lock()`` /
   ``RLock()`` in ``__init__`` (plus module-level ``Lock()`` globals).
   A lock's identity is ``ClassName.attr`` (or ``<module>.NAME``), so
   one class's lock can protect another class's fields — exactly the
   ``ControlPlane._lock``-guards-``RunRecord`` shape the serve layer
   uses.
2. **Shared attributes** of a class are those assigned in ``__init__``
   (or declared as dataclass fields) and *written* from at least one
   non-init method.  Attributes that are only configured at
   construction time are immutable-by-convention and exempt, as are
   internally synchronized values (locks themselves, ``threading``
   events/conditions/semaphores, ``queue`` queues).
3. **Locks held at an access** come from a forward must-analysis over
   the method's CFG (``with self._lock:`` regions, through every
   branch/loop/finally), seeded with the method's *entry lockset*:
   empty for public methods, dunders and thread targets; for private
   helpers, the intersection over all intra-class call sites, iterated
   to a fixpoint (the "helper summaries one call level deep" of the
   rule card — transitively, since the fixpoint composes).
4. Accesses through **typed receivers** — parameters annotated with a
   same-file class, or locals assigned ``ClassName(...)`` or a
   ``self._helper(...)`` whose return annotation names one — are
   attributed to that class, so a worker method mutating a record
   object participates in the record class's candidate sets.
5. Methods reachable *only* from ``__init__`` run before the object
   is published; their accesses are ignored (single-threaded by
   construction).

A class is analyzed when it owns a lock or its module creates
``threading.Thread`` objects (the static stand-in for "reachable from
an HTTP-handler/worker entry point"); purely sequential modules are
never flagged.  Analysis is per-file — accesses from other modules
are invisible, which is the usual pay-for-what-you-see trade of a
lint-layer detector (documented in docs/static_analysis.md).

Escapes: ``# repro: allow[lockset]`` on the reported line, or a
class-level ``_unlocked_ok = ("attr", ...)`` tuple naming attributes
that are intentionally unsynchronized (e.g. monotonic best-effort
counters where lost updates are acceptable).
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.static.cfg import (
    Event,
    WITH_ENTER,
    WITH_EXIT,
    build_cfg,
    event_roots,
    scoped_walk,
)
from repro.analysis.static.dataflow import (
    DataflowProblem,
    solve,
    values_at_events,
)
from repro.analysis.static.findings import Finding
from repro.analysis.static.framework import LintPass, SourceFile, register
from repro.analysis.static.lints import MUTATOR_METHODS

__all__ = ["LocksetPass", "LocksetProblem", "class_models", "ClassModel"]

#: Constructors whose result is a mutual-exclusion lock.
LOCK_TYPES = frozenset({"threading.Lock", "threading.RLock"})

#: Constructors whose result synchronizes internally — accessing the
#: attribute needs no external lock.
SYNC_TYPES = LOCK_TYPES | frozenset(
    {
        "threading.Event",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
        "threading.Barrier",
        "queue.Queue",
        "queue.LifoQueue",
        "queue.PriorityQueue",
        "queue.SimpleQueue",
    }
)

#: The solver's TOP: "every lock" (identity of intersection).
TOP = None

Lockset = Optional[FrozenSet[str]]


def _meet(a: Lockset, b: Lockset) -> Lockset:
    if a is TOP:
        return b
    if b is TOP:
        return a
    return a & b


class Access(NamedTuple):
    """One read or write of ``cls.attr`` with the locks held there."""

    cls: str
    attr: str
    node: ast.AST
    is_write: bool
    lockset: Lockset
    method: str


class ClassModel:
    """Everything the detector knows about one class in one file."""

    def __init__(self, node: ast.ClassDef, source: SourceFile) -> None:
        self.node = node
        self.name = node.name
        self.methods: Dict[str, ast.AST] = {}
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[stmt.name] = stmt
        self.lock_attrs: Set[str] = set()
        self.sync_attrs: Set[str] = set()
        self.init_assigned: Set[str] = set()
        self.unlocked_ok: Set[str] = set()
        self._scan_body(source)
        init = self.methods.get("__init__")
        if init is not None:
            self._scan_init(init, source)

    def _scan_body(self, source: SourceFile) -> None:
        is_dataclass = any(
            (source.resolved(dec) or "").split(".")[-1] == "dataclass"
            for dec in self.node.decorator_list
        )
        for stmt in self.node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "_unlocked_ok"
                and isinstance(stmt.value, (ast.Tuple, ast.List))
            ):
                for element in stmt.value.elts:
                    if isinstance(element, ast.Constant) and isinstance(
                        element.value, str
                    ):
                        self.unlocked_ok.add(element.value)
            elif is_dataclass and isinstance(stmt, ast.AnnAssign):
                if isinstance(stmt.target, ast.Name):
                    self.init_assigned.add(stmt.target.id)

    def _scan_init(self, init: ast.AST, source: SourceFile) -> None:
        for node in scoped_walk(init):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                value = node.value
                for t in node.targets:
                    self._record_init_target(t)
                target = node.targets[0] if len(node.targets) == 1 else None
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                self._record_init_target(target)
            elif isinstance(node, ast.AugAssign):
                self._record_init_target(node.target)
                continue
            else:
                continue
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and isinstance(value, ast.Call)
            ):
                ctor = source.resolved(value.func)
                if ctor in LOCK_TYPES:
                    self.lock_attrs.add(target.attr)
                if ctor in SYNC_TYPES:
                    self.sync_attrs.add(target.attr)

    def _record_init_target(self, target: ast.AST) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_init_target(element)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            self.init_assigned.add(target.attr)

    def tracked(self, attr: str) -> bool:
        """Is ``attr`` instance state the detector should follow?"""
        return (
            attr in self.init_assigned
            and attr not in self.sync_attrs
            and attr not in self.unlocked_ok
            and attr not in self.methods
        )


def class_models(source: SourceFile) -> Dict[str, ClassModel]:
    models: Dict[str, ClassModel] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ClassDef):
            models[node.name] = ClassModel(node, source)
    return models


def _module_locks(source: SourceFile) -> Set[str]:
    """Module-level ``NAME = threading.Lock()`` globals."""
    locks: Set[str] = set()
    for stmt in source.tree.body:
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
            and isinstance(stmt.value, ast.Call)
            and source.resolved(stmt.value.func) in LOCK_TYPES
        ):
            locks.add(stmt.targets[0].id)
    return locks


def _creates_threads(source: SourceFile) -> bool:
    for call in source.calls():
        if source.resolved(call.func) == "threading.Thread":
            return True
    return False


def _annotation_class(annotation: Optional[ast.AST]) -> Optional[str]:
    """The plain class name an annotation refers to, if recognizably one.

    Handles ``Foo``, ``"Foo"`` and ``Optional[Foo]``; anything fancier
    returns None (the access simply goes unattributed).
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        text = annotation.value
        for wrapper in ("Optional[", "typing.Optional["):
            if text.startswith(wrapper) and text.endswith("]"):
                text = text[len(wrapper):-1]
        return text if text.isidentifier() else None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Subscript):
        base = annotation.value
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if name == "Optional":
            return _annotation_class(
                annotation.slice
                if not isinstance(annotation.slice, ast.Index)  # py38 compat
                else annotation.slice.value  # pragma: no cover
            )
    return None


def _typed_names(
    method: ast.AST,
    models: Dict[str, ClassModel],
    own: Optional[ClassModel],
) -> Dict[str, str]:
    """Local/parameter name -> same-file class it holds an instance of."""
    typed: Dict[str, str] = {}
    args = method.args
    for arg in (
        list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    ):
        cls = _annotation_class(arg.annotation)
        if cls in models:
            typed[arg.arg] = cls
    for node in scoped_walk(method):
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        func = value.func
        if isinstance(func, ast.Name) and func.id in models:
            typed[target.id] = func.id
        elif (
            own is not None
            and isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and func.attr in own.methods
        ):
            returns = getattr(own.methods[func.attr], "returns", None)
            cls = _annotation_class(returns)
            if cls in models:
                typed[target.id] = cls
    return typed


class LocksetProblem(DataflowProblem):
    """Forward must-analysis: which locks are held before each event."""

    direction = "forward"

    def __init__(
        self,
        entry: Lockset,
        lock_of: "LockResolver",
    ) -> None:
        self._entry = entry
        self._lock_of = lock_of

    def boundary(self) -> Lockset:
        return self._entry if self._entry is not TOP else frozenset()

    def top(self) -> Lockset:
        return TOP

    def meet(self, a: Lockset, b: Lockset) -> Lockset:
        return _meet(a, b)

    def transfer_event(self, value: Lockset, event: Event) -> Lockset:
        if event.kind not in (WITH_ENTER, WITH_EXIT):
            return value
        lock = self._lock_of(event.node.context_expr)
        if lock is None:
            return value
        if value is TOP:
            value = frozenset()
        if event.kind == WITH_ENTER:
            return value | {lock}
        return value - {lock}


class LockResolver:
    """Maps a ``with`` context expression to a lock identity, if any."""

    def __init__(
        self,
        models: Dict[str, ClassModel],
        module_locks: Set[str],
        own_class: Optional[str],
        typed: Dict[str, str],
    ) -> None:
        self.models = models
        self.module_locks = module_locks
        self.own_class = own_class
        self.typed = typed

    def __call__(self, expr: ast.AST) -> Optional[str]:
        if isinstance(expr, ast.Name):
            if expr.id in self.module_locks:
                return f"<module>.{expr.id}"
            return None
        if isinstance(expr, ast.Attribute) and isinstance(
            expr.value, ast.Name
        ):
            owner: Optional[str] = None
            if expr.value.id == "self":
                owner = self.own_class
            else:
                owner = self.typed.get(expr.value.id)
            if owner is not None and owner in self.models:
                if expr.attr in self.models[owner].lock_attrs:
                    return f"{owner}.{expr.attr}"
        return None


class _MethodInfo(NamedTuple):
    cls: ClassModel
    node: ast.AST
    name: str


@register
class LocksetPass(LintPass):
    rule = "lockset"
    severity = "error"
    description = (
        "shared instance attributes (assigned in __init__, written "
        "from worker/handler methods) whose accesses hold no common "
        "lock — an Eraser-style static race; annotate intentional "
        "ones with _unlocked_ok or # repro: allow[lockset]"
    )

    #: Fixpoint iteration cap for private-method entry locksets (the
    #: sets only shrink, so convergence is fast; this is a backstop).
    MAX_ROUNDS = 10

    def run(self, source: SourceFile) -> Iterator[Finding]:
        models = class_models(source)
        if not models:
            return
        threaded = _creates_threads(source)
        relevant = {
            name: model
            for name, model in models.items()
            if model.lock_attrs or threaded
        }
        if not relevant:
            return
        module_locks = _module_locks(source)
        accesses: List[Access] = []
        for model in relevant.values():
            accesses.extend(
                self._class_accesses(source, model, models, module_locks)
            )
        yield from self._judge(source, accesses, models)

    # ------------------------------------------------------------------
    # Per-class analysis
    # ------------------------------------------------------------------

    def _class_accesses(
        self,
        source: SourceFile,
        model: ClassModel,
        models: Dict[str, ClassModel],
        module_locks: Set[str],
    ) -> List[Access]:
        init_context = self._init_context(model)
        thread_targets = self._thread_targets(source, model)
        entries: Dict[str, Lockset] = {}
        for name in model.methods:
            if name in init_context:
                continue
            private = name.startswith("_") and not name.startswith("__")
            if private and name not in thread_targets:
                entries[name] = TOP  # refined from call sites below
            else:
                entries[name] = frozenset()
        cfgs = {
            name: build_cfg(model.methods[name])
            for name in entries
        }
        typed = {
            name: _typed_names(model.methods[name], models, model)
            for name in entries
        }
        resolvers = {
            name: LockResolver(models, module_locks, model.name, typed[name])
            for name in entries
        }
        # Iterate private-method entry locksets to a fixpoint: each
        # round re-solves every method and re-derives helper entries
        # from the locks held at their (resolved) call sites.  Callers
        # still at TOP contribute nothing yet, so values propagate
        # down call chains one round per level and converge.
        refinable = {
            name
            for name in entries
            if name.startswith("_")
            and not name.startswith("__")
            and name not in thread_targets
        }
        for _ in range(self.MAX_ROUNDS):
            callsite_meet: Dict[str, Lockset] = {
                name: TOP for name in entries
            }
            for name in entries:
                if entries[name] is TOP:
                    continue  # unresolved caller: skip this round
                problem = LocksetProblem(entries[name], resolvers[name])
                solution = solve(problem, cfgs[name])
                for _bid, event, value in values_at_events(solution):
                    held = value if value is not TOP else frozenset()
                    for callee in self._event_callees(event, model):
                        if callee in entries:
                            callsite_meet[callee] = _meet(
                                callsite_meet[callee], held
                            )
            changed = False
            for name in refinable:
                new = callsite_meet[name]
                if new is TOP:
                    continue  # no resolved call sites yet
                if entries[name] is TOP or entries[name] != new:
                    entries[name] = new
                    changed = True
            if not changed:
                break
        # Private methods never called from non-init code: assume the
        # worst (no locks) rather than vacuous truth.
        for name in entries:
            if entries[name] is TOP:
                entries[name] = frozenset()
        accesses: List[Access] = []
        for name in entries:
            problem = LocksetProblem(entries[name], resolvers[name])
            solution = solve(problem, cfgs[name])
            for _bid, event, value in values_at_events(solution):
                lockset = value if value is not TOP else frozenset()
                accesses.extend(
                    self._event_accesses(
                        event, model, models, typed[name], lockset, name
                    )
                )
        return accesses

    def _init_context(self, model: ClassModel) -> Set[str]:
        """``__init__`` plus private helpers reachable only from it."""
        callers: Dict[str, Set[str]] = {name: set() for name in model.methods}
        for name, method in model.methods.items():
            for callee in self._method_callees(method, model):
                callers[callee].add(name)
        context: Set[str] = set()
        if "__init__" in model.methods:
            context.add("__init__")
        while True:
            grew = False
            for name in model.methods:
                if name in context or not callers[name]:
                    continue
                if callers[name] <= context:
                    context.add(name)
                    grew = True
            if not grew:
                return context

    def _method_callees(
        self, method: ast.AST, model: ClassModel
    ) -> Set[str]:
        callees: Set[str] = set()
        for node in scoped_walk(method):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "self"
                and node.func.attr in model.methods
            ):
                callees.add(node.func.attr)
        return callees

    def _event_callees(
        self, event: Event, model: ClassModel
    ) -> List[str]:
        callees: List[str] = []
        for root in event_roots(event):
            for node in scoped_walk(root):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in model.methods
                ):
                    callees.append(node.func.attr)
        return callees

    def _thread_targets(
        self, source: SourceFile, model: ClassModel
    ) -> Set[str]:
        """Methods handed to ``Thread(target=...)`` or referenced bare.

        Either way the method can start running with no locks held, so
        its entry lockset is pinned empty.
        """
        targets: Set[str] = set()
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in model.methods
            ):
                parent = getattr(node, "parent", None)
                is_callee = (
                    isinstance(parent, ast.Call) and parent.func is node
                )
                if not is_callee and source.enclosing_class(node) is (
                    model.node
                ):
                    targets.add(node.attr)
        return targets

    # ------------------------------------------------------------------
    # Access extraction
    # ------------------------------------------------------------------

    def _event_accesses(
        self,
        event: Event,
        model: ClassModel,
        models: Dict[str, ClassModel],
        typed: Dict[str, str],
        lockset: FrozenSet[str],
        method: str,
    ) -> List[Access]:
        accesses: List[Access] = []
        write_attrs = self._write_nodes(event)
        for root in event_roots(event):
            if root is None:
                continue
            for node in scoped_walk(root):
                if not isinstance(node, ast.Attribute):
                    continue
                base = node.value
                if not isinstance(base, ast.Name):
                    continue
                owner = (
                    model.name
                    if base.id == "self"
                    else typed.get(base.id)
                )
                if owner is None or owner not in models:
                    continue
                target_model = models[owner]
                if not target_model.tracked(node.attr):
                    continue
                accesses.append(
                    Access(
                        cls=owner,
                        attr=node.attr,
                        node=node,
                        is_write=id(node) in write_attrs,
                        lockset=lockset,
                        method=f"{model.name}.{method}",
                    )
                )
        return accesses

    @staticmethod
    def _write_nodes(event: Event) -> Set[int]:
        """ids of Attribute nodes written by this event.

        Covers plain/augmented/tuple assignment targets, stores
        through a subscript of the attribute, and in-place mutator
        calls (``self.xs.append(...)``).
        """
        writes: Set[int] = set()

        def mark_target(target: ast.AST) -> None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    mark_target(element)
            elif isinstance(target, ast.Starred):
                mark_target(target.value)
            elif isinstance(target, ast.Attribute):
                writes.add(id(target))
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Attribute
            ):
                writes.add(id(target.value))

        for root in event_roots(event):
            if root is None:
                continue
            for node in scoped_walk(root):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        mark_target(target)
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    mark_target(node.target)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr in MUTATOR_METHODS and isinstance(
                        node.func.value, ast.Attribute
                    ):
                        writes.add(id(node.func.value))
        return writes

    # ------------------------------------------------------------------
    # Verdict
    # ------------------------------------------------------------------

    def _judge(
        self,
        source: SourceFile,
        accesses: Sequence[Access],
        models: Dict[str, ClassModel],
    ) -> Iterator[Finding]:
        by_attr: Dict[Tuple[str, str], List[Access]] = {}
        for access in accesses:
            by_attr.setdefault((access.cls, access.attr), []).append(access)
        for (cls, attr), group in sorted(by_attr.items()):
            if not any(a.is_write for a in group):
                continue  # read-only outside __init__: no race
            candidate: Lockset = TOP
            for access in group:
                candidate = _meet(candidate, access.lockset)
            if candidate is TOP or candidate:
                continue  # some lock consistently held
            bare = [a for a in group if not a.lockset]
            bare_writes = [a for a in bare if a.is_write]
            witness = min(
                bare_writes or bare or group,
                key=lambda a: (a.node.lineno, a.node.col_offset),
            )
            held_elsewhere = sorted(
                {lock for a in group for lock in a.lockset}
            )
            methods = sorted({a.method for a in group})
            if held_elsewhere:
                detail = (
                    f"other accesses hold {{{', '.join(held_elsewhere)}}}"
                )
            else:
                detail = "no access holds any lock"
            yield self.finding(
                source,
                witness.node,
                f"shared attribute {cls}.{attr} is "
                f"{'written' if witness.is_write else 'read'} without "
                f"a consistently held lock ({detail}; accessed from "
                f"{', '.join(methods)}); guard every access with one "
                "lock, or declare it in _unlocked_ok",
            )
