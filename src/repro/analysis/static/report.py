"""Text and JSON rendering of analyzer reports (CLI + CI surface)."""

from __future__ import annotations

import json
from typing import Dict

from repro.analysis.static.findings import Report


def render_text(report: Report, *, include_suppressed: bool = False) -> str:
    """Human-readable findings listing plus a one-line summary."""
    lines = []
    for finding in report.findings:
        if finding.suppressed and not include_suppressed:
            continue
        lines.append(finding.row())
    for error in report.errors:
        lines.append(f"error: {error}")
    visible = len(report.unsuppressed)
    suppressed_by_rule: Dict[str, int] = {}
    for finding in report.findings:
        if finding.suppressed:
            suppressed_by_rule[finding.rule] = (
                suppressed_by_rule.get(finding.rule, 0) + 1
            )
    suppressed = sum(suppressed_by_rule.values())
    summary = (
        f"analyze: {report.files_analyzed} file(s), "
        f"{len(report.rules_run)} rule(s), {visible} finding(s)"
    )
    if suppressed:
        detail = ", ".join(
            f"{rule}: {count}"
            for rule, count in sorted(suppressed_by_rule.items())
        )
        summary += f" (+{suppressed} suppressed: {detail})"
    if report.errors:
        summary += f", {len(report.errors)} file error(s)"
    summary += f" in {report.elapsed_s:.3f}s"
    lines.append(summary)
    return "\n".join(lines)


def render_json(report: Report, *, include_suppressed: bool = True) -> str:
    """Machine-readable report (stable key order) for the CI job."""
    payload: Dict = {
        "files_analyzed": report.files_analyzed,
        "rules_run": list(report.rules_run),
        "elapsed_s": round(report.elapsed_s, 4),
        "findings": [
            finding.as_dict()
            for finding in report.findings
            if include_suppressed or not finding.suppressed
        ],
        "errors": list(report.errors),
        "counts_by_rule": report.counts_by_rule(),
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
