"""Finding objects and suppression parsing for the static analyzer.

A :class:`Finding` pins one rule violation to a ``file:line`` location.
Findings are plain data — ordering, severity ranking and rendering all
live here so every pass and reporter agrees on them.

Suppressions are in-source comments::

    something_flagged()  # repro: allow[rule-name]

Placing the comment on the flagged line or on the line directly above
it silences that rule at that location (``allow[*]`` silences every
rule).  Suppressed findings are still *collected* — reporters can show
them with ``--include-suppressed`` and the repo-cleanliness test counts
them — they just don't fail the run.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Tuple

#: Recognised severities, most severe first.
SEVERITIES = ("error", "warning", "info")

#: ``# repro: allow[rule-a,rule-b]`` (whitespace-tolerant).
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_*,\- ]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: repo-relative path of the offending file.
        line: 1-based line number.
        rule: the pass's rule name (kebab-case).
        message: human-readable description of the violation.
        severity: ``"error"``, ``"warning"`` or ``"info"``.
        suppressed: True when a ``# repro: allow[...]`` covers it.
    """

    path: str
    line: int
    rule: str
    message: str
    severity: str = "warning"
    suppressed: bool = False

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(
                f"unknown severity {self.severity!r}; expected one of "
                f"{SEVERITIES}"
            )

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}"

    def sort_key(self) -> Tuple:
        return (
            self.path,
            self.line,
            SEVERITIES.index(self.severity),
            self.rule,
            self.message,
        )

    def row(self) -> str:
        tag = " (suppressed)" if self.suppressed else ""
        return (
            f"{self.location}: {self.severity}: [{self.rule}] "
            f"{self.message}{tag}"
        )

    def as_dict(self) -> Dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity,
            "suppressed": self.suppressed,
        }

    def suppressed_by(self, allows: "Dict[int, FrozenSet[str]]") -> bool:
        """Whether an allow-comment map covers this finding."""
        for line in (self.line, self.line - 1):
            rules = allows.get(line)
            if rules and (self.rule in rules or "*" in rules):
                return True
        return False

    def with_suppressed(self, suppressed: bool) -> "Finding":
        return replace(self, suppressed=suppressed)


def parse_allows(text: str) -> Dict[int, FrozenSet[str]]:
    """Extract ``line -> allowed rules`` from a module's source text."""
    allows: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = frozenset(
                token.strip()
                for token in match.group(1).split(",")
                if token.strip()
            )
            if rules:
                allows[number] = rules
    return allows


@dataclass
class Report:
    """All findings from one analyzer run, plus run metadata.

    ``findings`` is sorted (path, line, severity, rule); the analyzer
    guarantees this so reporters and tests can rely on stable output.
    """

    findings: Tuple[Finding, ...] = ()
    files_analyzed: int = 0
    rules_run: Tuple[str, ...] = ()
    elapsed_s: float = 0.0
    #: Non-fatal file problems (unreadable, syntax error), as rows.
    errors: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def unsuppressed(self) -> Tuple[Finding, ...]:
        return tuple(f for f in self.findings if not f.suppressed)

    @property
    def ok(self) -> bool:
        """Clean run: no unsuppressed findings and no file errors."""
        return not self.unsuppressed and not self.errors

    def counts_by_rule(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.unsuppressed:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts
