"""Path-sensitive lint passes built on the CFG + dataflow engine.

Three rules live here:

* ``span-pairing`` — an unscoped ``tracer.begin()`` handle kept in a
  local must reach ``.end()`` on *every* normal path out of the
  function.  The old heuristic flagged whole modules; this version
  walks the CFG, so a ``return`` between begin and end is caught while
  ``if span is not None: span.end()`` guards are understood (via the
  builder's assume events).  Handles that escape — returned, passed to
  a call, stored into an attribute/subscript/container — transfer
  ownership and are the callee's/owner's responsibility.
* ``swallowed-error`` — an ``except`` over :mod:`repro.errors` types
  (or ``Exception``/bare) whose body cannot re-raise on any path,
  whose bound exception value is dead at handler entry (backward
  liveness over the handler CFG — a rebound-then-logged name still
  counts as dead), and whose reachable statements are all inert
  (``pass``, dead constant stores, bare ``return``).  An explicit
  ``return <value>`` converts the exception into a documented result
  and is treated as handling.
* ``handler-atomicity`` — in protocol process classes, a kernel
  handler (``on_*`` / ``handle_*``) that performs a network/abcast
  send and *then* keeps mutating process state.  A peer can react to
  the sent message before the sender's state settles, so the mutation
  order is a message-reordering hazard; state must be final before
  the send (one-level helper summaries: a ``self._helper()`` that
  sends taints the paths after it, one that mutates is flagged when
  called on a tainted path).

All three accept ``# repro: allow[<rule>]`` on the flagged line.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from repro.analysis.static.cfg import (
    ASSUME,
    Event,
    build_cfg,
    event_roots,
    scoped_walk,
)
from repro.analysis.static.dataflow import (
    DataflowProblem,
    solve,
    values_at_events,
)
from repro.analysis.static.findings import Finding
from repro.analysis.static.framework import LintPass, SourceFile, register
from repro.analysis.static.lints import (
    MUTATOR_METHODS,
    _class_is_process,
    _repro_error_names,
)

__all__ = [
    "HandlerAtomicityPass",
    "SpanPairingPass",
    "SwallowedErrorPass",
]


def _functions(source: SourceFile) -> Iterator[ast.AST]:
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _is_tracer_begin(source: SourceFile, node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "begin"
        and "tracer" in (source.dotted(node.func.value) or "").lower()
    )


# ----------------------------------------------------------------------
# span-pairing
# ----------------------------------------------------------------------


class _OpenSpans(DataflowProblem):
    """Forward may-analysis: locals that may hold an un-ended span."""

    direction = "forward"

    def __init__(self, source: SourceFile) -> None:
        self.source = source

    def boundary(self) -> FrozenSet[str]:
        return frozenset()

    def top(self) -> FrozenSet[str]:
        return frozenset()

    def meet(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer_event(
        self, value: FrozenSet[str], event: Event
    ) -> FrozenSet[str]:
        if event.kind == ASSUME:
            name, state = event.info
            if state in ("none", "falsy") and name in value:
                # On this branch the handle is None: nothing to end.
                return value - {name}
            return value
        opened: Set[str] = set()
        closed: Set[str] = set()
        for root in event_roots(event):
            for node in scoped_walk(root):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    target = node.targets[0].id
                    if _is_tracer_begin(self.source, node.value):
                        opened.add(target)
                    else:
                        closed.add(target)  # rebound: old value gone
                        if isinstance(node.value, ast.Name):
                            # Aliasing: the new name owns the span now
                            # and this CFG can't track both; trust the
                            # alias to end it.
                            closed.add(node.value.id)
                elif isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr == "end" and isinstance(
                        node.func.value, ast.Name
                    ):
                        closed.add(node.func.value.id)
                closed.update(self._escapes(node))
        return (value - frozenset(closed)) | frozenset(opened)

    @staticmethod
    def _escapes(node: ast.AST) -> Set[str]:
        """Names whose span (if any) escapes this expression.

        Returning, yielding, passing as an argument, storing into an
        attribute/subscript or container literal all hand the handle
        to code this CFG cannot see; pairing becomes its problem.
        """
        out: Set[str] = set()

        def name_of(expr: ast.AST) -> Optional[str]:
            return expr.id if isinstance(expr, ast.Name) else None

        if isinstance(node, (ast.Return, ast.Yield)):
            name = name_of(node.value) if node.value else None
            if name:
                out.add(name)
        elif isinstance(node, ast.Call):
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                name = name_of(arg)
                if name:
                    out.add(name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    name = name_of(node.value)
                    if name:
                        out.add(name)
        elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                name = name_of(element)
                if name:
                    out.add(name)
        elif isinstance(node, ast.Dict):
            for element in node.values:
                name = name_of(element)
                if name:
                    out.add(name)
        return out


@register
class SpanPairingPass(LintPass):
    rule = "span-pairing"
    severity = "warning"
    description = (
        "an unscoped tracer.begin() span kept in a local must reach "
        ".end() on every normal path out of the function; escaping "
        "handles (returned/stored/passed on) transfer ownership"
    )

    def run(self, source: SourceFile) -> Iterator[Finding]:
        # Discarded handles are wrong in any context, module level
        # included — nothing can ever end them.
        for call in source.calls():
            if _is_tracer_begin(source, call) and isinstance(
                getattr(call, "parent", None), ast.Expr
            ):
                yield self.finding(
                    source,
                    call,
                    "span handle from tracer.begin() is discarded; "
                    "it can never be ended",
                )
        for func in _functions(source):
            yield from self._check_function(source, func)

    def _check_function(
        self, source: SourceFile, func: ast.AST
    ) -> Iterator[Finding]:
        begins: Dict[str, ast.Call] = {}
        for node in scoped_walk(func):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and _is_tracer_begin(source, node.value)
            ):
                begins.setdefault(node.targets[0].id, node.value)
        if not begins:
            return
        cfg = build_cfg(func)
        solution = solve(_OpenSpans(source), cfg)
        # Exceptional exits are excused: a span leaking on a crash
        # path is the least of the trace's problems.  Normal exits
        # (fall-through and returns) must have ended every handle.
        leaked = solution.value_in[cfg.exit]
        for name in sorted(leaked):
            if name in begins:
                yield self.finding(
                    source,
                    begins[name],
                    f"span {name!r} from tracer.begin() is not "
                    ".end()-ed on some path to the function exit",
                )


# ----------------------------------------------------------------------
# swallowed-error
# ----------------------------------------------------------------------


class _Liveness(DataflowProblem):
    """Backward may-analysis: names whose current value may be read."""

    direction = "backward"

    def boundary(self) -> FrozenSet[str]:
        return frozenset()

    def top(self) -> FrozenSet[str]:
        return frozenset()

    def meet(self, a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
        return a | b

    def transfer_event(
        self, value: FrozenSet[str], event: Event
    ) -> FrozenSet[str]:
        uses: Set[str] = set()
        defs: Set[str] = set()
        for root in event_roots(event):
            for node in scoped_walk(root):
                if isinstance(node, ast.Name):
                    if isinstance(node.ctx, ast.Load):
                        uses.add(node.id)
                    elif isinstance(node.ctx, ast.Store):
                        defs.add(node.id)
                elif isinstance(node, ast.Raise) and node.exc is None:
                    # A bare re-raise implicitly reads the in-flight
                    # exception object.
                    uses.add("<reraise>")
        return (value - frozenset(defs)) | frozenset(uses)


class _HandlerBody:
    """Adapter giving an except-handler body to :func:`build_cfg`."""

    def __init__(self, body: List[ast.stmt]) -> None:
        self.body = body


@register
class SwallowedErrorPass(LintPass):
    rule = "swallowed-error"
    severity = "error"
    description = (
        "except blocks over repro.errors (or Exception/bare) whose "
        "body cannot re-raise on any path, never reads the bound "
        "exception, and does nothing but inert statements hide "
        "protocol violations"
    )

    #: Computed once; repro.errors has no import-time side effects.
    _swallowable = None

    def run(self, source: SourceFile) -> Iterator[Finding]:
        if SwallowedErrorPass._swallowable is None:
            SwallowedErrorPass._swallowable = _repro_error_names() | {
                "Exception",
                "BaseException",
            }
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._swallowable_label(source, node)
            if label is None:
                continue
            if not self._swallows(node):
                continue
            yield self.finding(
                source,
                node,
                f"except block swallows {label}: no path re-raises, "
                "the exception value is dead, and the body has no "
                "effect",
            )

    @classmethod
    def _swallowable_label(
        cls, source: SourceFile, node: ast.ExceptHandler
    ) -> Optional[str]:
        if node.type is None:
            return "everything (bare except)"
        types = (
            node.type.elts
            if isinstance(node.type, ast.Tuple)
            else [node.type]
        )
        for type_node in types:
            dotted = source.dotted(type_node) or ""
            name = dotted.split(".")[-1] or dotted
            if name in cls._swallowable:
                return name
        return None

    def _swallows(self, handler: ast.ExceptHandler) -> bool:
        # Any raise anywhere in the body (re-raise or transform) is
        # handling; so is any statement with real effect.
        for stmt in handler.body:
            for node in scoped_walk(stmt):
                if isinstance(node, ast.Raise):
                    return False
        for stmt in self._reachable_statements(handler.body):
            if not self._inert(stmt):
                return False
        if handler.name is not None:
            cfg = build_cfg(_HandlerBody(handler.body))
            solution = solve(_Liveness(), cfg)
            # Liveness at handler entry: does any path read the bound
            # name before (re)defining it?
            if handler.name in solution.value_out[cfg.entry]:
                return False
        return True

    @staticmethod
    def _reachable_statements(body: List[ast.stmt]) -> Iterator[ast.AST]:
        cfg = build_cfg(_HandlerBody(body))
        reachable = set(cfg.reachable())
        for block_id, event in cfg.events():
            if block_id in reachable and event.kind != ASSUME:
                yield event.node

    @staticmethod
    def _inert(node: ast.AST) -> bool:
        """Statements that observably do nothing with the exception.

        ``return <value>`` is *not* inert — converting the exception
        into an explicit result (even ``return None``) is a documented
        handling strategy; a bare ``return`` just aborts silently.
        """
        if isinstance(node, (ast.Pass, ast.Continue, ast.Break)):
            return True
        if isinstance(node, ast.Return):
            return node.value is None
        if isinstance(node, ast.Expr) and isinstance(
            node.value, ast.Constant
        ):
            return True  # docstring / ellipsis
        if isinstance(node, ast.Assign) and isinstance(
            node.value, ast.Constant
        ):
            return all(
                isinstance(target, ast.Name) for target in node.targets
            )
        if isinstance(node, ast.Delete):
            return all(
                isinstance(target, ast.Name) for target in node.targets
            )
        # Branch tests and loop headers decide *which* inert path
        # runs; they have no effect of their own unless they call out.
        if isinstance(node, ast.expr):
            return not any(
                isinstance(sub, ast.Call) for sub in scoped_walk(node)
            )
        return False


# ----------------------------------------------------------------------
# handler-atomicity
# ----------------------------------------------------------------------

#: Methods whose call puts a message on the (simulated) wire.
SEND_METHODS = frozenset({"send", "send_to_all", "broadcast"})

#: Receiver chains that reach the network/abcast service objects.
SEND_RECEIVERS = ("network", "abcast")


def _is_send_call(source: SourceFile, node: ast.AST) -> bool:
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in SEND_METHODS
    ):
        return False
    dotted = source.dotted(node.func.value) or ""
    tail = dotted.split(".")[-1]
    return tail in SEND_RECEIVERS


class _SendTaint(DataflowProblem):
    """Forward may-analysis: has a send possibly happened yet?"""

    direction = "forward"

    def __init__(self, source: SourceFile, senders: Set[str]) -> None:
        self.source = source
        self.senders = senders

    def boundary(self) -> bool:
        return False

    def top(self) -> bool:
        return False

    def meet(self, a: bool, b: bool) -> bool:
        return a or b

    def transfer_event(self, value: bool, event: Event) -> bool:
        if value:
            return True
        for root in event_roots(event):
            for node in scoped_walk(root):
                if _is_send_call(self.source, node):
                    return True
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in self.senders
                ):
                    return True
        return value


@register
class HandlerAtomicityPass(LintPass):
    rule = "handler-atomicity"
    severity = "warning"
    description = (
        "a protocol handler that sends on the network/abcast and then "
        "keeps mutating process state lets a peer react before the "
        "sender's state settles; finish the mutation before the send"
    )

    def run(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and _class_is_process(node):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = {
            stmt.name: stmt
            for stmt in cls.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        senders = {
            name
            for name, method in methods.items()
            if any(
                _is_send_call(source, node)
                for node in scoped_walk(method)
            )
        }
        mutators = {
            name
            for name, method in methods.items()
            if name != "__init__"
            and self._mutates_self(method)
        }
        for name, method in methods.items():
            if not (name.startswith("on_") or name.startswith("handle_")):
                continue
            finding = self._check_handler(
                source, method, senders, mutators
            )
            if finding is not None:
                yield finding

    def _check_handler(
        self,
        source: SourceFile,
        method: ast.AST,
        senders: Set[str],
        mutators: Set[str],
    ) -> Optional[Finding]:
        cfg = build_cfg(method)
        solution = solve(_SendTaint(source, senders), cfg)
        hits: List[Tuple[int, int, ast.AST, str]] = []
        for _bid, event, sent in values_at_events(solution):
            if not sent:
                continue
            mutated = self._event_mutation(event)
            if mutated is not None:
                node, attr = mutated
                hits.append(
                    (
                        node.lineno,
                        node.col_offset,
                        node,
                        f"mutates self.{attr}",
                    )
                )
                continue
            helper = self._helper_mutator_call(event, mutators)
            if helper is not None:
                node, name = helper
                hits.append(
                    (
                        node.lineno,
                        node.col_offset,
                        node,
                        f"calls state-mutating helper self.{name}()",
                    )
                )
        if not hits:
            return None
        _line, _col, node, what = min(hits, key=lambda h: (h[0], h[1]))
        return self.finding(
            source,
            node,
            f"handler {method.name}() {what} after a network/abcast "
            "send may already have reached a peer; move the state "
            "change before the send",
        )

    def _mutates_self(self, method: ast.AST) -> bool:
        return any(
            self._node_mutation(node) is not None
            for node in scoped_walk(method)
        )

    def _event_mutation(
        self, event: Event
    ) -> Optional[Tuple[ast.AST, str]]:
        for root in event_roots(event):
            for node in scoped_walk(root):
                hit = self._node_mutation(node)
                if hit is not None:
                    return hit
        return None

    @staticmethod
    def _node_mutation(node: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        """(node, attr) when this node writes ``self.attr`` state."""

        def self_attr(expr: ast.AST) -> Optional[str]:
            if isinstance(expr, ast.Subscript):
                expr = expr.value
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
            ):
                return expr.attr
            return None

        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                attr = self_attr(target)
                if attr is not None:
                    return node, attr
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in MUTATOR_METHODS:
                attr = self_attr(node.func.value)
                if attr is not None:
                    return node, attr
        return None

    @staticmethod
    def _helper_mutator_call(
        event: Event, mutators: Set[str]
    ) -> Optional[Tuple[ast.AST, str]]:
        for root in event_roots(event):
            for node in scoped_walk(root):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in mutators
                ):
                    return node, node.func.attr
        return None
