"""Workload constraint prover: static OO-/WW-/WO-certificates.

Theorem 7 makes verification polynomial *when the history satisfies
the OO- or WW-constraint* (D 4.8/4.9) — but the checker pipeline
discovers that dynamically, per history, by scanning the transitive
closure.  This module proves it **up front**, from the workload alone:

* a workload in which no program may write produces no conflicting
  pairs among client m-operations (D 4.1 needs a write), so the
  OO-constraint holds vacuously — rule ``read-only``;
* a workload in which at most one process issues updates has all its
  updates totally ordered by process order (and the initial
  m-operation precedes everything), so the WW-constraint (D 4.9)
  holds under any of the paper's base orders — rule
  ``single-updater``;
* a workload whose objects are statically partitioned across
  processes (each object accessed by one process only) confines every
  conflict to a single process, so the OO-constraint holds — rule
  ``object-partitioned``;
* a workload driven through a protocol that routes **every** update
  through atomic broadcast (the Fig-4/Fig-6 protocols) and whose
  delivery chain is fed back to the checker as ``extra_pairs`` (the
  ``~ww`` order, D 5.3) is WW-constrained by construction — rule
  ``total-update-order``;
* disjoint per-process *write* sets alone certify only the weaker
  WO-constraint (D 4.10) — recorded for diagnostics, but WO does not
  unlock Theorem 7, so the checker ignores it — rule
  ``disjoint-writers``.

A successful proof is a :class:`ConstraintCertificate`.  The checker
(:func:`repro.core.consistency.check_condition` with
``certificate=``) audits it in O(n) against the concrete history —
never computing the quadratic closure scan of
:func:`repro.core.constraints.satisfies_ww` /
:func:`~repro.core.constraints.satisfies_oo` — and then jumps
straight to the Theorem-7 legality path.  When no rule applies the
prover raises :class:`~repro.errors.CertificationRefused`; refusal
means "fall back to the dynamic phase", not "the constraint fails".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.core.history import History
from repro.core.operation import MOperation, read, write
from repro.errors import CertificationRefused, InvalidCertificate

#: Protocols whose update path is atomic broadcast for *every* update
#: m-operation (Fig-4 m-SC and Fig-6 m-lin), so ``RunResult.ww_pairs()``
#: chains the full update set.
TOTAL_ORDER_PROTOCOLS = ("msc", "mlin")

#: Constraint names a certificate can claim.
CONSTRAINTS = ("ww", "oo", "wo")

#: Constraints that unlock the Theorem-7 legality-only path.
THEOREM7_CONSTRAINTS = ("ww", "oo")


@dataclass(frozen=True)
class ProgramProfile:
    """The statically known footprint of one m-operation program.

    Built from :class:`~repro.protocols.store.MProgram` metadata: the
    conservative update classification (Section 5's ``may_write``) and
    the declared ``static_objects`` set (``None`` when the program did
    not declare one — the prover treats that as "may touch anything").
    """

    name: str
    may_write: bool
    objects: Optional[FrozenSet[str]] = None

    @classmethod
    def of(cls, program) -> "ProgramProfile":
        return cls(
            name=program.name,
            may_write=program.may_write,
            objects=program.static_objects,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """A declarative workload: per-process program profiles + sync mode.

    ``sync="total-update-order"`` records the caller's promise that the
    run's total update delivery order will be passed to the checker as
    ``extra_pairs`` (how every abcast protocol run is verified); the
    resulting certificate *requires* that chain to be bound before use.
    """

    processes: Tuple[Tuple[ProgramProfile, ...], ...]
    sync: str = "none"

    @classmethod
    def of_workloads(
        cls, workloads: Sequence[Sequence], *, sync: str = "none"
    ) -> "WorkloadSpec":
        return cls(
            processes=tuple(
                tuple(ProgramProfile.of(p) for p in programs)
                for programs in workloads
            ),
            sync=sync,
        )

    @property
    def profiles(self) -> Tuple[ProgramProfile, ...]:
        return tuple(p for seq in self.processes for p in seq)

    def updater_processes(self) -> Tuple[int, ...]:
        """Processes with at least one update program."""
        return tuple(
            pid
            for pid, seq in enumerate(self.processes)
            if any(p.may_write for p in seq)
        )

    def footprints_known(self) -> bool:
        return all(p.objects is not None for p in self.profiles)

    def objects_by_process(self) -> List[Set[str]]:
        out: List[Set[str]] = []
        for seq in self.processes:
            touched: Set[str] = set()
            for profile in seq:
                touched |= profile.objects or set()
            out.append(touched)
        return out

    def write_objects_by_process(self) -> List[Set[str]]:
        out: List[Set[str]] = []
        for seq in self.processes:
            touched: Set[str] = set()
            for profile in seq:
                if profile.may_write:
                    touched |= profile.objects or set()
            out.append(touched)
        return out


@dataclass(frozen=True)
class ConstraintCertificate:
    """A static proof that every emitted history is constrained.

    Attributes:
        constraint: ``"ww"``, ``"oo"`` or ``"wo"`` (D 4.9/4.8/4.10).
        rule: the prover rule that fired (see module docstring).
        reason: human-readable justification.
        assumptions: model facts the proof leans on (sequential
            clients, abcast total order, ...), for the record.
        chain: for ``total-update-order`` certificates, the update
            delivery sequence whose consecutive pairs the caller feeds
            to the checker as ``extra_pairs``.  Bound post-run via
            :meth:`with_chain`.
    """

    constraint: str
    rule: str
    reason: str
    assumptions: Tuple[str, ...] = ()
    chain: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.constraint not in CONSTRAINTS:
            raise InvalidCertificate(
                f"unknown constraint {self.constraint!r}; expected one "
                f"of {CONSTRAINTS}"
            )

    @property
    def unlocks_theorem7(self) -> bool:
        return self.constraint in THEOREM7_CONSTRAINTS

    @property
    def requires_chain(self) -> bool:
        return self.rule == "total-update-order"

    def with_chain(
        self, sequence: Iterable[int]
    ) -> "ConstraintCertificate":
        """Bind the concrete delivery chain (e.g. ``result.ww_sequence``)."""
        return replace(self, chain=tuple(sequence))

    # ------------------------------------------------------------------
    # O(n) structural audit — the checker's trust-but-verify step
    # ------------------------------------------------------------------

    def audit(
        self,
        history: History,
        extra_pairs: Iterable[Tuple[int, int]] = (),
    ) -> Optional[str]:
        """Check the certificate against a concrete history in O(n).

        Returns None when the history structurally matches the
        certified workload shape, else a failure message.  This never
        computes a transitive closure — that is the point.
        """
        from repro.core.index import HistoryIndex

        # (uid, process) of non-init updates — cached on the shared
        # index, so repeated certified checks pay the scan once.
        updates = HistoryIndex.of(history).client_updates
        if self.rule == "read-only":
            if updates:
                return (
                    f"certified read-only but history has "
                    f"{len(updates)} update m-operation(s)"
                )
            return None
        if self.rule == "single-updater":
            owners = {process for _uid, process in updates}
            if len(owners) > 1:
                return (
                    "certified single-updater but updates span "
                    f"processes {sorted(owners)}"
                )
            return None
        if self.rule == "object-partitioned":
            owner: Dict[str, int] = {}
            for mop in history.mops:
                for obj in mop.objects:
                    previous = owner.setdefault(obj, mop.process)
                    if previous != mop.process:
                        return (
                            f"certified object-partitioned but object "
                            f"{obj!r} is accessed by P{previous} and "
                            f"P{mop.process}"
                        )
            return None
        if self.rule == "total-update-order":
            if self.chain is None:
                return (
                    "total-update-order certificate used without a "
                    "bound delivery chain; call .with_chain(...)"
                )
            chain_set = set(self.chain)
            if len(chain_set) != len(self.chain):
                return "delivery chain contains duplicate uids"
            missing = [
                uid for uid, _process in updates if uid not in chain_set
            ]
            if missing:
                return (
                    f"updates {missing} never appeared in the "
                    "certified delivery chain"
                )
            supplied = set(extra_pairs)
            absent = [
                (a, b)
                for a, b in zip(self.chain, self.chain[1:])
                if (a, b) not in supplied
            ]
            if absent:
                return (
                    f"chain edges {absent[:3]}{'...' if len(absent) > 3 else ''} "
                    "were not passed to the checker as extra_pairs"
                )
            return None
        if self.rule == "disjoint-writers":
            owner_w: Dict[str, int] = {}
            init_uid = history.init.uid
            for mop in history.mops:
                if not mop.is_update or mop.uid == init_uid:
                    continue
                for obj in mop.wobjects:
                    previous = owner_w.setdefault(obj, mop.process)
                    if previous != mop.process:
                        return (
                            f"certified disjoint-writers but object "
                            f"{obj!r} is written by P{previous} and "
                            f"P{mop.process}"
                        )
            return None
        return f"unknown certificate rule {self.rule!r}"

    def as_dict(self) -> Dict:
        return {
            "constraint": self.constraint,
            "rule": self.rule,
            "reason": self.reason,
            "assumptions": list(self.assumptions),
            "chain_length": len(self.chain) if self.chain else 0,
        }


#: Model facts every certificate relies on; see protocols/base.py —
#: clients are sequential (well-formedness, Section 2.2) and the
#: initial m-operation precedes everything (init_order).
_BASE_ASSUMPTIONS = (
    "sequential-clients",
    "init-precedes-all",
)


def certify_spec(spec: WorkloadSpec) -> ConstraintCertificate:
    """Prove a workload spec OO-/WW-constrained, or refuse.

    Rules are tried strongest-first: a structural proof that needs no
    synchronization pairs beats one that does.
    """
    updaters = spec.updater_processes()
    if not updaters:
        return ConstraintCertificate(
            constraint="oo",
            rule="read-only",
            reason=(
                "no program may write, so no pair of client "
                "m-operations conflicts (D 4.1 requires a write); "
                "conflicts with the initial m-operation are ordered "
                "by the init fan-out"
            ),
            assumptions=_BASE_ASSUMPTIONS,
        )
    if len(updaters) == 1:
        return ConstraintCertificate(
            constraint="ww",
            rule="single-updater",
            reason=(
                f"only P{updaters[0]} issues updates; its updates are "
                "totally ordered by process order and the initial "
                "m-operation precedes them all, so every update pair "
                "is ordered (D 4.9)"
            ),
            assumptions=_BASE_ASSUMPTIONS,
        )
    if spec.footprints_known():
        per_process = spec.objects_by_process()
        clashes = _shared_objects(per_process)
        if not clashes:
            return ConstraintCertificate(
                constraint="oo",
                rule="object-partitioned",
                reason=(
                    "every object is accessed by a single process, so "
                    "conflicting m-operations share a process and are "
                    "ordered by process order (D 4.8)"
                ),
                assumptions=_BASE_ASSUMPTIONS,
            )
    if spec.sync == "total-update-order":
        return ConstraintCertificate(
            constraint="ww",
            rule="total-update-order",
            reason=(
                "every update is atomically broadcast and the "
                "delivery chain is fed to the checker as extra_pairs "
                "(the ~ww order, D 5.3), totally ordering all update "
                "pairs (D 4.9)"
            ),
            assumptions=_BASE_ASSUMPTIONS + ("abcast-total-order",),
        )
    if spec.footprints_known():
        write_sets = spec.write_objects_by_process()
        if not _shared_objects(write_sets):
            return ConstraintCertificate(
                constraint="wo",
                rule="disjoint-writers",
                reason=(
                    "per-process write sets are disjoint, so updates "
                    "writing a common object share a process (D 4.10); "
                    "note WO alone does not unlock Theorem 7"
                ),
                assumptions=_BASE_ASSUMPTIONS,
            )
        raise CertificationRefused(
            "multiple processes update overlapping objects with no "
            "total synchronization order; emitted histories can "
            "contain unordered update pairs"
        )
    raise CertificationRefused(
        "multiple processes issue updates, at least one program has "
        "no declared static_objects footprint, and no total "
        "synchronization order was promised"
    )


def _shared_objects(per_process: List[Set[str]]) -> Set[str]:
    seen: Dict[str, int] = {}
    clashes: Set[str] = set()
    for pid, objs in enumerate(per_process):
        for obj in objs:
            if obj in seen and seen[obj] != pid:
                clashes.add(obj)
            seen.setdefault(obj, pid)
    return clashes


def certify_workloads(
    workloads: Sequence[Sequence],
    *,
    protocol: Optional[str] = None,
) -> ConstraintCertificate:
    """Certify concrete :class:`~repro.protocols.store.MProgram` lists.

    ``protocol`` names the cluster the workload will run on; for the
    total-order protocols (``"msc"``, ``"mlin"``) the prover may fall
    back to the ``total-update-order`` rule, whose certificate must be
    bound to the run's ``ww_sequence`` afterwards (or obtained
    directly via :func:`certify_run`).
    """
    sync = (
        "total-update-order"
        if protocol in TOTAL_ORDER_PROTOCOLS
        else "none"
    )
    return certify_spec(WorkloadSpec.of_workloads(workloads, sync=sync))


def certify_run(result) -> ConstraintCertificate:
    """Certify a finished protocol run from its recorded ``~ww`` chain.

    Structural, closure-free: checks (in O(n)) that every update
    m-operation the run recorded appears in the atomic-broadcast
    delivery sequence, then emits a bound ``total-update-order``
    certificate.  Use with
    ``check_condition(..., extra_pairs=result.ww_pairs(),
    certificate=cert)``.
    """
    delivered = set(result.ww_sequence)
    missing = [
        rec.uid
        for rec in result.recorder.records
        if rec.is_update and rec.uid not in delivered
    ]
    if missing:
        raise CertificationRefused(
            f"updates {missing} were not atomically broadcast; the "
            "run's ~ww chain does not cover the update set"
        )
    return ConstraintCertificate(
        constraint="ww",
        rule="total-update-order",
        reason=(
            "every recorded update appears in the atomic-broadcast "
            "delivery sequence; its consecutive pairs (~ww, D 5.3) "
            "totally order the updates (D 4.9)"
        ),
        assumptions=_BASE_ASSUMPTIONS + ("abcast-total-order",),
        chain=tuple(result.ww_sequence),
    )


def certify_chain(
    history: History, chain: Sequence[int]
) -> ConstraintCertificate:
    """Certify an explicit total update chain over a history.

    For hand-built artifacts like Figure 2, where the WW
    synchronization edges are part of the construction: verifies in
    O(n) that the chain covers every update m-operation and emits the
    bound certificate.  The caller must pass the chain's consecutive
    pairs to the checker as ``extra_pairs``.
    """
    cert = ConstraintCertificate(
        constraint="ww",
        rule="total-update-order",
        reason=(
            "explicit WW synchronization chain covering every update "
            "m-operation (D 4.9)"
        ),
        assumptions=_BASE_ASSUMPTIONS,
        chain=tuple(chain),
    )
    pairs = list(zip(cert.chain, cert.chain[1:]))
    failure = cert.audit(history, pairs)
    if failure is not None:
        raise CertificationRefused(failure)
    return cert


def certify_partitioned_history(history: History) -> ConstraintCertificate:
    """Certify a concrete history as object-partitioned, post hoc.

    One O(n) ownership scan: every object must be touched by a single
    process, which confines every conflicting pair to one process
    chain (D 4.8) — the shape the sharded verification plan
    (:mod:`repro.core.plan`) decomposes along.  Unlike
    :func:`certify_spec` this certifies *one history*, not a workload;
    the checker's trust-but-verify audit re-runs the same scan before
    relying on it.
    """
    owner: Dict[str, int] = {}
    for mop in history.mops:
        for obj in mop.objects:
            previous = owner.setdefault(obj, mop.process)
            if previous != mop.process:
                raise CertificationRefused(
                    f"object {obj!r} is accessed by P{previous} and "
                    f"P{mop.process}; the history is not "
                    "object-partitioned"
                )
    return ConstraintCertificate(
        constraint="oo",
        rule="object-partitioned",
        reason=(
            "every object in the concrete history is accessed by a "
            "single process, so conflicting m-operations share a "
            "process and are ordered by process order (D 4.8)"
        ),
        assumptions=_BASE_ASSUMPTIONS,
    )


def certify_history(history: History) -> ConstraintCertificate:
    """Best-effort post-hoc certification of a raw history.

    For checking saved histories (``python -m repro check --mode
    sharded|windowed``) where no workload spec or run record exists:
    tries the structural rules strongest-first — ``read-only``,
    ``single-updater``, then ``object-partitioned`` — and raises
    :class:`~repro.errors.CertificationRefused` when none applies.
    Each rule mirrors its :func:`certify_spec` counterpart, evaluated
    on the concrete m-operations instead of program profiles.
    """
    init_uid = history.init.uid
    updaters = sorted(
        {
            m.process
            for m in history.mops
            if m.is_update and m.uid != init_uid
        }
    )
    if not updaters:
        return ConstraintCertificate(
            constraint="oo",
            rule="read-only",
            reason=(
                "the history contains no client update m-operation, so "
                "no pair of client m-operations conflicts (D 4.1 "
                "requires a write)"
            ),
            assumptions=_BASE_ASSUMPTIONS,
        )
    if len(updaters) == 1:
        return ConstraintCertificate(
            constraint="ww",
            rule="single-updater",
            reason=(
                f"only P{updaters[0]} issues updates in this history; "
                "its updates are totally ordered by process order and "
                "the initial m-operation precedes them all (D 4.9)"
            ),
            assumptions=_BASE_ASSUMPTIONS,
        )
    return certify_partitioned_history(history)


# ----------------------------------------------------------------------
# Spec-conforming history sampling (cross-validation support)
# ----------------------------------------------------------------------


@dataclass
class SampledRun:
    """A history drawn from a spec, plus its synchronization chain.

    ``extra_pairs`` is what the spec's sync mode obliges the checker
    to receive: the consecutive pairs of the update generation order
    under ``total-update-order``, empty otherwise.
    """

    history: History
    chain: Tuple[int, ...] = ()
    extra_pairs: Tuple[Tuple[int, int], ...] = field(default=())


def sample_history(
    spec: WorkloadSpec, *, seed: int = 0, objects: Sequence[str] = ()
) -> SampledRun:
    """Generate a random concrete history conforming to ``spec``.

    The adversarial interpretation of each profile: update programs
    **blind-write** all their declared objects (reads would add
    reads-from edges that order updates for free, masking constraint
    violations), query programs read all of them — the worst case for
    constraint satisfaction, so a certificate validated against these
    samples holds a fortiori for programs inducing more order.
    Profiles with unknown footprints draw 1-2 objects from
    ``objects``.

    Interleaving across processes is random (seeded), intervals are
    serial in generation order; process subhistories stay sequential,
    write values are globally unique (unambiguous reads-from).
    """
    rng = random.Random(seed)
    universe = list(objects)
    if not universe:
        for profile in spec.profiles:
            universe.extend(profile.objects or ())
        universe = sorted(set(universe)) or ["x"]
    store: Dict[str, int] = {obj: 0 for obj in universe}
    queues = [list(seq) for seq in spec.processes]
    mops: List[MOperation] = []
    chain: List[int] = []
    value = 0
    clock = 0.0
    uid = 0
    while any(queues):
        pid = rng.choice([p for p, q in enumerate(queues) if q])
        profile = queues[pid].pop(0)
        uid += 1
        touched = sorted(
            profile.objects
            if profile.objects is not None
            else rng.sample(universe, k=min(2, len(universe)))
        )
        if profile.may_write:
            ops = []
            for obj in touched:
                value += 1
                ops.append(write(obj, value))
                store[obj] = value
            chain.append(uid)
        else:
            ops = [read(obj, store[obj]) for obj in touched]
        inv = clock + 0.25
        resp = inv + 0.5
        clock = resp
        mops.append(
            MOperation(
                uid=uid,
                process=pid,
                ops=tuple(ops),
                inv=inv,
                resp=resp,
                name=profile.name or f"m{uid}",
            )
        )
    history = History.from_mops(mops)
    pairs = (
        tuple(zip(chain, chain[1:]))
        if spec.sync == "total-update-order"
        else ()
    )
    return SampledRun(
        history=history, chain=tuple(chain), extra_pairs=pairs
    )
