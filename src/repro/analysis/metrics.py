"""Response-time and message-cost metrics (S19, experiments A1-A3).

The paper argues its protocols' costs analytically, in the style of
the Attiya-Welch analysis it cites: m-SC queries are local, m-lin
queries pay one round trip, updates pay the atomic-broadcast latency
under both.  These helpers turn protocol :class:`RunResult` objects
into comparable summaries so the benchmarks can report those shapes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.index import HistoryIndex, IndexStats
from repro.protocols.base import RunResult


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency sample.

    Attributes:
        count: sample size.
        mean: arithmetic mean.
        p50: median.
        p95: 95th percentile (nearest-rank).
        maximum: largest observation.
    """

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float

    @classmethod
    def of(cls, sample: Sequence[float]) -> "LatencySummary":
        """Summarise a (possibly empty) latency sample."""
        if not sample:
            return cls(0, math.nan, math.nan, math.nan, math.nan)
        ordered = sorted(sample)
        n = len(ordered)

        def rank(q: float) -> float:
            return ordered[min(n - 1, max(0, math.ceil(q * n) - 1))]

        return cls(
            count=n,
            mean=sum(ordered) / n,
            p50=rank(0.50),
            p95=rank(0.95),
            maximum=ordered[-1],
        )

    def __str__(self) -> str:
        if self.count == 0:
            return "n=0"
        return (
            f"n={self.count} mean={self.mean:.3f} p50={self.p50:.3f} "
            f"p95={self.p95:.3f} max={self.maximum:.3f}"
        )


@dataclass(frozen=True)
class ProtocolMetrics:
    """One protocol run, reduced to the numbers the paper argues about.

    Attributes:
        label: protocol name for report rows.
        query_latency: response-time summary over query m-operations.
        update_latency: over update m-operations.
        duration: virtual makespan of the run.
        messages: total network messages sent.
        message_size: total estimated payload units sent.
        messages_by_kind: per message-kind counts.
        throughput: completed m-operations per virtual time unit.
    """

    label: str
    query_latency: LatencySummary
    update_latency: LatencySummary
    duration: float
    messages: int
    message_size: int
    messages_by_kind: Dict[str, int]
    throughput: float
    #: structural summary of the recorded history, shared with the
    #: checkers via the history's :class:`HistoryIndex`.
    complexity: Optional[IndexStats] = None

    @classmethod
    def of(cls, label: str, result: RunResult) -> "ProtocolMetrics":
        """Extract metrics from a completed run."""
        completed = len(result.recorder.records)
        duration = max(result.duration, 1e-12)
        return cls(
            label=label,
            query_latency=LatencySummary.of(result.latencies(updates=False)),
            update_latency=LatencySummary.of(result.latencies(updates=True)),
            duration=result.duration,
            messages=result.net_stats.sent,
            message_size=result.net_stats.total_size,
            messages_by_kind=dict(result.net_stats.by_kind),
            throughput=completed / duration,
            complexity=HistoryIndex.of(result.history).stats(),
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe dict rendering (the CLI ``--metrics`` payload)."""

        def latency(summary: LatencySummary) -> Dict[str, float]:
            return {
                "count": summary.count,
                "mean": summary.mean,
                "p50": summary.p50,
                "p95": summary.p95,
                "max": summary.maximum,
            }

        return {
            "label": self.label,
            "query_latency": latency(self.query_latency),
            "update_latency": latency(self.update_latency),
            "duration": self.duration,
            "messages": self.messages,
            "message_size": self.message_size,
            "messages_by_kind": dict(self.messages_by_kind),
            "throughput": self.throughput,
        }

    def row(self) -> str:
        """One formatted report row (used by benchmark printouts)."""
        return (
            f"{self.label:<22} "
            f"query[{self.query_latency}]  "
            f"update[{self.update_latency}]  "
            f"msgs={self.messages} "
            f"tput={self.throughput:.2f}/s"
        )


def comparison_table(metrics: Sequence[ProtocolMetrics]) -> str:
    """A plain-text comparison table of several protocol runs."""
    lines = [
        f"{'protocol':<22} {'query mean':>11} {'query p95':>10} "
        f"{'update mean':>12} {'msgs':>8} {'msg units':>10} {'tput':>8}"
    ]
    for m in metrics:
        lines.append(
            f"{m.label:<22} "
            f"{m.query_latency.mean:>11.3f} {m.query_latency.p95:>10.3f} "
            f"{m.update_latency.mean:>12.3f} {m.messages:>8} "
            f"{m.message_size:>10} {m.throughput:>8.2f}"
        )
    return "\n".join(lines)
