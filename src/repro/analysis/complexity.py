"""Empirical scaling of the checkers (experiment T1).

Theorem 1 (and Theorem 2) say exact verification is NP-complete.  A
measurement cannot prove an asymptotic claim, but it can exhibit the
dichotomy the paper builds its Section-4/5 story on: the exact
branch-and-bound blows up on *ambiguous* histories — many concurrent,
unordered update m-operations whose writes are mutually
substitutable — while the Theorem-7 constrained checker remains
polynomial on WW-constrained histories of the same size.

:func:`hard_history` generates the adversarial family; each of ``k``
"writer pairs" writes two *swappable* values to its own pair of
objects, and a crowd of readers observes mixtures, so the search must
disentangle an exponential number of interleavings before concluding.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.admissibility import (
    SearchBudgetExceeded,
    check_admissible,
)
from repro.core.history import History
from repro.core.operation import MOperation, read, write
from repro.core.orders import msc_order


def hard_history(n_mops: int, *, n_objects: int = 3, seed: int = 0) -> History:
    """An ambiguous, *satisfiable* family for stressing the checker.

    Hardness of verification with a known reads-from relation (the
    paper stresses Theorem 2 holds "even when the reads-from relation
    is known") comes from ordering the **other** writes: a write to
    ``x`` must never fall between a ``(writer, reader)`` pair on
    ``x``, and with multi-object m-operations these per-object
    interval constraints interact across objects.

    This generator maximises that interaction: ``n_mops`` m-operations
    are generated *serially* against ``n_objects`` highly contended
    objects (so a legal linearization certainly exists — the
    generation order), each on its **own process**, and all timing is
    then discarded.  The m-SC base order thus contains no process-
    order and no real-time edges; only reads-from constrains the
    search, and the branch-and-bound must rediscover a consistent
    global write order from scratch.
    """
    rng = random.Random(seed)
    objects = [f"x{i}" for i in range(n_objects)]
    store = {obj: 0 for obj in objects}
    value = 0
    # Shuffle uid assignment so the generation order is *not* the
    # universe order: a depth-first search that tries candidates in
    # uid order cannot simply walk the generating sequence and must
    # genuinely backtrack out of wrong write orderings.
    uids = list(range(1, n_mops + 1))
    rng.shuffle(uids)
    mops: List[MOperation] = []
    for step in range(n_mops):
        ops = []
        # Read one or two objects (their current values)...
        for obj in rng.sample(objects, k=rng.randint(1, min(2, n_objects))):
            ops.append(read(obj, store[obj]))
        # ...and write one or two objects with fresh unique values.
        for obj in rng.sample(objects, k=rng.randint(1, min(2, n_objects))):
            value += 1
            ops.append(write(obj, value))
            store[obj] = value
        uid = uids[step]
        mops.append(
            MOperation(
                uid=uid,
                process=uid,  # every m-operation on its own process
                ops=tuple(ops),
                name=f"h{uid}",
            )
        )
    mops.sort(key=lambda m: m.uid)
    return History.from_mops(mops)


def exponential_gadget(toggles: int) -> History:
    """A crafted family on which the exact checker provably explodes.

    Two ingredients:

    * a **contradiction core** on object ``q``: process P1 runs
      ``A = w(q)a`` then the query ``r(q)b``; process P2 runs
      ``B = w(q)b`` then the query ``r(q)a``.  Any legal
      sequentialization needs ``B`` between ``A`` and P1's read *and*
      ``A`` between ``B`` and P2's read — i.e. both ``A < B`` and
      ``B < A`` — so the history is **not** m-sequentially consistent.
      Crucially the contradiction passes the D 4.6 legality pre-check
      and generates no ``~rw`` edges, so only the search can refute it;
    * ``toggles`` independent pairs of *dead* writers (two writers to a
      private object, read by nobody, each on its own process).  Their
      orders are unconstrained, so the search re-discovers the core
      contradiction once per reachable toggle configuration; failure
      memoization keys on (scheduled set, last-writer map), and the
      toggle lattice yields exponentially many distinct failed states.

    Empirically ~``30^(toggles/2)`` nodes — the Theorem-1/2 worst case
    made tangible.  (A smarter state abstraction could ignore objects
    no pending read needs, collapsing *this* family — but
    NP-completeness guarantees some family defeats any polynomial
    pruning, unless P = NP.)
    """
    mops: List[MOperation] = []
    uid = 1
    for i in range(toggles):
        mops.append(
            MOperation(
                uid=uid,
                process=100 + 2 * i,
                ops=(write(f"o{i}", "u"),),
                name=f"u{i}",
            )
        )
        uid += 1
        mops.append(
            MOperation(
                uid=uid,
                process=100 + 2 * i + 1,
                ops=(write(f"o{i}", "v"),),
                name=f"v{i}",
            )
        )
        uid += 1
    core = [
        MOperation(uid=uid, process=1, ops=(write("q", "a"),), name="A"),
        MOperation(uid=uid + 1, process=1, ops=(read("q", "b"),), name="R2"),
        MOperation(uid=uid + 2, process=2, ops=(write("q", "b"),), name="B"),
        MOperation(uid=uid + 3, process=2, ops=(read("q", "a"),), name="R1"),
    ]
    return History.from_mops(mops + core)


@dataclass
class ScalingPoint:
    """One measurement of checker cost.

    Attributes:
        size: number of m-operations in the instance.
        seconds: wall-clock time of the check.
        nodes: search nodes expanded (0 for the constrained path).
        verdict: the decision returned.
        budget_exhausted: the exact search hit its node budget.
    """

    size: int
    seconds: float
    nodes: int
    verdict: Optional[bool]
    budget_exhausted: bool = False


def measure_exact(
    histories: Sequence[History],
    *,
    node_limit: Optional[int] = None,
    propagate_rw: bool = True,
) -> List[ScalingPoint]:
    """Time the exact admissibility checker on each history."""
    points: List[ScalingPoint] = []
    for history in histories:
        base = msc_order(history)
        start = time.perf_counter()  # repro: allow[wall-clock] - measures the checker
        try:
            result = check_admissible(
                history,
                base,
                node_limit=node_limit,
                propagate_rw=propagate_rw,
            )
            elapsed = time.perf_counter() - start  # repro: allow[wall-clock]
            points.append(
                ScalingPoint(
                    size=len(history),
                    seconds=elapsed,
                    nodes=result.stats.nodes,
                    verdict=result.admissible,
                )
            )
        except SearchBudgetExceeded:
            elapsed = time.perf_counter() - start  # repro: allow[wall-clock]
            points.append(
                ScalingPoint(
                    size=len(history),
                    seconds=elapsed,
                    nodes=node_limit or -1,
                    verdict=None,
                    budget_exhausted=True,
                )
            )
    return points


def measure(
    histories: Sequence[History],
    checker: Callable[[History], bool],
) -> List[ScalingPoint]:
    """Time an arbitrary boolean checker on each history."""
    points: List[ScalingPoint] = []
    for history in histories:
        start = time.perf_counter()  # repro: allow[wall-clock] - measures the checker
        verdict = checker(history)
        elapsed = time.perf_counter() - start  # repro: allow[wall-clock]
        points.append(
            ScalingPoint(
                size=len(history), seconds=elapsed, nodes=0, verdict=verdict
            )
        )
    return points


def scaling_table(
    label: str, points: Sequence[ScalingPoint]
) -> str:
    """Format scaling measurements for a benchmark printout."""
    lines = [f"{label}:"]
    lines.append(f"  {'mops':>6} {'seconds':>12} {'nodes':>12} verdict")
    for p in points:
        verdict = "BUDGET" if p.budget_exhausted else str(p.verdict)
        lines.append(
            f"  {p.size:>6} {p.seconds:>12.6f} {p.nodes:>12} {verdict}"
        )
    return "\n".join(lines)
