"""Multi-object operation library (S17)."""

from repro.objects.multimethods import (
    balance_total,
    casn,
    compare_and_swap,
    dcas,
    fetch_add,
    m_assign,
    m_read,
    read_reg,
    sum_of,
    swap_objects,
    transfer,
    write_reg,
)
from repro.objects.structures import EMPTY, FULL, RegisterQueue, RegisterStack

__all__ = [
    "EMPTY",
    "FULL",
    "RegisterQueue",
    "RegisterStack",
    "balance_total",
    "casn",
    "compare_and_swap",
    "dcas",
    "fetch_add",
    "m_assign",
    "m_read",
    "read_reg",
    "sum_of",
    "swap_objects",
    "transfer",
    "write_reg",
]
