"""The paper's motivating multi-object operations (Section 1, S17).

"Operations like double compare and swap (DCAS) cannot be efficiently
expressed in that [single-object] model" — this module expresses them
directly as :class:`~repro.protocols.store.MProgram` factories:

* :func:`dcas` — double compare-and-swap (footnote 1 of the paper).
* :func:`casn` — its n-location generalisation (CASN).
* :func:`m_assign` — atomic m-register assignment.
* :func:`m_read` — atomic multi-register read (snapshot).
* :func:`transfer` / :func:`balance_total` — the database-transaction
  flavour of multi-object operations (move value between accounts,
  audit the total).
* :func:`swap_objects`, :func:`fetch_add`, :func:`sum_of` — further
  classic multi-methods (``sum`` is the paper's own example of why the
  aggregate-object encoding loses locality).
* :func:`read_reg` / :func:`write_reg` — the degenerate single-object
  operations, under which the model (and the checkers) reduce to
  classical sequential consistency / linearizability.

Every factory returns a *deterministic* program: its behaviour is a
function of the values it reads, as Section 2.1 requires.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple

from repro.protocols.store import MProgram, ObjectView


def read_reg(obj: str) -> MProgram:
    """Read a single register (a query m-operation)."""

    def body(view: ObjectView) -> Any:
        return view.read(obj)

    return MProgram(
        name=f"read({obj})",
        body=body,
        may_write=False,
        static_objects=frozenset([obj]),
    )


def write_reg(obj: str, value: Any) -> MProgram:
    """Write a single register (an update m-operation)."""

    def body(view: ObjectView) -> Any:
        view.write(obj, value)
        return value

    return MProgram(
        name=f"write({obj})",
        body=body,
        may_write=True,
        static_objects=frozenset([obj]),
    )


def dcas(
    obj1: str,
    obj2: str,
    old1: Any,
    old2: Any,
    new1: Any,
    new2: Any,
) -> MProgram:
    """Double compare-and-swap (the paper's footnote 1).

    Atomically updates ``obj1`` and ``obj2`` to ``new1``/``new2`` iff
    ``obj1`` holds ``old1`` and ``obj2`` holds ``old2`` at invocation.
    Returns True on success.  A conditional writer: classified as an
    update (``may_write``), per Section 5's conservative rule, even
    though a failed DCAS writes nothing.
    """

    def body(view: ObjectView) -> bool:
        if view.read(obj1) == old1 and view.read(obj2) == old2:
            view.write(obj1, new1)
            view.write(obj2, new2)
            return True
        return False

    return MProgram(
        name=f"dcas({obj1},{obj2})",
        body=body,
        may_write=True,
        static_objects=frozenset([obj1, obj2]),
    )


def casn(updates: Sequence[Tuple[str, Any, Any]]) -> MProgram:
    """n-location compare-and-swap.

    Args:
        updates: ``(obj, expected, new)`` triples.  All comparisons
            must succeed for any write to occur.
    """
    triples = tuple(updates)

    def body(view: ObjectView) -> bool:
        for obj, expected, _new in triples:
            if view.read(obj) != expected:
                return False
        for obj, _expected, new in triples:
            view.write(obj, new)
        return True

    objs = frozenset(obj for obj, _e, _n in triples)
    return MProgram(
        name=f"casn({','.join(sorted(objs))})",
        body=body,
        may_write=True,
        static_objects=objs,
    )


def m_assign(values: Mapping[str, Any]) -> MProgram:
    """Atomic m-register assignment: write several registers at once.

    The classic operation that is impossible to build wait-free from
    single-object registers — trivial in the multi-object model.
    """
    items = tuple(sorted(values.items()))

    def body(view: ObjectView) -> None:
        for obj, value in items:
            view.write(obj, value)

    objs = frozenset(obj for obj, _v in items)
    return MProgram(
        name=f"massign({','.join(sorted(objs))})",
        body=body,
        may_write=True,
        static_objects=objs,
    )


def m_read(objects: Iterable[str]) -> MProgram:
    """Atomic multi-register read: a consistent snapshot (a query)."""
    objs = tuple(sorted(objects))

    def body(view: ObjectView) -> Dict[str, Any]:
        return {obj: view.read(obj) for obj in objs}

    return MProgram(
        name=f"mread({','.join(objs)})",
        body=body,
        may_write=False,
        static_objects=frozenset(objs),
    )


def transfer(src: str, dst: str, amount: int) -> MProgram:
    """Move ``amount`` from ``src`` to ``dst`` if funds suffice.

    The database-transaction shape of an m-operation: two reads, two
    conditional writes, atomic as a unit.  Returns True on success.
    """

    def body(view: ObjectView) -> bool:
        src_balance = view.read(src)
        dst_balance = view.read(dst)
        if src_balance < amount:
            return False
        view.write(src, src_balance - amount)
        view.write(dst, dst_balance + amount)
        return True

    return MProgram(
        name=f"transfer({src}->{dst})",
        body=body,
        may_write=True,
        static_objects=frozenset([src, dst]),
    )


def balance_total(accounts: Iterable[str]) -> MProgram:
    """Audit query: the sum of several account balances.

    Against an m-linearizable implementation the audit always returns
    the true conserved total; weaker conditions may let it observe
    totals mid-transfer of *other* processes' m-operations — never,
    though, a total that no sequential execution could produce.
    """
    objs = tuple(sorted(accounts))

    def body(view: ObjectView) -> int:
        return sum(view.read(obj) for obj in objs)

    return MProgram(
        name=f"audit({','.join(objs)})",
        body=body,
        may_write=False,
        static_objects=frozenset(objs),
    )


def sum_of(obj1: str, obj2: str) -> MProgram:
    """The paper's own example: a ``sum`` multi-method on two registers.

    Section 1 uses it to argue against the aggregate-object encoding:
    one ``sum`` over two registers would force *all* registers into a
    single object.
    """

    def body(view: ObjectView) -> Any:
        return view.read(obj1) + view.read(obj2)

    return MProgram(
        name=f"sum({obj1},{obj2})",
        body=body,
        may_write=False,
        static_objects=frozenset([obj1, obj2]),
    )


def swap_objects(obj1: str, obj2: str) -> MProgram:
    """Atomically exchange the contents of two objects."""

    def body(view: ObjectView) -> None:
        v1 = view.read(obj1)
        v2 = view.read(obj2)
        view.write(obj1, v2)
        view.write(obj2, v1)

    return MProgram(
        name=f"swap({obj1},{obj2})",
        body=body,
        may_write=True,
        static_objects=frozenset([obj1, obj2]),
    )


def fetch_add(obj: str, delta: int) -> MProgram:
    """Fetch-and-add on a single object (returns the old value)."""

    def body(view: ObjectView) -> Any:
        old = view.read(obj)
        view.write(obj, old + delta)
        return old

    return MProgram(
        name=f"faa({obj},{delta:+d})",
        body=body,
        may_write=True,
        static_objects=frozenset([obj]),
    )


def compare_and_swap(obj: str, expected: Any, new: Any) -> MProgram:
    """Single-object CAS (for contrast with :func:`dcas`)."""

    def body(view: ObjectView) -> bool:
        if view.read(obj) == expected:
            view.write(obj, new)
            return True
        return False

    return MProgram(
        name=f"cas({obj})",
        body=body,
        may_write=True,
        static_objects=frozenset([obj]),
    )
