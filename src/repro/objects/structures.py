"""Concurrent data structures built from multi-object operations.

Section 1 motivates the model with expressiveness: Herlihy's
single-object framework covers "test and set, fetch and add, FIFO
queues and stacks", but those ADTs must then be *monolithic* objects.
With m-operations the same ADTs decompose into plain registers —
head/tail cursors plus one register per slot — and each ADT operation
is an atomic **multi-register** procedure.  The paper's DCAS citation
(Greenwald & Cheriton) makes exactly this point about practical
lock-free structures.

This module provides register-backed bounded FIFO queues and stacks:

* :class:`RegisterQueue` — ``head``/``tail`` cursors + slot registers;
  ``enqueue`` reads the tail and writes (slot, tail) atomically,
  ``dequeue`` reads the head and slot and writes the head.
* :class:`RegisterStack` — ``top`` cursor + slot registers.

Each factory returns an :class:`~repro.protocols.store.MProgram`, so
the structures run on *any* protocol in the library; under an
m-linearizable protocol the usual ADT semantics (FIFO order, LIFO
order, no lost or duplicated elements) follow from the consistency
condition alone — asserted by the test suite over concurrent
producers and consumers.

Layout for a structure named ``q`` with capacity ``c``::

    q.head, q.tail            cursor registers (queue)
    q.top                     cursor register (stack)
    q.slot0 ... q.slot{c-1}   element registers

Cursors count monotonically; slot index = cursor % capacity.
Operations return ``None``/sentinel on overflow/underflow rather than
blocking (the client model is one outstanding m-operation per
process).
"""

from __future__ import annotations

from typing import Any, List

from repro.protocols.store import MProgram, ObjectView

#: Returned by dequeue/pop on an empty structure.
EMPTY = "<empty>"
#: Returned by enqueue/push on a full structure.
FULL = "<full>"


class RegisterQueue:
    """A bounded FIFO queue laid out over plain registers.

    Args:
        name: prefix of the backing registers.
        capacity: number of element slots.
    """

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("queue capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.head = f"{name}.head"
        self.tail = f"{name}.tail"
        self.slots = [f"{name}.slot{i}" for i in range(capacity)]

    @property
    def registers(self) -> List[str]:
        """Every backing register (for cluster object declarations)."""
        return [self.head, self.tail] + list(self.slots)

    def enqueue(self, value: Any) -> MProgram:
        """Atomically append ``value`` (returns FULL when full)."""
        queue = self

        def body(view: ObjectView) -> Any:
            tail = view.read(queue.tail)
            head = view.read(queue.head)
            if tail - head >= queue.capacity:
                return FULL
            view.write(queue.slots[tail % queue.capacity], value)
            view.write(queue.tail, tail + 1)
            return value

        return MProgram(
            name=f"enq({queue.name})",
            body=body,
            may_write=True,
            static_objects=frozenset(queue.registers),
        )

    def dequeue(self) -> MProgram:
        """Atomically remove the oldest element (EMPTY when empty)."""
        queue = self

        def body(view: ObjectView) -> Any:
            head = view.read(queue.head)
            tail = view.read(queue.tail)
            if head >= tail:
                return EMPTY
            value = view.read(queue.slots[head % queue.capacity])
            view.write(queue.head, head + 1)
            return value

        return MProgram(
            name=f"deq({queue.name})",
            body=body,
            may_write=True,
            static_objects=frozenset(queue.registers),
        )

    def size(self) -> MProgram:
        """Atomic length query."""
        queue = self

        def body(view: ObjectView) -> int:
            return view.read(queue.tail) - view.read(queue.head)

        return MProgram(
            name=f"len({queue.name})",
            body=body,
            may_write=False,
            static_objects=frozenset([queue.head, queue.tail]),
        )


class RegisterStack:
    """A bounded LIFO stack laid out over plain registers."""

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("stack capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.top = f"{name}.top"
        self.slots = [f"{name}.slot{i}" for i in range(capacity)]

    @property
    def registers(self) -> List[str]:
        """Every backing register (for cluster object declarations)."""
        return [self.top] + list(self.slots)

    def push(self, value: Any) -> MProgram:
        """Atomically push ``value`` (returns FULL when full)."""
        stack = self

        def body(view: ObjectView) -> Any:
            top = view.read(stack.top)
            if top >= stack.capacity:
                return FULL
            view.write(stack.slots[top], value)
            view.write(stack.top, top + 1)
            return value

        return MProgram(
            name=f"push({stack.name})",
            body=body,
            may_write=True,
            static_objects=frozenset(stack.registers),
        )

    def pop(self) -> MProgram:
        """Atomically pop the newest element (EMPTY when empty)."""
        stack = self

        def body(view: ObjectView) -> Any:
            top = view.read(stack.top)
            if top == 0:
                return EMPTY
            value = view.read(stack.slots[top - 1])
            view.write(stack.top, top - 1)
            return value

        return MProgram(
            name=f"pop({stack.name})",
            body=body,
            may_write=True,
            static_objects=frozenset(stack.registers),
        )

    def peek(self) -> MProgram:
        """Atomic top-of-stack query (EMPTY when empty)."""
        stack = self

        def body(view: ObjectView) -> Any:
            top = view.read(stack.top)
            if top == 0:
                return EMPTY
            return view.read(stack.slots[top - 1])

        return MProgram(
            name=f"peek({stack.name})",
            body=body,
            may_write=False,
            static_objects=frozenset(stack.registers),
        )
