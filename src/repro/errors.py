"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch the whole family with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class MalformedOperationError(ReproError):
    """An operation or m-operation violates a structural invariant.

    Examples: an internal read that does not return the value of the
    last preceding internal write (Section 2.2 of the paper requires
    such reads to be consistent), or an m-operation with a response
    time earlier than its invocation time.
    """


class MalformedHistoryError(ReproError):
    """A history violates well-formedness (Section 2.2).

    Raised when a process subhistory is not sequential (two
    m-operations of the same process overlap in time), when m-operation
    identifiers collide, or when the externally visible reads of one
    m-operation on the same object disagree on the value read.
    """


class ReadsFromError(ReproError):
    """The reads-from relation could not be derived or is inconsistent.

    Raised when a read's value matches no write in the history, or when
    it matches more than one write and no explicit reads-from map was
    supplied to disambiguate.
    """


class RelationError(ReproError):
    """A relation operation was applied to incompatible universes."""


class MissingTimestampsError(ReproError):
    """A real-time-based order was requested on an untimed history.

    m-linearizability and m-normality are defined in terms of the
    real-time order ``resp(a) < inv(b)``, which requires invocation and
    response timestamps on every m-operation.
    """


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class ProcessCrashed(SimulationError):
    """An action was attempted by or on a crashed process.

    Raised when a crashed endpoint tries to send, when a process is
    crashed twice without an intervening restart, or when a restart is
    requested for a process that is not down.
    """


class PartitionedError(SimulationError):
    """An operation was refused because the caller sits on the
    minority side of a network partition (quorum-aware degraded mode,
    ``degraded="refuse"``)."""


class DeliveryTimeout(SimulationError):
    """The reliable-delivery shim exhausted its retransmission budget.

    Under the fault model a message is retransmitted with exponential
    backoff until acknowledged; this error surfaces when the
    destination stayed unreachable for the entire retry schedule (e.g.
    a permanently crashed process), i.e. the reliability guarantee the
    protocols depend on could not be upheld.
    """


class SequencerUnavailable(SimulationError):
    """No live sequencer exists to order an atomic broadcast.

    Raised when the fixed-sequencer abcast loses its sequencer without
    failover enabled, or when every candidate successor is down.
    """


class PlanRefused(ReproError):
    """The verification planner cannot build the requested plan.

    Raised when a sharded or windowed check is requested but no
    certificate of the right shape is available — e.g. sharding
    without an object-partitioned certificate, a windowed scan without
    a total update chain, or a condition (m-linearizability) whose
    order crosses shard boundaries.  Like
    :class:`CertificationRefused`, a refusal is not a verdict: the
    caller may fall back to ``mode="full"``.
    """


class WindowExceeded(ReproError):
    """A windowed check met a read reaching behind the sealed window.

    The windowed scan keeps only the last ``window`` broadcast
    positions of each object's writer timeline; a read whose visibility
    frontier reaches further back cannot be decided at bounded memory.
    This is a *refusal*, never a wrong verdict — re-run with a larger
    window (or ``mode="full"``) to decide the history.
    """


class ProtocolError(ReproError):
    """A replication protocol violated one of its internal invariants."""


class WorkloadError(ReproError):
    """A workload generator received unsatisfiable parameters."""


class StaticAnalysisError(ReproError):
    """The static analyzer could not read or parse a source file."""


class CertificationRefused(StaticAnalysisError):
    """The constraint prover cannot soundly certify a workload.

    Raised when no prover rule applies — e.g. multiple processes issue
    updates without a total synchronization order, or a program's
    write set is not statically declared.  A refusal is *not* a proof
    that histories will violate the constraint; it only means the
    checker must fall back to the dynamic constraint phase.
    """


class InvalidCertificate(StaticAnalysisError):
    """A constraint certificate failed its structural audit.

    The checker cross-checks every certificate against the concrete
    history in O(n) before trusting it (Theorem 7 is only sound when
    the constraint actually holds); a mismatch means the certificate
    was issued for a different workload or the promised synchronization
    pairs were not passed to the checker.
    """
