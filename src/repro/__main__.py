"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``check FILE`` — verify a JSON history (see
  :mod:`repro.core.serialize` for the format) against the consistency
  conditions.
* ``demo`` — run a protocol on a randomized workload, verify the
  recorded execution, and print the history and metrics.
* ``figures`` — print the paper's worked examples (Figures 1-3) and
  the Figure-5/7 protocol scenarios.
* ``report`` — regenerate every experiment's numbers (same as
  ``python -m benchmarks.report``, but shipped with the library).
* ``chaos`` — run seeded fault-injection schedules (message drops,
  duplicates, latency spikes, crash-restarts, sequencer failover)
  against a protocol and verify every surviving run with the
  consistency checkers; see ``docs/fault_model.md``.
* ``trace`` — run an instrumented workload with the tracer and
  metrics registry installed, export the spans as JSONL and print a
  flame summary; see ``docs/observability.md``.
* ``run`` — execute a declarative ``RunSpec`` JSON file through the
  runtime layer and print (or save) the resulting ``RunArtifact``;
  see ``docs/architecture.md``'s Runtime layer section.
* ``analyze`` — run the static analyzer (workload constraint prover
  infrastructure + determinism/race lints) over the source tree and
  fail on unsuppressed findings; see ``docs/static_analysis.md``.
* ``serve`` — start the verification control plane: an HTTP daemon
  that executes submitted ``RunSpec`` JSON on a worker pool, caches
  verdicts by canonical spec hash, stores artifacts content-addressed
  by history hash, and exposes metrics/trace endpoints plus an HTML
  dashboard; see ``docs/serving.md``.

Protocols and workloads are resolved through :mod:`repro.runtime` —
there is no CLI-private protocol table.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import ProtocolMetrics
from repro.core import (
    HistoryIndex,
    check_condition,
    check_m_causal_consistency,
)
from repro.core.serialize import load_history
from repro.errors import (
    MissingTimestampsError,
    PlanRefused,
    ReproError,
    WindowExceeded,
)
from repro.obs import flame_summary
from repro.runtime import (
    RunSpec,
    crash_tolerant_protocols,
    partition_tolerant_protocols,
    protocol_names,
)
from repro.runtime import (
    execute as execute_spec,
)
from repro.workloads import figure1, figure2_h1

#: ``trace`` workload names -> registered protocol (the condition and
#: factory come from the registry).  "paper-fig4" is the Figure-4
#: (m-SC) protocol, "paper-fig6" the Figure-6 (m-lin) protocol.
TRACE_FIGURES = {
    "paper-fig4": "msc",
    "paper-fig6": "mlin",
}


def cmd_check(args: argparse.Namespace) -> int:
    try:
        history = load_history(args.file)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(history.pretty())
    print()
    print(f"index: {HistoryIndex.of(history).stats().row()}")
    print()
    method = args.method
    mode = args.mode
    certificate = None
    if mode != "full":
        # Sharded/windowed plans need a static certificate; derive the
        # strongest one the concrete history supports (read-only >
        # single-updater > object-partitioned).
        from repro.analysis.static import certify_history
        from repro.errors import CertificationRefused

        try:
            certificate = certify_history(history)
            print(
                f"certificate: {certificate.rule} "
                f"({certificate.constraint}-constraint)"
            )
            print()
        except CertificationRefused as exc:
            print(f"error: cannot plan mode={mode!r}: {exc}", file=sys.stderr)
            return 2
    failures = 0
    checks = [
        ("m-sequential consistency", "m-sc"),
        ("m-linearizability", "m-lin"),
        ("m-normality", "m-norm"),
    ]
    for label, condition in checks:
        try:
            verdict = check_condition(
                history,
                condition,
                method=method,
                certificate=certificate,
                mode=mode,
                workers=args.workers,
                window=args.window,
            )
        except MissingTimestampsError:
            print(f"{label:<28} (skipped: history has no timestamps)")
            continue
        except (PlanRefused, WindowExceeded) as exc:
            print(f"{label:<28} (refused: {exc})")
            continue
        status = "HOLDS" if verdict.holds else "VIOLATED"
        print(f"{label:<28} {status}  [{verdict.method_used} checker]")
        failures += not verdict.holds
        if not verdict.holds and args.explain:
            from repro.core.diagnostics import explain

            diagnosis = explain(history, condition)
            indented = "\n".join(
                "    " + line for line in diagnosis.detail.splitlines()
            )
            print(indented)
    causal = check_m_causal_consistency(history)
    status = "HOLDS" if causal.holds else "VIOLATED"
    extra = (
        "" if causal.holds else f" (process P{causal.failing_process})"
    )
    print(f"{'m-causal consistency':<28} {status}{extra}")
    failures += not causal.holds
    return 1 if failures and args.strict else 0


def _print_verdicts(artifact) -> None:
    """Render an artifact's verdicts in the demo's classic format."""
    if not artifact.verdicts:
        print(
            f"{artifact.protocol}: no declared consistency condition; "
            "verification skipped"
        )
        return
    for verdict in artifact.verdicts:
        if verdict.condition == "m-causal":
            print(f"m-causally consistent: {verdict.holds}")
        else:
            print(
                f"{verdict.condition} holds: {verdict.holds} "
                f"[{verdict.method} checker]"
            )


def cmd_demo(args: argparse.Namespace) -> int:
    # The registry carries each protocol's strongest condition — Fig-4
    # (msc) and the delay-bound AW baseline claim m-SC, the causal
    # protocol m-causal, mlin/aggregate/server/lock m-linearizability.
    spec = RunSpec(
        protocol=args.protocol,
        workload="random",
        n=args.processes,
        objects=tuple(f"x{i}" for i in range(args.objects)),
        ops=args.ops,
        seed=args.seed,
    )
    artifact = execute_spec(spec)
    result = artifact.result
    print(result.history.pretty())
    print()
    metrics = ProtocolMetrics.of(args.protocol, result)
    print(metrics.row())
    if metrics.complexity is not None:
        print(f"index: {metrics.complexity.row()}")
    print()
    _print_verdicts(artifact)
    return 0 if artifact.ok else 1


def cmd_figures(_args: argparse.Namespace) -> int:
    print("Figure 1 (Section 2 example):")
    print(figure1().pretty())
    print()
    h, _base = figure2_h1()
    print("Figure 2 (history H1 under WW-constraint):")
    print(h.pretty())
    print()
    from repro.workloads import figure5_scenario, figure7_scenario

    fig5 = figure5_scenario()
    print("Figure 5 (Fig-4 protocol; stale local reads):")
    print(f"  reads: {[(round(t, 2), v) for t, _r, v in fig5.reads]}")
    print(f"  stale: {len(fig5.stale_reads)}")
    fig7 = figure7_scenario()
    print("Figure 7 (Fig-6 protocol; gather phase):")
    print(f"  reads: {[(round(t, 2), v) for t, _r, v in fig7.reads]}")
    print(f"  stale: {len(fig7.stale_reads)}")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    from repro.sim.chaos import run_chaos

    failures = 0
    artifacts = []
    for seed in range(args.fault_seed, args.fault_seed + args.runs):
        result = run_chaos(
            args.protocol,
            seed,
            n=args.processes,
            ops_per_process=args.ops,
            recovery=args.recovery,
            recover=not args.no_recover,
            partition=args.partition,
            quorum_aware=not args.no_quorum,
            verify_window=args.window,
            verify_workers=args.workers,
        )
        print(result.summary())
        if args.metrics:
            print(json.dumps(result.metrics, indent=2, sort_keys=True))
        if args.out:
            artifacts.append(
                {
                    "seed": seed,
                    "ok": result.ok,
                    "summary": result.summary(),
                    "violations": result.violations,
                    "abcast_violation": result.abcast_violation,
                    "failure": result.failure,
                    "detector": result.detector,
                    "degraded": len(result.degraded),
                    "partitions": result.partitions,
                    "failovers": result.failovers,
                    "metrics": result.metrics,
                }
            )
        failures += not result.ok
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "protocol": args.protocol,
                    "runs": args.runs,
                    "failures": failures,
                    "negative_control": args.no_recover or args.no_quorum,
                    "results": artifacts,
                },
                handle,
                indent=2,
                sort_keys=True,
            )
            handle.write("\n")
        print(f"artifact: {args.out}")
    if args.no_recover or args.no_quorum:
        # The negative control is *expected* to lose operations or
        # fail verification; succeeding would mean the control proves
        # nothing.
        print(f"negative control: {failures}/{args.runs} runs failed")
        return 0 if failures else 1
    print(f"{args.runs - failures}/{args.runs} runs ok")
    return 1 if failures else 0


def cmd_report(args: argparse.Namespace) -> int:
    try:
        from benchmarks import report as report_mod
    except ImportError:
        print(
            "error: the benchmarks package is not importable; run from "
            "the repository root",
            file=sys.stderr,
        )
        return 2
    report_mod.main()
    if args.metrics:
        # Machine-readable companion to the A1 comparison table: the
        # per-protocol ProtocolMetrics snapshots as one JSON block.
        snapshots = [m.snapshot() for m in report_mod.exp_a1()]
        print()
        print("A1 metrics (JSON):")
        print(json.dumps(snapshots, indent=2, sort_keys=True))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    spec = RunSpec(
        protocol=TRACE_FIGURES[args.workload],
        workload="random",
        n=args.processes,
        objects=tuple(f"x{i}" for i in range(args.objects)),
        ops=args.ops,
        seed=args.seed,
        tracing=True,
        trace_path=args.out,
        metrics=True,
    )
    artifact = execute_spec(spec)
    verdict = artifact.verdicts[0]
    tracer = artifact.tracer
    print(
        f"{args.workload}: {artifact.completed} ops, "
        f"{verdict.condition} holds: {verdict.holds} "
        f"[{verdict.method} checker]"
    )
    print(
        f"trace: {artifact.trace_spans} spans -> {args.out} "
        f"({tracer.evicted} evicted)"
    )
    print()
    print(flame_summary(tracer.records(), top=args.top))
    if args.metrics:
        metrics = dict(artifact.metrics or {})
        metrics["network"] = artifact.net_stats
        print()
        print(json.dumps(metrics, indent=2, sort_keys=True))
    return 0 if artifact.ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    import dataclasses

    try:
        spec = RunSpec.load(args.spec)
    except (OSError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overrides = {}
    if args.mode is not None:
        overrides["mode"] = args.mode
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.window is not None:
        overrides["window"] = args.window
    if overrides:
        spec = dataclasses.replace(
            spec,
            verify=dataclasses.replace(spec.verify, **overrides),
        )
    try:
        artifact = execute_spec(spec)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(artifact.summary())
    if args.out:
        artifact.save(args.out)
        print(f"artifact -> {args.out}")
    if args.json:
        print(artifact.to_json())
    return 0 if artifact.ok else 1


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, ServeDaemon

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store_dir=args.store,
        queue_depth=args.queue_depth,
        cache_entries=args.cache_entries,
        retain_entries=args.retain,
        retain_bytes=args.retain_bytes,
    )
    try:
        daemon = ServeDaemon(config)
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"repro serve: {daemon.url} (workers={args.workers}, "
          f"store={args.store})")
    print(f"dashboard: {daemon.url}/  metrics: {daemon.url}/metrics")
    sys.stdout.flush()
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import __version__
    from repro.analysis.static import (
        Analyzer,
        AnalyzerConfig,
        analyze_repo,
        baseline_payload,
        diff_against_baseline,
        load_baseline,
        load_config,
        registered_rules,
        render_json,
        render_sarif,
        render_text,
        rule_descriptions,
    )

    if args.list_rules:
        for rule, description in sorted(rule_descriptions().items()):
            print(f"{rule}: {description}")
        return 0
    select = (
        tuple(
            token.strip()
            for token in args.rules.split(",")
            if token.strip()
        )
        if args.rules
        else ()
    )
    unknown = set(select) - set(registered_rules())
    if unknown:
        print(
            f"error: unknown rule(s) {sorted(unknown)}; "
            "the registered rules are:",
            file=sys.stderr,
        )
        for rule, description in sorted(rule_descriptions().items()):
            print(f"  {rule}: {description}", file=sys.stderr)
        return 2
    if args.paths:
        config = load_config(Path("pyproject.toml"))
        if select:
            config = AnalyzerConfig(
                select=select, exclude=config.exclude
            )
        report = Analyzer(config=config).analyze_paths(
            [Path(p) for p in args.paths]
        )
    else:
        config = None
        if select:
            config = AnalyzerConfig(select=select)
        report = analyze_repo(config=config)
    if args.sarif:
        Path(args.sarif).write_text(
            render_sarif(
                report,
                rule_descriptions(),
                tool_version=__version__,
            )
            + "\n",
            encoding="utf-8",
        )
    if args.write_baseline:
        Path(args.write_baseline).write_text(
            baseline_payload(report), encoding="utf-8"
        )
        print(
            f"analyze: wrote baseline with "
            f"{len(report.unsuppressed)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.json:
        print(render_json(report))
    else:
        print(
            render_text(
                report, include_suppressed=args.include_suppressed
            )
        )
    if args.baseline:
        try:
            baseline = load_baseline(Path(args.baseline))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        new = diff_against_baseline(report, baseline)
        if new:
            print(
                f"analyze: {len(new)} finding(s) not in baseline "
                f"{args.baseline}:",
                file=sys.stderr,
            )
            for finding in new:
                print(f"  {finding.row()}", file=sys.stderr)
            return 1
        print(
            f"analyze: no findings beyond baseline {args.baseline}"
        )
        return 0 if not report.errors else 1
    return 0 if report.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Consistency conditions for multi-object distributed "
            "operations (Mittal & Garg, 1998)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="verify a JSON history file")
    check.add_argument("file", help="path to the history JSON")
    check.add_argument(
        "--method",
        choices=["auto", "exact", "constrained"],
        default="auto",
    )
    check.add_argument(
        "--mode",
        choices=["full", "sharded", "windowed"],
        default="full",
        help="verification plan: full (monolithic), sharded "
        "(object-group parallel), or windowed (bounded-memory scan); "
        "non-full modes derive a static certificate from the history",
    )
    check.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for sharded plans (default: 1, "
        "in-process)",
    )
    check.add_argument(
        "--window",
        type=int,
        default=None,
        help="window size (broadcast positions) for windowed plans; "
        "reads spanning more than this refuse rather than mis-answer",
    )
    check.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when any condition is violated",
    )
    check.add_argument(
        "--explain",
        action="store_true",
        help="diagnose each violation (cycle / illegal triple / search)",
    )
    check.set_defaults(func=cmd_check)

    demo = sub.add_parser("demo", help="run and verify a protocol")
    demo.add_argument(
        "--protocol", choices=protocol_names(), default="mlin"
    )
    demo.add_argument("--processes", type=int, default=3)
    demo.add_argument("--objects", type=int, default=3)
    demo.add_argument("--ops", type=int, default=5)
    demo.add_argument("--seed", type=int, default=0)
    demo.set_defaults(func=cmd_demo)

    figures = sub.add_parser("figures", help="print the paper's figures")
    figures.set_defaults(func=cmd_figures)

    report = sub.add_parser("report", help="regenerate all experiments")
    report.add_argument(
        "--metrics",
        action="store_true",
        help="also print the A1 protocol-metrics snapshots as JSON",
    )
    report.set_defaults(func=cmd_report)

    trace = sub.add_parser(
        "trace",
        help="run an instrumented workload; export spans + flame summary",
    )
    trace.add_argument(
        "--workload",
        choices=sorted(TRACE_FIGURES),
        default="paper-fig4",
    )
    trace.add_argument(
        "--out",
        default="repro.trace.jsonl",
        help="JSONL destination for the recorded spans",
    )
    trace.add_argument("--processes", type=int, default=3)
    trace.add_argument("--objects", type=int, default=3)
    trace.add_argument("--ops", type=int, default=5)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        help="flame summary rows (top spans by self-time)",
    )
    trace.add_argument(
        "--metrics",
        action="store_true",
        help="also print the metrics-registry snapshot as JSON",
    )
    trace.set_defaults(func=cmd_trace)

    chaos = sub.add_parser(
        "chaos", help="run fault-injection schedules and verify"
    )
    chaos.add_argument(
        "--protocol",
        choices=sorted(
            crash_tolerant_protocols() | partition_tolerant_protocols()
        ),
        default="msc",
        help="any protocol whose registry entry is crash-tolerant "
        "(or partition-tolerant, for --partition runs)",
    )
    chaos.add_argument("--processes", type=int, default=4)
    chaos.add_argument("--ops", type=int, default=5)
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="first fault-schedule seed (seeds used: N .. N+runs-1)",
    )
    chaos.add_argument("--runs", type=int, default=10)
    chaos.add_argument(
        "--recovery", choices=["replay", "snapshot"], default="replay"
    )
    chaos.add_argument(
        "--no-recover",
        action="store_true",
        help="negative control: crashes become permanent, recovery "
        "never runs (the run is expected to fail)",
    )
    chaos.add_argument(
        "--partition",
        action="store_true",
        help="inject a link-level network partition schedule instead "
        "of crash/recover faults (requires a partition-tolerant "
        "protocol)",
    )
    chaos.add_argument(
        "--no-quorum",
        action="store_true",
        help="negative control: disable quorum-aware degradation so "
        "both sides of a partition keep sequencing (the run is "
        "expected to fail with a split-brain violation)",
    )
    chaos.add_argument(
        "--window",
        type=int,
        default=None,
        help="audit each run with a bounded-memory WindowedIndex of "
        "this many broadcast positions instead of the full LiveIndex",
    )
    chaos.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the end-of-run batch verification "
        "(default: 1, in-process)",
    )
    chaos.add_argument(
        "--out",
        help="write a JSON artifact with per-seed results to this path",
    )
    chaos.add_argument(
        "--metrics",
        action="store_true",
        help="print each run's metrics snapshot as JSON",
    )
    chaos.set_defaults(func=cmd_chaos)

    run = sub.add_parser(
        "run",
        help="execute a declarative RunSpec JSON through the runtime",
    )
    run.add_argument("spec", help="path to the RunSpec JSON file")
    run.add_argument(
        "--mode",
        choices=["full", "sharded", "windowed"],
        default=None,
        help="override the spec's verify.mode",
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the spec's verify.workers",
    )
    run.add_argument(
        "--window",
        type=int,
        default=None,
        help="override the spec's verify.window",
    )
    run.add_argument(
        "--out", help="also save the RunArtifact JSON to this path"
    )
    run.add_argument(
        "--json",
        action="store_true",
        help="print the full RunArtifact JSON to stdout",
    )
    run.set_defaults(func=cmd_run)

    serve = sub.add_parser(
        "serve",
        help="start the verification control plane (HTTP daemon)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address (default: loopback only)",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (0 = ephemeral; the bound port lands in "
        "<store>/serve.json)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker threads executing queued RunSpecs",
    )
    serve.add_argument(
        "--store",
        default="repro-store",
        help="store directory (artifacts/, verdicts/, request log)",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=64,
        help="bounded run-queue capacity (full queue -> HTTP 503)",
    )
    serve.add_argument(
        "--cache-entries",
        type=int,
        default=256,
        help="in-memory verdict-cache entries (disk tier is unbounded)",
    )
    serve.add_argument(
        "--retain",
        type=int,
        default=512,
        help="artifact retention: max stored artifacts (LRU eviction)",
    )
    serve.add_argument(
        "--retain-bytes",
        type=int,
        default=256 * 1024 * 1024,
        help="artifact retention: max total artifact bytes",
    )
    serve.set_defaults(func=cmd_serve)

    analyze = sub.add_parser(
        "analyze",
        help="run the static analyzer (prover infra + determinism lints)",
    )
    analyze.add_argument(
        "paths",
        nargs="*",
        help="files/directories to analyze (default: the repro package)",
    )
    analyze.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable report instead of text",
    )
    analyze.add_argument(
        "--rules",
        help="comma-separated rule names to run (default: all registered)",
    )
    analyze.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rules with descriptions and exit",
    )
    analyze.add_argument(
        "--include-suppressed",
        action="store_true",
        help="show findings silenced by '# repro: allow[rule]' comments",
    )
    analyze.add_argument(
        "--sarif",
        metavar="PATH",
        help="also write the report as SARIF 2.1.0 to PATH",
    )
    analyze.add_argument(
        "--baseline",
        metavar="PATH",
        help=(
            "fail only on findings not in this baseline file "
            "(see --write-baseline)"
        ),
    )
    analyze.add_argument(
        "--write-baseline",
        metavar="PATH",
        help="write the current findings as a new baseline and exit 0",
    )
    analyze.set_defaults(func=cmd_analyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
