"""Run-smoke: one small RunSpec per registered protocol, via the CLI.

CI's ``run-smoke`` job (and ``make run-smoke``) executes this script:
for every protocol in the runtime registry it writes a small spec
file, drives it through ``python -m repro run SPEC.json --out ...``
(the same entry point users get), and leaves the spec + artifact JSON
pairs in ``--out-dir`` for upload.  Any non-zero exit — a failed run,
a violated condition — fails the job.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.__main__ import main as repro_main  # noqa: E402
from repro.runtime import RunSpec, protocol_names  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out-dir",
        default="run-smoke",
        help="directory for spec/artifact JSON pairs (default run-smoke/)",
    )
    parser.add_argument("--ops", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)

    failures = []
    names = protocol_names()
    for name in names:
        spec = RunSpec(protocol=name, ops=args.ops, seed=args.seed)
        spec_path = out_dir / f"{name}.spec.json"
        artifact_path = out_dir / f"{name}.artifact.json"
        spec.save(str(spec_path))
        code = repro_main(
            ["run", str(spec_path), "--out", str(artifact_path)]
        )
        print(f"[run-smoke] {name}: exit {code}")
        if code != 0:
            failures.append(name)
    if failures:
        print(f"[run-smoke] FAILED: {failures}", file=sys.stderr)
        return 1
    print(f"[run-smoke] {len(names)} protocols ok -> {out_dir}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
