"""Serve-smoke: a real ``repro serve`` subprocess, end to end.

CI's ``serve-smoke`` job (and ``make serve-smoke``) executes this
script: it launches ``python -m repro serve --port 0`` as a genuine
subprocess — the exact entry point users get, not an in-process
shortcut — discovers the ephemeral port through the daemon's
``<store>/serve.json`` endpoint file, then drives one small RunSpec
per registered protocol through :class:`repro.serve.ServeClient`.

Assertions, any of which fail the job:

* every protocol's run completes with a ``done``/``ok`` artifact;
* resubmitting every spec answers ``cached`` — the verdict cache
  round-trips over HTTP;
* ``/metrics`` reports a positive cache hit rate and one executed
  run per protocol.

The daemon's request audit log and every fetched artifact land in
``--out-dir`` (default ``serve-smoke/``) for CI upload.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.runtime import RunSpec, protocol_names  # noqa: E402
from repro.serve import ServeClient  # noqa: E402


def _discover_url(store: Path, deadline: float) -> str:
    endpoint_file = store / "serve.json"
    while time.monotonic() < deadline:
        if endpoint_file.exists():
            try:
                return json.loads(endpoint_file.read_text())["url"]
            except (ValueError, KeyError):
                pass  # partially written; retry
        time.sleep(0.05)
    raise RuntimeError(f"daemon never wrote {endpoint_file}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out-dir",
        default="serve-smoke",
        help="directory for request log + artifacts (default serve-smoke/)",
    )
    parser.add_argument("--ops", type=int, default=3)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--timeout", type=float, default=120.0)
    args = parser.parse_args(argv)

    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    store = out_dir / "store"

    daemon = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--store",
            str(store),
            "--workers",
            "2",
        ],
        cwd=str(REPO_ROOT),
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    failures = []
    try:
        url = _discover_url(store, time.monotonic() + 30.0)
        client = ServeClient(url, timeout=30.0)
        if not client.wait_healthy(30.0):
            print(f"[serve-smoke] {url} never became healthy", file=sys.stderr)
            return 1
        print(f"[serve-smoke] daemon up at {url} (pid {daemon.pid})")

        names = protocol_names()
        specs = [
            RunSpec(protocol=name, ops=args.ops, seed=args.seed)
            for name in names
        ]

        # Round 1: every protocol executes to a done/ok artifact.
        for spec in specs:
            run = client.submit_and_wait(spec, timeout=args.timeout)
            ok = run["status"] == "done" and run["artifact"]["ok"]
            print(f"[serve-smoke] {spec.protocol}: {run['status']}")
            if not ok:
                failures.append(f"{spec.protocol}: {run.get('error')}")
                continue
            artifact_path = out_dir / f"{spec.protocol}.artifact.json"
            artifact_path.write_text(
                json.dumps(run["artifact"], indent=2, sort_keys=True)
            )

        # Round 2: byte-for-byte resubmission must answer from cache.
        for spec in specs:
            again = client.submit(spec)
            if again["outcome"] != "cached":
                failures.append(
                    f"{spec.protocol}: resubmission was "
                    f"{again['outcome']!r}, expected 'cached'"
                )
        print(f"[serve-smoke] {len(specs)} cached resubmissions checked")

        metrics = client.metrics()
        cache = metrics["serve"]["cache"]
        if cache["hit_rate"] <= 0:
            failures.append(f"cache hit rate {cache['hit_rate']} not > 0")
        executed = sum(
            value
            for name, value in metrics["counters"].items()
            if name.startswith("serve.runs{")
        )
        if executed != len(specs):
            failures.append(
                f"{executed} executions for {len(specs)} protocols "
                f"(cache failed to absorb resubmissions)"
            )
        (out_dir / "metrics.json").write_text(
            json.dumps(metrics, indent=2, sort_keys=True, default=str)
        )
    finally:
        daemon.terminate()
        try:
            output = daemon.communicate(timeout=10.0)[0]
        except subprocess.TimeoutExpired:
            daemon.kill()
            output = daemon.communicate()[0]
        (out_dir / "daemon.log").write_bytes(output or b"")
        audit = store / "requests.log.jsonl"
        if audit.exists():
            shutil.copy(audit, out_dir / "requests.log.jsonl")
        # The store itself (artifact/verdict tiers) stays out of the
        # uploaded payload -- the per-protocol artifact copies and the
        # audit log above are the interesting bits.
        shutil.rmtree(store, ignore_errors=True)

    if failures:
        for line in failures:
            print(f"[serve-smoke] FAILED: {line}", file=sys.stderr)
        return 1
    print(
        f"[serve-smoke] {len(protocol_names())} protocols ok -> {out_dir}/"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
