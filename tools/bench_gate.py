"""Benchmark regression gate over ``BENCH_checkers.json`` artifacts.

``python tools/bench_gate.py FRESH.json --baseline BENCH_checkers.json``
compares a freshly produced checker-benchmark artifact against the
committed baseline, row by row.  Rows are keyed by
``(condition, n_mops, method)`` — the "method" column distinguishes
the dynamic ``constrained`` checker from the plan/execute engine's
``full`` / ``sharded`` / ``windowed`` modes — and the gate fails when
any shared row's median regresses by more than ``--factor`` (default
2x, absorbing CI machine-class noise while still catching
complexity-class slips).

Rows present in only one artifact are reported but never fail the
gate: new benchmark sizes land before their baselines do, and retired
sizes linger in old baselines.  Sub-millisecond baselines are skipped
outright — at that scale the medians are dominated by timer and
allocator jitter, not by the checkers.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Baseline medians below this are too noisy to gate on.
MIN_GATED_SECONDS = 0.001

Key = Tuple[str, int, str]


def _rows(artifact: dict) -> Dict[Key, dict]:
    table: Dict[Key, dict] = {}
    for row in artifact.get("results", []):
        key = (row["condition"], int(row["n_mops"]), row["method"])
        table[key] = row
    return table


def _label(key: Key) -> str:
    condition, n_mops, method = key
    return f"{condition}/{n_mops}/{method}"


def gate(
    fresh: dict, baseline: dict, *, factor: float = 2.0
) -> Tuple[List[str], List[str]]:
    """Compare artifacts; returns (failures, notes)."""
    fresh_rows = _rows(fresh)
    base_rows = _rows(baseline)
    failures: List[str] = []
    notes: List[str] = []
    for key in sorted(base_rows.keys() - fresh_rows.keys()):
        notes.append(f"{_label(key)}: only in baseline (not gated)")
    for key in sorted(fresh_rows.keys() - base_rows.keys()):
        notes.append(f"{_label(key)}: new row, no baseline (not gated)")
    for key in sorted(fresh_rows.keys() & base_rows.keys()):
        base_median = float(base_rows[key]["median_s"])
        fresh_median = float(fresh_rows[key]["median_s"])
        if base_median < MIN_GATED_SECONDS:
            notes.append(
                f"{_label(key)}: baseline {base_median:.4f}s below "
                f"{MIN_GATED_SECONDS}s noise floor (not gated)"
            )
            continue
        ratio = fresh_median / base_median
        line = (
            f"{_label(key)}: {fresh_median:.4f}s vs baseline "
            f"{base_median:.4f}s ({ratio:.2f}x)"
        )
        if ratio > factor:
            failures.append(line)
        else:
            notes.append(line)
    return failures, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="bench_gate")
    parser.add_argument("fresh", help="freshly produced artifact JSON")
    parser.add_argument(
        "--baseline",
        default=str(
            Path(__file__).resolve().parent.parent
            / "BENCH_checkers.json"
        ),
        help="committed baseline artifact (default: repo root copy)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated median ratio fresh/baseline",
    )
    args = parser.parse_args(argv)
    try:
        fresh = json.loads(Path(args.fresh).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failures, notes = gate(fresh, baseline, factor=args.factor)
    for line in notes:
        print(line)
    for line in failures:
        print(f"REGRESSION {line}", file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} row(s) regressed beyond "
            f"{args.factor}x the committed baseline",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate ok ({len(notes)} row(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
