"""Benchmark regression gate over BENCH_* artifacts.

``python tools/bench_gate.py FRESH.json --baseline BASELINE.json``
compares a freshly produced benchmark artifact against its committed
baseline, row by row.  Three row schemas are understood, auto-detected
per row:

* **checker rows** (``BENCH_checkers.json``), keyed by ``(condition,
  n_mops, method)`` — the "method" column distinguishes the dynamic
  ``constrained`` checker from the plan/execute engine's ``full`` /
  ``sharded`` / ``windowed`` modes; the gate fails when a shared
  row's ``median_s`` regresses by more than ``--factor``;
* **serve rows** (``BENCH_serve.json``, rows carrying ``p50_s``),
  keyed by ``(profile, clients)`` — the gate fails when the median
  submission latency (``p50_s``) regresses by more than ``--factor``
  *or* sustained throughput (``specs_per_sec``) collapses below
  ``1/factor`` of the baseline;
* **sim rows** (``BENCH_sim.json``, rows carrying ``events_per_sec``),
  keyed by ``(protocol, workload, n, ops)`` — the gate fails when
  simulation throughput collapses below ``1/factor`` of the baseline
  (throughput-gated rather than wall-clock-gated, so quick-profile
  artifacts with different run counts still compare).

The default factor (2x) absorbs CI machine-class noise while still
catching complexity-class slips.  Rows present in only one artifact
are reported but never fail the gate: new benchmark sizes land before
their baselines do, and retired sizes linger in old baselines.
Sub-millisecond time baselines are skipped outright — at that scale
the medians are dominated by timer and allocator jitter, not by the
code under test.

Checker artifacts additionally carry a ``static_analyzer`` section
(the wall clock of one full ``python -m repro analyze`` pass).  That
row is gated against an **absolute** budget rather than a ratio: the
flow-sensitive passes must keep a full-repo run under
``ANALYZER_BUDGET_SECONDS`` so the analyzer stays cheap enough to run
on every lint/CI invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Tuple

#: Baseline medians below this are too noisy to gate on.
MIN_GATED_SECONDS = 0.001

#: Hard ceiling for a full-repo ``repro analyze`` pass.  Absolute, not
#: relative: the analyzer runs inside ``make lint`` and the CI analyze
#: job, so its cost must stay flat as rules accumulate.
ANALYZER_BUDGET_SECONDS = 10.0

Key = Tuple


def _key(row: dict) -> Key:
    if "p50_s" in row:
        return ("serve", str(row.get("profile", "full")),
                int(row.get("clients", 0)))
    if "events_per_sec" in row:
        return ("sim", str(row.get("protocol", "?")),
                str(row.get("workload", "?")),
                int(row.get("n", 0)), int(row.get("ops", 0)))
    return ("check", row["condition"], int(row["n_mops"]), row["method"])


def _rows(artifact: dict) -> Dict[Key, dict]:
    return {_key(row): row for row in artifact.get("results", [])}


def _label(key: Key) -> str:
    return "/".join(str(part) for part in key[1:])


def _gate_time(
    key: Key,
    fresh_row: dict,
    base_row: dict,
    metric: str,
    factor: float,
    failures: List[str],
    notes: List[str],
) -> None:
    base_value = float(base_row[metric])
    fresh_value = float(fresh_row[metric])
    if base_value < MIN_GATED_SECONDS:
        notes.append(
            f"{_label(key)} {metric}: baseline {base_value:.4f}s below "
            f"{MIN_GATED_SECONDS}s noise floor (not gated)"
        )
        return
    ratio = fresh_value / base_value
    line = (
        f"{_label(key)} {metric}: {fresh_value:.4f}s vs baseline "
        f"{base_value:.4f}s ({ratio:.2f}x)"
    )
    (failures if ratio > factor else notes).append(line)


def _gate_throughput(
    key: Key,
    fresh_row: dict,
    base_row: dict,
    factor: float,
    failures: List[str],
    notes: List[str],
) -> None:
    base_rate = float(base_row["specs_per_sec"])
    fresh_rate = float(fresh_row["specs_per_sec"])
    if base_rate <= 0:
        notes.append(
            f"{_label(key)} specs_per_sec: zero baseline (not gated)"
        )
        return
    ratio = base_rate / fresh_rate if fresh_rate else float("inf")
    line = (
        f"{_label(key)} specs_per_sec: {fresh_rate:.1f}/s vs baseline "
        f"{base_rate:.1f}/s ({ratio:.2f}x slower)"
    )
    (failures if ratio > factor else notes).append(line)


def _gate_events_throughput(
    key: Key,
    fresh_row: dict,
    base_row: dict,
    factor: float,
    failures: List[str],
    notes: List[str],
) -> None:
    base_rate = float(base_row["events_per_sec"])
    fresh_rate = float(fresh_row["events_per_sec"])
    if base_rate <= 0:
        notes.append(
            f"{_label(key)} events_per_sec: zero baseline (not gated)"
        )
        return
    ratio = base_rate / fresh_rate if fresh_rate else float("inf")
    line = (
        f"{_label(key)} events_per_sec: {fresh_rate:.1f}/s vs baseline "
        f"{base_rate:.1f}/s ({ratio:.2f}x slower)"
    )
    (failures if ratio > factor else notes).append(line)


def _gate_analyzer(
    fresh: dict, failures: List[str], notes: List[str]
) -> None:
    """Absolute wall-clock budget for the static-analyzer row."""
    row = fresh.get("static_analyzer")
    if not isinstance(row, dict) or "median_s" not in row:
        return
    median = float(row["median_s"])
    line = (
        f"static_analyzer median_s: {median:.4f}s "
        f"(budget {ANALYZER_BUDGET_SECONDS:.0f}s, "
        f"{row.get('files_analyzed', '?')} files, "
        f"{row.get('rules_run', '?')} rules)"
    )
    (failures if median > ANALYZER_BUDGET_SECONDS else notes).append(line)
    if not row.get("ok", True):
        failures.append(
            "static_analyzer: the benched analyze pass itself reported "
            "findings or errors (ok=false)"
        )


def gate(
    fresh: dict, baseline: dict, *, factor: float = 2.0
) -> Tuple[List[str], List[str]]:
    """Compare artifacts; returns (failures, notes)."""
    fresh_rows = _rows(fresh)
    base_rows = _rows(baseline)
    failures: List[str] = []
    notes: List[str] = []
    for key in sorted(base_rows.keys() - fresh_rows.keys()):
        notes.append(f"{_label(key)}: only in baseline (not gated)")
    for key in sorted(fresh_rows.keys() - base_rows.keys()):
        notes.append(f"{_label(key)}: new row, no baseline (not gated)")
    for key in sorted(fresh_rows.keys() & base_rows.keys()):
        fresh_row, base_row = fresh_rows[key], base_rows[key]
        if key[0] == "serve":
            _gate_time(
                key, fresh_row, base_row, "p50_s", factor,
                failures, notes,
            )
            _gate_throughput(
                key, fresh_row, base_row, factor, failures, notes
            )
        elif key[0] == "sim":
            _gate_events_throughput(
                key, fresh_row, base_row, factor, failures, notes
            )
        else:
            _gate_time(
                key, fresh_row, base_row, "median_s", factor,
                failures, notes,
            )
    _gate_analyzer(fresh, failures, notes)
    return failures, notes


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="bench_gate")
    parser.add_argument("fresh", help="freshly produced artifact JSON")
    parser.add_argument(
        "--baseline",
        default=str(
            Path(__file__).resolve().parent.parent
            / "BENCH_checkers.json"
        ),
        help="committed baseline artifact (default: repo root copy)",
    )
    parser.add_argument(
        "--factor",
        type=float,
        default=2.0,
        help="maximum tolerated median ratio fresh/baseline",
    )
    args = parser.parse_args(argv)
    try:
        fresh = json.loads(Path(args.fresh).read_text())
        baseline = json.loads(Path(args.baseline).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    failures, notes = gate(fresh, baseline, factor=args.factor)
    for line in notes:
        print(line)
    for line in failures:
        print(f"REGRESSION {line}", file=sys.stderr)
    if failures:
        print(
            f"{len(failures)} row(s) regressed beyond "
            f"{args.factor}x the committed baseline",
            file=sys.stderr,
        )
        return 1
    print(f"bench gate ok ({len(notes)} row(s) checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
