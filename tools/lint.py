"""Repository linter: ruff when available, a stdlib fallback otherwise.

CI installs ruff and gets the full E/F/I rule set from pyproject.toml.
Developer machines (and the hermetic test container) may not have it;
rather than failing the ``make lint`` target there, fall back to the
checks the standard library can do on its own:

* every Python file byte-compiles (``compileall`` — catches syntax
  errors, the bulk of ruff's E9xx class);
* no file mixes tabs and spaces in indentation (``tokenize``);
* the project's own static analyzer (``repro.analysis.static``) runs
  its full rule set over ``src/`` — the syntactic determinism lints
  *and* the flow-sensitive passes (``lockset``, ``span-pairing``,
  ``swallowed-error``, ``handler-atomicity``); it is stdlib-only, so
  it is available wherever the package itself imports.

Exit status 0 means clean under whichever linter ran.
"""

from __future__ import annotations

import compileall
import subprocess
import sys
import tokenize
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TARGETS = ("src", "tests", "benchmarks", "tools")


def _ruff_command() -> "list[str] | None":
    """The invocation for ruff, module or standalone binary, if any."""
    try:
        import ruff  # noqa: F401
    except ImportError:
        pass
    else:
        return [sys.executable, "-m", "ruff"]
    try:
        probe = subprocess.run(
            ["ruff", "--version"], capture_output=True, cwd=ROOT
        )
    except OSError:
        return None
    return ["ruff"] if probe.returncode == 0 else None


def run_ruff(command: "list[str]") -> int:
    print("lint: ruff check", " ".join(TARGETS))
    return subprocess.run([*command, "check", *TARGETS], cwd=ROOT).returncode


def run_fallback() -> int:
    print("lint: ruff not installed; running stdlib fallback checks")
    failures = 0
    for target in TARGETS:
        ok = compileall.compile_dir(
            str(ROOT / target), quiet=1, force=False
        )
        if not ok:
            print(f"lint: compileall failed under {target}/")
            failures += 1
    for target in TARGETS:
        for path in sorted((ROOT / target).rglob("*.py")):
            failures += _check_indentation(path)
    failures += _run_static_analyzer()
    status = "clean" if not failures else f"{failures} problem(s)"
    print(f"lint: fallback checks {status}")
    return 1 if failures else 0


def _run_static_analyzer() -> int:
    """Run the repo's own stdlib-only lint passes over ``src/``.

    Counts each unsuppressed finding (and each file the analyzer could
    not parse) as one failure; see ``docs/static_analysis.md``.
    """
    src = str(ROOT / "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    try:
        from repro.analysis.static import analyze_repo
    except ImportError as exc:  # package broken: compileall already flagged it
        print(f"lint: static analyzer unavailable ({exc}); skipping")
        return 0
    report = analyze_repo()
    print(
        f"lint: repro analyze ran {len(report.rules_run)} rule(s) "
        f"({', '.join(report.rules_run)}) over "
        f"{report.files_analyzed} file(s): "
        f"{len(report.unsuppressed)} finding(s), "
        f"{len(report.errors)} error(s)"
    )
    for finding in report.unsuppressed:
        print(f"  {finding.row()}")
    for error in report.errors:
        print(f"  {error}")
    return len(report.unsuppressed) + len(report.errors)


def _check_indentation(path: Path) -> int:
    """Flag indentation that mixes tabs and spaces (ruff W191-ish)."""
    try:
        with tokenize.open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                indent = line[: len(line) - len(line.lstrip())]
                if " \t" in indent or "\t " in indent:
                    print(
                        f"{path.relative_to(ROOT)}:{line_number}: "
                        "mixed tabs and spaces in indentation"
                    )
                    return 1
    except (OSError, SyntaxError, UnicodeDecodeError) as exc:
        print(f"{path.relative_to(ROOT)}: unreadable: {exc}")
        return 1
    return 0


def main() -> int:
    command = _ruff_command()
    if command is not None:
        return run_ruff(command)
    return run_fallback()


if __name__ == "__main__":
    sys.exit(main())
